//! Crash/resume exactness: a training run interrupted after any epoch
//! and resumed from its checkpoint must produce a **byte-identical**
//! saved model to an uninterrupted run — including when the kill lands
//! before the route-warm-up boundary (`Variant::Full`) or before the
//! two-step phase-A/phase-B switch (`Variant::TwoStep`).
//!
//! The interruption is simulated in-process with
//! [`CheckpointOptions::stop_after_epoch`], which abandons the run
//! right after the checkpoint write, skipping best-weight restoration
//! and pipeline attachment exactly like a real `SIGKILL` would. The
//! out-of-process variant (a genuinely killed child) lives in
//! `crates/cli/tests/cli_resume.rs`.

use m2g4rtp::{
    CheckpointError, CheckpointOptions, M2G4Rtp, ModelConfig, TrainConfig, Trainer, Variant,
};
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};
use std::path::PathBuf;

fn setup(variant: Variant) -> (Dataset, ModelConfig) {
    let d = DatasetBuilder::new(DatasetConfig::tiny(71)).build();
    let mut cfg = ModelConfig::for_dataset(&d).with_variant(variant);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    (d, cfg)
}

fn model_json(m: &M2G4Rtp) -> String {
    serde_json::to_string(&m.to_saved()).expect("serialise model")
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtp-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Trains a reference model without checkpointing, then an interrupted
/// + resumed pair, and asserts the two saved models are byte-identical.
fn assert_resume_identical(variant: Variant, tc: &TrainConfig, kill_after: usize, tag: &str) {
    let (d, cfg) = setup(variant);

    let mut reference = M2G4Rtp::new(cfg.clone(), 3);
    let ref_report = Trainer::new(tc.clone()).fit(&mut reference, &d);

    let dir = tmpdir(tag);
    let mut victim = M2G4Rtp::new(cfg.clone(), 3);
    let mut opts = CheckpointOptions::new(&dir);
    opts.stop_after_epoch = Some(kill_after);
    let partial =
        Trainer::new(tc.clone()).fit_with_checkpoints(&mut victim, &d, Some(&opts)).unwrap();
    assert_eq!(partial.epochs_run, kill_after + 1, "simulated kill ran past its epoch");
    assert!(!victim.has_pipeline(), "a killed run must not look finalised");

    // Resume into a fresh model instance, as a new process would.
    let mut resumed = M2G4Rtp::new(cfg, 3);
    let report = Trainer::new(tc.clone())
        .fit_with_checkpoints(&mut resumed, &d, Some(&CheckpointOptions::resume(&dir)))
        .unwrap();

    assert_eq!(report.epochs_run, ref_report.epochs_run, "resumed run trained a different count");
    assert_eq!(
        model_json(&reference),
        model_json(&resumed),
        "{variant:?} killed after epoch {kill_after}: resumed model diverged from uninterrupted"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_variant_resume_is_byte_identical_across_warmup_boundary() {
    // epochs=6, route_warmup_frac=0.34 -> warm-up is epochs 0..2: a
    // kill after epoch 1 makes the resumed segment cross warm-up →
    // joint optimisation.
    let tc = TrainConfig { epochs: 6, patience: usize::MAX, ..TrainConfig::quick() };
    assert_resume_identical(Variant::Full, &tc, 1, "full-warmup");
}

#[test]
fn full_variant_resume_is_byte_identical_after_warmup() {
    let tc = TrainConfig { epochs: 6, patience: usize::MAX, ..TrainConfig::quick() };
    assert_resume_identical(Variant::Full, &tc, 3, "full-late");
}

#[test]
fn two_step_resume_is_byte_identical_across_phase_boundary() {
    // epochs=5 -> phase A is epochs 0..3: a kill after epoch 2 makes
    // the resumed segment start exactly at the A→B switch.
    let tc = TrainConfig { epochs: 5, patience: usize::MAX, ..TrainConfig::quick() };
    assert_resume_identical(Variant::TwoStep, &tc, 2, "two-step");
}

#[test]
fn resume_after_early_stop_checkpoint_finalises_identically() {
    // patience=0 forces an early stop; the kill lands right after the
    // checkpoint that recorded it (but before the model file would have
    // been written). Resume must finalise — restore the best weights
    // and return — rather than train further than the uninterrupted
    // run ever did.
    let (d, cfg) = setup(Variant::Full);
    let tc = TrainConfig { epochs: 10, patience: 0, ..TrainConfig::quick() };

    let mut reference = M2G4Rtp::new(cfg.clone(), 3);
    let ref_report = Trainer::new(tc.clone()).fit(&mut reference, &d);
    assert!(ref_report.epochs_run < 10, "test needs an early stop to be meaningful");

    let dir = tmpdir("early-stop");
    let mut victim = M2G4Rtp::new(cfg.clone(), 3);
    let mut opts = CheckpointOptions::new(&dir);
    opts.stop_after_epoch = Some(ref_report.epochs_run - 1);
    Trainer::new(tc.clone()).fit_with_checkpoints(&mut victim, &d, Some(&opts)).unwrap();

    let mut resumed = M2G4Rtp::new(cfg, 3);
    let report = Trainer::new(tc)
        .fit_with_checkpoints(&mut resumed, &d, Some(&CheckpointOptions::resume(&dir)))
        .unwrap();
    assert_eq!(report.epochs_run, ref_report.epochs_run, "resume trained past the early stop");
    assert_eq!(model_json(&reference), model_json(&resumed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_rejects_a_different_run() {
    let (d, cfg) = setup(Variant::Full);
    let tc = TrainConfig { epochs: 4, patience: usize::MAX, ..TrainConfig::quick() };
    let dir = tmpdir("mismatch");
    let mut victim = M2G4Rtp::new(cfg.clone(), 3);
    let mut opts = CheckpointOptions::new(&dir);
    opts.stop_after_epoch = Some(1);
    Trainer::new(tc.clone()).fit_with_checkpoints(&mut victim, &d, Some(&opts)).unwrap();

    // different learning rate: the trajectory would silently diverge
    let other_tc = TrainConfig { lr: 1e-4, ..tc.clone() };
    let err = Trainer::new(other_tc)
        .fit_with_checkpoints(
            &mut M2G4Rtp::new(cfg.clone(), 3),
            &d,
            Some(&CheckpointOptions::resume(&dir)),
        )
        .unwrap_err();
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("lr"), "{err}");

    // different dataset
    let other_d = DatasetBuilder::new(DatasetConfig::tiny(72)).build();
    let err = Trainer::new(tc.clone())
        .fit_with_checkpoints(
            &mut M2G4Rtp::new(cfg.clone(), 3),
            &other_d,
            Some(&CheckpointOptions::resume(&dir)),
        )
        .unwrap_err();
    assert!(err.to_string().contains("dataset fingerprint"), "{err}");

    // different model architecture
    let mut other_cfg = cfg.clone();
    other_cfg.d_loc = 32;
    let err = Trainer::new(tc.clone())
        .fit_with_checkpoints(
            &mut M2G4Rtp::new(other_cfg, 3),
            &d,
            Some(&CheckpointOptions::resume(&dir)),
        )
        .unwrap_err();
    assert!(err.to_string().contains("model config"), "{err}");

    // changing `threads` is explicitly allowed (bit-identical anyway)
    let threaded_tc = TrainConfig { threads: 2, ..tc };
    Trainer::new(threaded_tc)
        .fit_with_checkpoints(&mut M2G4Rtp::new(cfg, 3), &d, Some(&CheckpointOptions::resume(&dir)))
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_a_checkpoint_is_a_clear_error() {
    let (d, cfg) = setup(Variant::Full);
    let tc = TrainConfig { epochs: 2, ..TrainConfig::quick() };
    let dir = tmpdir("empty");
    let err = Trainer::new(tc)
        .fit_with_checkpoints(&mut M2G4Rtp::new(cfg, 3), &d, Some(&CheckpointOptions::resume(&dir)))
        .unwrap_err();
    assert!(err.to_string().contains("nothing to resume from"), "{err}");
}
