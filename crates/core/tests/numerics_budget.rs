//! Accuracy budgets for the approximate inference tiers.
//!
//! `--numerics fast` and `--numerics quantized` are only admissible in
//! serving because their deviation from the bit-exact tier is bounded
//! and tested. The declared budgets on the simulator eval set:
//!
//! * the predicted route permutation (both levels) is **identical** to
//!   the exact tier's for every test sample — greedy decoding reads
//!   argmaxes of well-separated logits, which quantization noise must
//!   not flip;
//! * the mean absolute ETA deviation vs the exact tier stays under
//!   0.5 minutes (quantized) / 0.1 minutes (fast), far below the
//!   model's own ~tens-of-minutes MAE vs ground truth;
//! * the exact tier through the numerics-dispatch path stays bitwise
//!   equal to the legacy `predict_sample` path.

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};
use rtp_tensor::Numerics;

fn trained() -> (Dataset, M2G4Rtp) {
    let d = DatasetBuilder::new(DatasetConfig::tiny(1234)).build();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&d), 7);
    Trainer::new(TrainConfig { epochs: 2, ..TrainConfig::quick() }).fit(&mut model, &d);
    (d, model)
}

/// Mean absolute deviation between two per-stop ETA vectors.
fn eta_dev(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len().max(1) as f32;
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / n
}

#[test]
fn approximate_tiers_stay_within_declared_budgets() {
    let (dataset, model) = trained();
    assert!(
        model.quant_set().quantized_params() > 0,
        "model must have quantizable weight matrices for this test to mean anything"
    );

    let mut worst_q = 0.0f32;
    let mut worst_f = 0.0f32;
    let (mut sum_q, mut sum_f, mut stops) = (0.0f64, 0.0f64, 0usize);
    for s in &dataset.test {
        let exact = model.predict_sample_with(&dataset, s, Numerics::Exact);
        let fast = model.predict_sample_with(&dataset, s, Numerics::Fast);
        let quant = model.predict_sample_with(&dataset, s, Numerics::Quantized);

        assert_eq!(exact.route, fast.route, "fast tier flipped a route decision");
        assert_eq!(exact.aoi_route, fast.aoi_route, "fast tier flipped an AOI route decision");
        assert_eq!(exact.route, quant.route, "quantized tier flipped a route decision");
        assert_eq!(
            exact.aoi_route, quant.aoi_route,
            "quantized tier flipped an AOI route decision"
        );

        let dq = eta_dev(&exact.times, &quant.times);
        let df = eta_dev(&exact.times, &fast.times);
        worst_q = worst_q.max(dq);
        worst_f = worst_f.max(df);
        sum_q += (dq * exact.times.len() as f32) as f64;
        sum_f += (df * exact.times.len() as f32) as f64;
        stops += exact.times.len();
    }
    let mae_q = sum_q / stops.max(1) as f64;
    let mae_f = sum_f / stops.max(1) as f64;
    assert!(mae_q <= 0.5, "quantized ETA deviation {mae_q:.4} min exceeds the 0.5 min budget");
    assert!(mae_f <= 0.1, "fast ETA deviation {mae_f:.4} min exceeds the 0.1 min budget");
    // Per-sample worst cases are recorded in the failure message only;
    // printing keeps them visible under --nocapture for tuning.
    println!(
        "numerics budget: quantized mae {mae_q:.5} (worst {worst_q:.5}), \
         fast mae {mae_f:.5} (worst {worst_f:.5}) over {stops} stops"
    );
}

#[test]
fn exact_tier_dispatch_is_bitwise_identical_to_legacy_path() {
    let (dataset, model) = trained();
    for s in dataset.test.iter().take(8) {
        // The legacy entry point: a plain `Tape::inference()` with no
        // numerics dispatch at all.
        let courier = &dataset.couriers[s.query.courier_id];
        let g = model.build_graph(&dataset.city, courier, &s.query);
        let legacy = model.predict(&g);
        let exact = model.predict_sample_with(&dataset, s, Numerics::Exact);
        assert_eq!(legacy.route, exact.route);
        assert_eq!(legacy.aoi_route, exact.aoi_route);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&legacy.times), bits(&exact.times));
        assert_eq!(bits(&legacy.aoi_times), bits(&exact.aoi_times));
    }
}
