//! Durable, versioned training checkpoints with an exactness
//! guarantee: a run killed at any epoch and resumed from its latest
//! checkpoint produces **byte-identical final weights** to an
//! uninterrupted run.
//!
//! Exact resume needs more than the weights. The training trajectory
//! at epoch `e+1` is a pure function of
//!
//! 1. the weights after epoch `e`,
//! 2. Adam's first/second moments and step count (bias correction
//!    depends on `t`),
//! 3. the shuffle RNG *state* (each epoch permutes the previous
//!    epoch's order, so the state after `e` shuffles is history-
//!    dependent) together with the current `indices` permutation,
//! 4. the early-stopping bookkeeping (best snapshot, best score,
//!    patience counter) and the absolute epoch index, which selects
//!    the warm-up / two-step phase.
//!
//! [`TrainCheckpoint`] captures all of it, and the deterministic
//! data-parallel trainer (bit-identical for every thread count, PR 1)
//! makes the replay exact rather than merely approximate. Scores that
//! drive control flow (`best_score`) are stored as `f64` *bit
//! patterns* so resume decisions can never be perturbed by a lossy
//! float round-trip — and because `best_score` starts at `-inf`,
//! which JSON cannot represent at all.
//!
//! Files are written via [`rtp_obs::fsio::write_atomic`] (write temp →
//! fsync → rename), so a kill at any instant leaves either the
//! previous complete checkpoint or the new complete one on disk,
//! never a truncated hybrid.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use rtp_sim::Dataset;
use rtp_tensor::optim::AdamState;
use serde::{Deserialize, Serialize};

use crate::config::ModelConfig;
use crate::trainer::{EpochStats, TrainConfig};

/// Format version of [`TrainCheckpoint`]. Bumped on any change to the
/// captured state; resume refuses other versions rather than guessing.
pub const CHECKPOINT_VERSION: u32 = 1;

/// File name of the latest checkpoint inside a checkpoint directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Where (and whether) [`crate::Trainer`] persists per-epoch state.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory holding `checkpoint.json` (created if missing).
    pub dir: PathBuf,
    /// Restore the latest checkpoint in `dir` and continue from it
    /// instead of training from scratch. Fails with a clear error if
    /// no (or a corrupt/mismatched) checkpoint is present.
    pub resume: bool,
    /// Test/bench hook: return right after writing the checkpoint of
    /// this 0-based epoch, *without* best-weight restoration — an
    /// in-process simulated crash for resume-exactness tests and the
    /// checkpoint-overhead benchmark.
    pub stop_after_epoch: Option<usize>,
}

impl CheckpointOptions {
    /// Checkpoint every epoch into `dir`, starting fresh.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), resume: false, stop_after_epoch: None }
    }

    /// Checkpoint into `dir`, resuming from its latest checkpoint.
    pub fn resume(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), resume: true, stop_after_epoch: None }
    }

    /// Path of the checkpoint file inside [`CheckpointOptions::dir`].
    pub fn file(&self) -> PathBuf {
        self.dir.join(CHECKPOINT_FILE)
    }
}

/// Why a checkpoint could not be written, read or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure writing or reading the checkpoint.
    Io(io::Error),
    /// The checkpoint file is missing, truncated or unparseable.
    Corrupt(String),
    /// The checkpoint is valid but belongs to a different run
    /// (config / model / dataset mismatch, or wrong version).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The complete mid-run training state, serialised once per epoch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The training configuration of the producing run. Resume
    /// requires trajectory-relevant fields to match (`verbose` and
    /// `threads` are exempt: results are bit-identical for every
    /// thread count, so they may change across the kill boundary).
    pub train_config: TrainConfig,
    /// The model architecture being trained.
    pub model_config: ModelConfig,
    /// Fingerprint of the dataset (config + split sizes), guarding
    /// against resuming onto different data.
    pub dataset_fingerprint: u64,
    /// Epochs fully completed; resume continues at this 0-based index.
    pub epochs_done: usize,
    /// Whether the run already hit its early-stopping patience at
    /// `epochs_done` — resume then finalises instead of training on.
    pub stopped_early: bool,
    /// xoshiro256++ state of the shuffle RNG *after* the completed
    /// epochs' shuffles.
    pub rng_state: [u64; 4],
    /// The sample-index permutation as of the last shuffle (each epoch
    /// shuffles the previous epoch's order in place).
    pub indices: Vec<usize>,
    /// Full Adam state: moments and step count.
    pub adam: AdamState,
    /// Current weights, per parameter in registration order.
    pub weights: Vec<Vec<f32>>,
    /// The best-validation-score weights seen so far.
    pub best_snapshot: Vec<Vec<f32>>,
    /// Bit pattern of the best validation score `f64` (exact, and
    /// representable even for the initial `-inf`).
    pub best_score_bits: u64,
    /// Bit pattern of the best validation KRC.
    pub best_krc_bits: u64,
    /// Bit pattern of the best validation MAE.
    pub best_mae_bits: u64,
    /// Epochs since the best score improved (patience counter).
    pub since_best: usize,
    /// Per-epoch stats of the completed epochs.
    pub history: Vec<EpochStats>,
    /// Wall-clock seconds spent training so far (cumulative across
    /// resumes; reporting only).
    pub train_seconds: f64,
    /// Seconds inside the mini-batch loops so far (reporting only).
    pub train_loop_seconds: f64,
}

impl TrainCheckpoint {
    /// Atomically writes this checkpoint as `dir/checkpoint.json`,
    /// creating `dir` if needed. Returns the serialized size in bytes.
    pub fn save(&self, dir: &Path) -> Result<usize, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string(self)
            .map_err(|e| CheckpointError::Corrupt(format!("serialise failed: {e}")))?;
        rtp_obs::fsio::write_atomic_str(&dir.join(CHECKPOINT_FILE), &json)?;
        Ok(json.len())
    }

    /// Loads and structurally validates `dir/checkpoint.json`.
    ///
    /// A missing file, unparseable JSON, a wrong version or internally
    /// inconsistent state all produce a descriptive error — resume
    /// must fail loudly rather than train from garbage.
    pub fn load(dir: &Path) -> Result<Self, CheckpointError> {
        let path = dir.join(CHECKPOINT_FILE);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                CheckpointError::Corrupt(format!(
                    "no checkpoint found at {} (nothing to resume from)",
                    path.display()
                ))
            } else {
                CheckpointError::Io(e)
            }
        })?;
        let cp: TrainCheckpoint = serde_json::from_str(&text).map_err(|e| {
            CheckpointError::Corrupt(format!(
                "{}: not a valid checkpoint (truncated or hand-edited?): {e}",
                path.display()
            ))
        })?;
        if cp.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Mismatch(format!(
                "{}: checkpoint version {} but this build reads version {}",
                path.display(),
                cp.version,
                CHECKPOINT_VERSION
            )));
        }
        cp.validate_internal()
            .map_err(|m| CheckpointError::Corrupt(format!("{}: {m}", path.display())))?;
        Ok(cp)
    }

    /// Internal-consistency checks independent of any model/dataset.
    fn validate_internal(&self) -> Result<(), String> {
        if self.rng_state == [0, 0, 0, 0] {
            return Err("all-zero RNG state (unreachable from any seed)".into());
        }
        if self.weights.len() != self.best_snapshot.len() {
            return Err(format!(
                "weights hold {} tensors but best snapshot {}",
                self.weights.len(),
                self.best_snapshot.len()
            ));
        }
        for (k, (w, b)) in self.weights.iter().zip(&self.best_snapshot).enumerate() {
            if w.len() != b.len() {
                return Err(format!(
                    "tensor {k}: weights len {} vs best-snapshot len {}",
                    w.len(),
                    b.len()
                ));
            }
        }
        if self.epochs_done == 0 {
            return Err("checkpoint claims zero completed epochs".into());
        }
        if self.epochs_done > self.train_config.epochs {
            return Err(format!(
                "claims {} completed epochs but config allows {}",
                self.epochs_done, self.train_config.epochs
            ));
        }
        if self.history.len() != self.epochs_done {
            return Err(format!(
                "history holds {} epochs but epochs_done is {}",
                self.history.len(),
                self.epochs_done
            ));
        }
        // indices must be a permutation of 0..n
        let n = self.indices.len();
        let mut seen = vec![false; n];
        for &i in &self.indices {
            if i >= n || seen[i] {
                return Err("shuffle indices are not a permutation".into());
            }
            seen[i] = true;
        }
        Ok(())
    }

    /// Validates this checkpoint against the run about to resume it.
    pub(crate) fn validate_against(
        &self,
        config: &TrainConfig,
        model_config: &ModelConfig,
        store: &rtp_tensor::ParamStore,
        dataset: &Dataset,
    ) -> Result<(), CheckpointError> {
        let want = trajectory_fields(config);
        let have = trajectory_fields(&self.train_config);
        for ((name, w), (_, h)) in want.iter().zip(&have) {
            if w != h {
                return Err(CheckpointError::Mismatch(format!(
                    "train config field `{name}` differs: checkpoint has {h}, this run has {w}"
                )));
            }
        }
        let want_model = serde_json::to_string(model_config).unwrap_or_default();
        let have_model = serde_json::to_string(&self.model_config).unwrap_or_default();
        if want_model != have_model {
            return Err(CheckpointError::Mismatch(
                "model config differs from the checkpointed run (variant / dims / vocab)".into(),
            ));
        }
        let fp = dataset_fingerprint(dataset);
        if fp != self.dataset_fingerprint {
            return Err(CheckpointError::Mismatch(format!(
                "dataset fingerprint {:#018x} differs from the checkpointed run's {:#018x}",
                fp, self.dataset_fingerprint
            )));
        }
        if self.weights.len() != store.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint holds {} weight tensors but the model has {}",
                self.weights.len(),
                store.len()
            )));
        }
        for id in store.iter_ids() {
            if self.weights[id.index()].len() != store.data(id).len() {
                return Err(CheckpointError::Mismatch(format!(
                    "weight tensor `{}` has {} scalars in the checkpoint but {} in the model",
                    store.name(id),
                    self.weights[id.index()].len(),
                    store.data(id).len()
                )));
            }
        }
        if self.indices.len() != dataset.train.len() {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint shuffled {} train samples but the dataset has {}",
                self.indices.len(),
                dataset.train.len()
            )));
        }
        Ok(())
    }
}

/// The `TrainConfig` fields that shape the training trajectory (all of
/// them except `verbose` and `threads`), rendered for comparison.
fn trajectory_fields(c: &TrainConfig) -> Vec<(&'static str, String)> {
    vec![
        ("epochs", c.epochs.to_string()),
        ("lr", c.lr.to_bits().to_string()),
        ("batch_size", c.batch_size.to_string()),
        ("grad_clip", c.grad_clip.to_bits().to_string()),
        ("patience", c.patience.to_string()),
        ("route_warmup_frac", c.route_warmup_frac.to_bits().to_string()),
        ("seed", c.seed.to_string()),
    ]
}

/// A stable fingerprint of the training data: FNV-1a over the dataset
/// config JSON, the split sizes and the city/fleet cardinalities.
/// Collisions are astronomically unlikely for the failure mode this
/// guards (accidentally pointing `--resume` at a different dataset).
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(serde_json::to_string(&dataset.config).unwrap_or_default().as_bytes());
    for n in [
        dataset.train.len(),
        dataset.val.len(),
        dataset.test.len(),
        dataset.couriers.len(),
        dataset.city.aois.len(),
    ] {
        eat(&(n as u64).to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("rtp-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn minimal_checkpoint() -> TrainCheckpoint {
        TrainCheckpoint {
            version: CHECKPOINT_VERSION,
            train_config: TrainConfig::quick(),
            model_config: {
                let d = DatasetBuilder::new(DatasetConfig::tiny(71)).build();
                ModelConfig::for_dataset(&d)
            },
            dataset_fingerprint: 1,
            epochs_done: 1,
            stopped_early: false,
            rng_state: [1, 2, 3, 4],
            indices: vec![2, 0, 1],
            adam: rtp_tensor::optim::Adam::new(1e-3).state(),
            weights: vec![vec![1.0, 2.0]],
            best_snapshot: vec![vec![1.0, 2.0]],
            best_score_bits: f64::NEG_INFINITY.to_bits(),
            best_krc_bits: 0.0f64.to_bits(),
            best_mae_bits: f64::MAX.to_bits(),
            since_best: 0,
            history: vec![EpochStats { epoch: 0, train_loss: 1.0, val_krc: 0.1, val_mae: 9.0 }],
            train_seconds: 0.5,
            train_loop_seconds: 0.4,
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_bits() {
        let dir = tmpdir("roundtrip");
        let cp = minimal_checkpoint();
        let bytes = cp.save(&dir).unwrap();
        assert!(bytes > 0);
        let back = TrainCheckpoint::load(&dir).unwrap();
        assert_eq!(back.rng_state, cp.rng_state);
        assert_eq!(back.best_score_bits, cp.best_score_bits);
        assert_eq!(f64::from_bits(back.best_score_bits), f64::NEG_INFINITY);
        assert_eq!(back.weights, cp.weights);
        assert_eq!(back.indices, cp.indices);
        assert_eq!(back.history.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_checkpoint_is_a_clear_error() {
        let dir = tmpdir("missing");
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)));
        assert!(err.to_string().contains("nothing to resume from"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_checkpoint_is_rejected() {
        let dir = tmpdir("truncated");
        let cp = minimal_checkpoint();
        cp.save(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_is_rejected() {
        let dir = tmpdir("version");
        let mut cp = minimal_checkpoint();
        cp.version = CHECKPOINT_VERSION + 1;
        cp.save(&dir).unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn internally_inconsistent_checkpoints_are_rejected() {
        let dir = tmpdir("inconsistent");
        let mut cp = minimal_checkpoint();
        cp.indices = vec![0, 0, 1]; // not a permutation
        cp.save(&dir).unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(err.to_string().contains("permutation"), "{err}");

        let mut cp = minimal_checkpoint();
        cp.rng_state = [0; 4];
        cp.save(&dir).unwrap();
        let err = TrainCheckpoint::load(&dir).unwrap_err();
        assert!(err.to_string().contains("RNG state"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_fingerprint_separates_datasets() {
        let a = DatasetBuilder::new(DatasetConfig::tiny(71)).build();
        let b = DatasetBuilder::new(DatasetConfig::tiny(72)).build();
        assert_eq!(dataset_fingerprint(&a), dataset_fingerprint(&a));
        assert_ne!(dataset_fingerprint(&a), dataset_fingerprint(&b));
    }
}
