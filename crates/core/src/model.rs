//! The M²G4RTP model: wiring of the multi-level encoder, the
//! multi-task decoders, the AOI→location guidance pathway and the
//! uncertainty-weighted joint loss (paper §IV).

use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig, MultiLevelGraph};
use rtp_sim::{Courier, Dataset, RtpQuery, RtpSample};
use rtp_tensor::nn::{positional_encoding, Embedding};
use rtp_tensor::{Numerics, ParamId, ParamStore, QuantSet, Tape, TensorId};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

use crate::config::{ModelConfig, Variant};
use crate::decoder::{RouteDecoder, SortLstm};
use crate::encoder::{BiLstmEncoder, EdgeEmbedder, Encoder, GatEncoder, LevelBatch, NodeEmbedder};
use crate::TIME_SCALE;

/// Inference output for one query: routes and arrival times at both
/// levels (paper Eq. 10 plus the AOI-level outputs of §IV-D).
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Predicted AOI visit sequence (indices into
    /// `query.distinct_aois()`).
    pub aoi_route: Vec<usize>,
    /// Predicted AOI arrival gaps in minutes, aligned with AOI node
    /// index.
    pub aoi_times: Vec<f32>,
    /// Predicted location visit sequence (indices into `query.orders`).
    pub route: Vec<usize>,
    /// Predicted location arrival gaps in minutes, aligned with
    /// location index.
    pub times: Vec<f32>,
}

/// The encoder activations of one query, extracted as raw bits so a
/// serving layer can cache them per courier and replay the (cheap)
/// decoders without re-running graph feature extraction or the GAT-e
/// stack. Replaying through [`M2G4Rtp::predict_encoded_into`] is
/// bit-identical to a cold [`M2G4Rtp::predict_into`] because the
/// decoders consume the encoder outputs only through these values.
#[derive(Debug, Clone)]
pub struct EncodedQuery {
    /// Location-level encoder output, row-major `[n, d_loc]`.
    pub x_loc: Vec<f32>,
    /// AOI-level encoder output `[m, d_aoi]`; `None` for the `NoAoi`
    /// ablation, which has no AOI encoder.
    pub x_aoi: Option<Vec<f32>>,
}

/// Scalar loss components of one training sample (for logging).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleLosses {
    /// Combined (variant-weighted) loss.
    pub total: f32,
    /// AOI route cross-entropy (0 for `NoAoi`).
    pub route_aoi: f32,
    /// Location route cross-entropy.
    pub route_loc: f32,
    /// AOI time MAE, in `TIME_SCALE` units (0 for `NoAoi`).
    pub time_aoi: f32,
    /// Location time MAE, in `TIME_SCALE` units.
    pub time_loc: f32,
}

/// The tape tensors of one training forward pass; the trainer picks
/// which one to backprop depending on the variant/phase.
pub(crate) struct LossTensors {
    /// Variant-weighted total (what joint training optimises).
    pub total: TensorId,
    /// Unweighted sum of the route losses (two-step phase A).
    pub route_total: TensorId,
    /// Unweighted sum of the time losses (two-step phase B).
    pub time_total: TensorId,
    /// Scalar values for logging.
    pub scalars: SampleLosses,
}

/// Feature pipeline attached to a trained model so it can serve raw
/// queries end to end (graph construction + train-split scaling).
#[derive(Debug, Clone)]
struct Pipeline {
    builder: GraphBuilder,
    scaler: FeatureScaler,
}

/// The M²G4RTP model (or one of its ablation variants).
#[derive(Debug)]
pub struct M2G4Rtp {
    config: ModelConfig,
    /// All learnable weights.
    pub store: ParamStore,
    node_emb_loc: NodeEmbedder,
    edge_emb_loc: EdgeEmbedder,
    enc_loc: Encoder,
    aoi_level: Option<AoiLevel>,
    courier_emb: Embedding,
    route_dec_loc: RouteDecoder,
    time_dec_loc: SortLstm,
    time_dec_aoi: Option<SortLstm>,
    /// Learnable log-variances `s_i = log σ_i²` of Eq. 41.
    unc: Vec<ParamId>,
    /// Param-id range `[start, end)` of the time modules (SortLSTMs and
    /// their heads) — the freeze boundary for two-step training.
    time_param_range: (usize, usize),
    pipeline: Option<Pipeline>,
    /// Quantized parameter snapshot for `--numerics quantized`
    /// inference, built lazily on first use. Taken once: quantized
    /// serving assumes frozen weights (the §VI deployment flow —
    /// train offline, package, serve), so training after the first
    /// quantized prediction would serve stale i8 weights.
    quant: OnceLock<Arc<QuantSet>>,
}

#[derive(Debug)]
struct AoiLevel {
    node_emb: NodeEmbedder,
    edge_emb: EdgeEmbedder,
    enc: Encoder,
    route_dec: RouteDecoder,
}

impl M2G4Rtp {
    /// Builds a model (weights initialised from `seed`).
    pub fn new(config: ModelConfig, seed: u64) -> Self {
        config.validate();
        let mut store = ParamStore::new(seed);
        let c = &config;

        let node_emb_loc = NodeEmbedder::new(
            &mut store,
            "loc.node_emb",
            rtp_graph::LOC_CONT_DIM,
            rtp_graph::GLOBAL_CONT_DIM,
            c.aoi_vocab,
            c.courier_vocab,
            c.d_disc,
            c.d_loc,
        );
        let edge_emb_loc =
            EdgeEmbedder::new(&mut store, "loc.edge_emb", rtp_graph::EDGE_DIM, c.d_loc);
        let enc_loc = match c.variant {
            Variant::NoGraph => Encoder::BiLstm(BiLstmEncoder::new(&mut store, "loc.enc", c.d_loc)),
            _ => Encoder::Gat(GatEncoder::new(
                &mut store,
                "loc.enc",
                c.d_loc,
                c.n_heads,
                c.n_layers,
                c.leaky_slope,
            )),
        };

        let has_aoi = c.variant != Variant::NoAoi;
        let aoi_parts = if has_aoi {
            let node_emb = NodeEmbedder::new(
                &mut store,
                "aoi.node_emb",
                rtp_graph::AOI_CONT_DIM,
                rtp_graph::GLOBAL_CONT_DIM,
                c.aoi_vocab,
                c.courier_vocab,
                c.d_disc,
                c.d_aoi,
            );
            let edge_emb =
                EdgeEmbedder::new(&mut store, "aoi.edge_emb", rtp_graph::EDGE_DIM, c.d_aoi);
            let enc = match c.variant {
                Variant::NoGraph => {
                    Encoder::BiLstm(BiLstmEncoder::new(&mut store, "aoi.enc", c.d_aoi))
                }
                _ => Encoder::Gat(GatEncoder::new(
                    &mut store,
                    "aoi.enc",
                    c.d_aoi,
                    c.n_heads,
                    c.n_layers,
                    c.leaky_slope,
                )),
            };
            Some((node_emb, edge_emb, enc))
        } else {
            None
        };

        let courier_emb = Embedding::new(&mut store, "courier_emb", c.courier_vocab, c.d_courier);

        let aoi_route_dec = has_aoi.then(|| {
            RouteDecoder::new(&mut store, "aoi.route_dec", c.d_aoi, c.d_u(), c.d_aoi, c.d_aoi)
        });
        // Location inputs carry AOI guidance (Eq. 34): position encoding
        // of the containing AOI + its predicted arrival time.
        let d_in_loc = if has_aoi { c.d_loc + c.d_pos + 1 } else { c.d_loc };
        let route_dec_loc =
            RouteDecoder::new(&mut store, "loc.route_dec", d_in_loc, c.d_u(), c.d_loc, c.d_loc);

        // --- time modules last: their ids form the two-step freeze range ---
        let time_start = store.len();
        let time_dec_aoi =
            has_aoi.then(|| SortLstm::new(&mut store, "aoi.time_dec", c.d_aoi, c.d_pos, c.d_aoi));
        let time_dec_loc = SortLstm::new(&mut store, "loc.time_dec", d_in_loc, c.d_pos, c.d_loc);
        let time_end = store.len();

        let n_losses = if has_aoi { 4 } else { 2 };
        // s_i = log sigma_i^2 (Eq. 41). Route terms start at s=0
        // (weight 1/2); time terms start at s=2 (weight ~0.07), letting
        // the route structure form before the regression pressure ramps
        // up — the learnable s then rebalances (Kendall et al. leave the
        // initialisation free).
        let unc = (0..n_losses)
            .map(|i| {
                let is_time = i >= n_losses / 2;
                store.add_param(&format!("unc.s{i}"), 1, 1, vec![if is_time { 2.0 } else { 0.0 }])
            })
            .collect();

        let aoi_level = aoi_parts.map(|(node_emb, edge_emb, enc)| AoiLevel {
            node_emb,
            edge_emb,
            enc,
            route_dec: aoi_route_dec.expect("constructed together"),
        });

        Self {
            config: config.clone(),
            store,
            node_emb_loc,
            edge_emb_loc,
            enc_loc,
            aoi_level,
            courier_emb,
            route_dec_loc,
            time_dec_loc,
            time_dec_aoi,
            unc,
            time_param_range: (time_start, time_end),
            pipeline: None,
            quant: OnceLock::new(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Total number of scalar weights.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// Whether a parameter belongs to the time modules (SortLSTMs and
    /// their output heads) — the set two-step phase B trains.
    pub fn is_time_param(&self, id: ParamId) -> bool {
        let i = id.index();
        i >= self.time_param_range.0 && i < self.time_param_range.1
    }

    /// Attaches the feature pipeline (graph builder + scaler fitted on
    /// the training split) so the model can serve raw queries.
    pub fn set_pipeline(&mut self, builder: GraphBuilder, scaler: FeatureScaler) {
        self.pipeline = Some(Pipeline { builder, scaler });
    }

    /// Whether a pipeline is attached.
    pub fn has_pipeline(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Builds and scales the multi-level graph for a raw query.
    ///
    /// # Panics
    /// Panics if no pipeline is attached (train first, or call
    /// [`M2G4Rtp::set_pipeline`]).
    pub fn build_graph(
        &self,
        city: &rtp_sim::City,
        courier: &Courier,
        query: &RtpQuery,
    ) -> MultiLevelGraph {
        let p = self.pipeline.as_ref().expect("no pipeline attached; train the model first");
        let mut g = p.builder.build(query, city, courier);
        p.scaler.apply(&mut g);
        g
    }

    // -----------------------------------------------------------------
    // shared forward pieces
    // -----------------------------------------------------------------

    fn encode_loc(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let x = self.node_emb_loc.embed(t, store, &g.locations, &g.global);
        let z = self.edge_emb_loc.embed(t, store, &g.locations);
        self.enc_loc.forward(t, store, x, z, &g.locations.adj)
    }

    fn encode_aoi(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let a = self.aoi_level.as_ref().expect("AOI level present");
        let x = a.node_emb.embed(t, store, &g.aois, &g.global);
        let z = a.edge_emb.embed(t, store, &g.aois);
        a.enc.forward(t, store, x, z, &g.aois.adj)
    }

    /// Courier representation `u`: embedding ‖ profile features
    /// (working hours, speed, attendance — already standardised).
    fn courier_repr(&self, t: &mut Tape, store: &ParamStore, g: &MultiLevelGraph) -> TensorId {
        let emb = self.courier_emb.forward(t, store, &[g.global.courier_id]);
        let profile = t.constant(1, 3, g.global.cont[..3].to_vec());
        t.concat_cols(&[emb, profile])
    }

    /// Builds the location-decoder inputs with AOI guidance (Eq. 34):
    /// `x_in_i = [x̃_i^l ‖ p_aoi ‖ ŷ_aoi^a]`, where `p_aoi` is the
    /// positional encoding of the containing AOI's route position and
    /// `ŷ^a` the (differentiable) predicted AOI arrival time.
    fn guided_loc_inputs(
        &self,
        t: &mut Tape,
        x_loc: TensorId,
        y_aoi_pred: TensorId,
        aoi_ranks: &[usize],
        loc_to_aoi: &[usize],
    ) -> TensorId {
        let n = loc_to_aoi.len();
        let d_pos = self.config.d_pos;
        let mut pos_data = Vec::with_capacity(n * d_pos);
        for &a in loc_to_aoi {
            pos_data.extend(positional_encoding(aoi_ranks[a] + 1, d_pos));
        }
        let p = t.constant(n, d_pos, pos_data);
        let y = t.gather_rows(y_aoi_pred, loc_to_aoi);
        t.concat_cols(&[x_loc, p, y])
    }

    // -----------------------------------------------------------------
    // training forward
    // -----------------------------------------------------------------

    /// Builds the full training tape for one sample and returns the loss
    /// tensors. Teacher forcing is used at both levels: decoders consume
    /// ground-truth prefixes, SortLSTMs run along the ground-truth route
    /// (the paper's decoders are trained the same way; the AOI-guidance
    /// arrival time stays the *predicted* tensor so gradients couple the
    /// levels).
    pub(crate) fn forward_train(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        g: &MultiLevelGraph,
        truth: &rtp_sim::GroundTruth,
    ) -> LossTensors {
        let u = self.courier_repr(t, store, g);
        let x_loc = self.encode_loc(t, store, g);

        let mut route_aoi_loss = None;
        let mut time_aoi_loss = None;
        let x_in_loc = if let Some(aoi) = &self.aoi_level {
            let x_aoi = self.encode_aoi(t, store, g);
            route_aoi_loss = Some(aoi.route_dec.train_loss(t, store, x_aoi, u, &truth.aoi_route));
            let y_pred = self.time_dec_aoi.as_ref().expect("AOI time decoder").forward(
                t,
                store,
                x_aoi,
                &truth.aoi_route,
            );
            let target: Vec<f32> = truth.aoi_arrival.iter().map(|&v| v / TIME_SCALE).collect();
            let y_target = t.constant(target.len(), 1, target);
            time_aoi_loss = Some(t.mae_loss(y_pred, y_target));
            // Detach the guidance: the location tasks consume the AOI
            // arrival predictions as *inputs*, but their gradients must
            // not steer the AOI module — letting them through measurably
            // degrades the AOI route accuracy that the whole
            // divide-and-conquer hinges on.
            let y_detached = {
                let data = t.data(y_pred).to_vec();
                t.constant(data.len(), 1, data)
            };
            self.guided_loc_inputs(t, x_loc, y_detached, &truth.aoi_ranks(), &g.loc_to_aoi)
        } else {
            x_loc
        };

        let route_loc_loss = self.route_dec_loc.train_loss(t, store, x_in_loc, u, &truth.route);
        let y_loc_pred = self.time_dec_loc.forward(t, store, x_in_loc, &truth.route);
        let loc_target: Vec<f32> = truth.arrival.iter().map(|&v| v / TIME_SCALE).collect();
        let y_loc_target = t.constant(loc_target.len(), 1, loc_target);
        let time_loc_loss = t.mae_loss(y_loc_pred, y_loc_target);

        let (total, route_total, time_total) = self.combine_losses(
            t,
            store,
            route_aoi_loss,
            route_loc_loss,
            time_aoi_loss,
            time_loc_loss,
        );

        let scalars = SampleLosses {
            total: t.scalar(total),
            route_aoi: route_aoi_loss.map(|l| t.scalar(l)).unwrap_or(0.0),
            route_loc: t.scalar(route_loc_loss),
            time_aoi: time_aoi_loss.map(|l| t.scalar(l)).unwrap_or(0.0),
            time_loc: t.scalar(time_loc_loss),
        };
        LossTensors { total, route_total, time_total, scalars }
    }

    /// Combines the task losses per the variant: homoscedastic
    /// uncertainty weighting (Eq. 41) by default, fixed 100:1 weights
    /// for `NoUncertainty`, plain sums for the two-step phases.
    fn combine_losses(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        route_aoi: Option<TensorId>,
        route_loc: TensorId,
        time_aoi: Option<TensorId>,
        time_loc: TensorId,
    ) -> (TensorId, TensorId, TensorId) {
        let route_total = match route_aoi {
            Some(ra) => t.add(ra, route_loc),
            None => route_loc,
        };
        let time_total = match time_aoi {
            Some(ta) => t.add(ta, time_loc),
            None => time_loc,
        };
        let total = match self.config.variant {
            Variant::NoUncertainty => {
                let r = t.scale(route_total, 100.0);
                t.add(r, time_total)
            }
            Variant::TwoStep => {
                // Joint total is never optimised for this variant; keep
                // a plain sum for logging.
                t.add(route_total, time_total)
            }
            _ => {
                // Eq. 41 with s_i = log σ_i²:
                //   route: ½·exp(−s)·L + ½·s      time: exp(−s)·L + ½·s
                let mut terms = Vec::new();
                let mut push = |t: &mut Tape, s_id: ParamId, loss: TensorId, half: bool| {
                    let s = t.param(store, s_id);
                    let neg_s = t.neg(s);
                    let w = t.exp(neg_s);
                    let weighted = t.mul(w, loss);
                    let weighted = if half { t.scale(weighted, 0.5) } else { weighted };
                    let reg = t.scale(s, 0.5);
                    terms.push(t.add(weighted, reg));
                };
                let mut k = 0;
                if let Some(ra) = route_aoi {
                    push(t, self.unc[k], ra, true);
                    k += 1;
                }
                push(t, self.unc[k], route_loc, true);
                k += 1;
                if let Some(ta) = time_aoi {
                    push(t, self.unc[k], ta, false);
                    k += 1;
                }
                push(t, self.unc[k], time_loc, false);
                let mut acc = terms[0];
                for &term in &terms[1..] {
                    acc = t.add(acc, term);
                }
                acc
            }
        };
        (total, route_total, time_total)
    }

    // -----------------------------------------------------------------
    // inference
    // -----------------------------------------------------------------

    /// Greedy joint inference on a pre-built (scaled) graph.
    ///
    /// Runs on a fresh no-grad tape; latency-sensitive callers should
    /// hold a [`Tape::inference`] tape and use
    /// [`M2G4Rtp::predict_into`] to reuse its buffers across queries.
    pub fn predict(&self, g: &MultiLevelGraph) -> Prediction {
        self.predict_into(&mut Tape::inference(), g)
    }

    /// Like [`M2G4Rtp::predict`], but reuses `t` (cleared first), so
    /// repeated queries are served without tape allocations. `t` is
    /// typically a [`Tape::inference`] tape; a grad tape works too but
    /// pays for gradient buffers nobody reads.
    pub fn predict_into(&self, t: &mut Tape, g: &MultiLevelGraph) -> Prediction {
        t.clear();
        let store = &self.store;
        let u = self.courier_repr(t, store, g);
        let x_loc = self.encode_loc(t, store, g);
        let x_aoi = self.aoi_level.as_ref().map(|_| self.encode_aoi(t, store, g));
        self.decode_levels(t, store, g, u, x_loc, x_aoi)
    }

    /// The i8 quantized snapshot of this model's weight matrices,
    /// built once on first request and shared by every quantized tape
    /// afterwards (weights are frozen at serve time).
    pub fn quant_set(&self) -> Arc<QuantSet> {
        Arc::clone(self.quant.get_or_init(|| Arc::new(QuantSet::build(&self.store))))
    }

    /// A fresh no-grad tape configured for `numerics`, with the
    /// model's quantized weights attached when the tier needs them.
    /// This is the one constructor serve/eval paths should use so the
    /// tier flag and the quant snapshot can never go out of sync.
    pub fn inference_tape(&self, numerics: Numerics) -> Tape {
        let mut t = Tape::inference_with(numerics);
        if numerics == Numerics::Quantized {
            t.attach_quant(self.quant_set());
        }
        t
    }

    /// The shared greedy decode tail: AOI route/time decoding, the
    /// guidance pathway (Eq. 34) and the location decoders, starting
    /// from already-encoded node representations. Every inference entry
    /// point (cold, batched, cached-activation) funnels through this,
    /// so equal encoder bits guarantee equal predictions.
    fn decode_levels(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        g: &MultiLevelGraph,
        u: TensorId,
        x_loc: TensorId,
        x_aoi: Option<TensorId>,
    ) -> Prediction {
        let (aoi_route, aoi_times, x_in_loc) = if let Some(aoi) = &self.aoi_level {
            let x_aoi = x_aoi.expect("AOI-level model requires AOI activations");
            let aoi_route = aoi.route_dec.decode(t, store, x_aoi, u);
            let y_aoi = self
                .time_dec_aoi
                .as_ref()
                .expect("AOI time decoder")
                .forward(t, store, x_aoi, &aoi_route);
            let mut aoi_ranks = vec![0usize; aoi_route.len()];
            for (pos, &a) in aoi_route.iter().enumerate() {
                aoi_ranks[a] = pos;
            }
            let x_in = self.guided_loc_inputs(t, x_loc, y_aoi, &aoi_ranks, &g.loc_to_aoi);
            let times: Vec<f32> =
                t.data(y_aoi).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();
            (aoi_route, times, x_in)
        } else {
            (Vec::new(), Vec::new(), x_loc)
        };

        let route = self.route_dec_loc.decode(t, store, x_in_loc, u);
        let y_loc = self.time_dec_loc.forward(t, store, x_in_loc, &route);
        let times: Vec<f32> = t.data(y_loc).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();

        if self.aoi_level.is_some() {
            Prediction { aoi_route, aoi_times, route, times }
        } else {
            // Derive AOI-level outputs from the location predictions so
            // the ablation still reports all four outputs.
            let (aoi_route, aoi_times) =
                derive_aoi_outputs(&route, &times, &g.loc_to_aoi, g.aois.n);
            Prediction { aoi_route, aoi_times, route, times }
        }
    }

    /// Batched courier representations `[B, d_u]`, row `s` bit-identical
    /// to [`M2G4Rtp::courier_repr`] for `graphs[s]` (embedding lookup
    /// and the profile constant are both row-local).
    fn courier_repr_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        graphs: &[&MultiLevelGraph],
    ) -> TensorId {
        let ids: Vec<usize> = graphs.iter().map(|g| g.global.courier_id).collect();
        let emb = self.courier_emb.forward(t, store, &ids);
        let mut profile = Vec::with_capacity(graphs.len() * 3);
        for g in graphs {
            profile.extend_from_slice(&g.global.cont[..3]);
        }
        let profile = t.constant(graphs.len(), 3, profile);
        t.concat_cols(&[emb, profile])
    }

    /// Encodes a batch of graphs in stacked forwards and returns, per
    /// sample, its `(u, x_loc, x_aoi)` tensors sliced out of the stack.
    fn encode_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        graphs: &[&MultiLevelGraph],
    ) -> Vec<(TensorId, TensorId, Option<TensorId>)> {
        let u_all = self.courier_repr_batch(t, store, graphs);
        let globals: Vec<&rtp_graph::GlobalFeatures> = graphs.iter().map(|g| &g.global).collect();

        let loc_batch = LevelBatch::new(graphs.iter().map(|g| &g.locations).collect());
        let x = self.node_emb_loc.embed_batch(t, store, &loc_batch, &globals);
        let z = self.edge_emb_loc.embed_batch(t, store, &loc_batch);
        let x_loc_all = self.enc_loc.forward_batch(t, store, x, z, &loc_batch);

        let x_aoi_all = self.aoi_level.as_ref().map(|aoi| {
            let aoi_batch = LevelBatch::new(graphs.iter().map(|g| &g.aois).collect());
            let x = aoi.node_emb.embed_batch(t, store, &aoi_batch, &globals);
            let z = aoi.edge_emb.embed_batch(t, store, &aoi_batch);
            let x_aoi = aoi.enc.forward_batch(t, store, x, z, &aoi_batch);
            (x_aoi, aoi_batch)
        });

        (0..graphs.len())
            .map(|s| {
                let u = t.gather_rows(u_all, &[s]);
                let x_loc = t.gather_rows(x_loc_all, loc_batch.node_indices(s));
                let x_aoi = x_aoi_all
                    .as_ref()
                    .map(|(all, batch)| t.gather_rows(*all, batch.node_indices(s)));
                (u, x_loc, x_aoi)
            })
            .collect()
    }

    /// Greedy joint inference for a whole micro-batch on one tape.
    ///
    /// The encoders run as stacked forwards over all samples (one big
    /// matmul per weight instead of `B` small ones — the row counts
    /// where the blocked kernels earn their keep); the sequential
    /// decoders then run per sample. Each returned prediction is
    /// **bit-identical** to [`M2G4Rtp::predict_into`] on that graph
    /// alone: every batched op is either row-local (matmul rows,
    /// elementwise, gathers) or runs on a per-sample slice carrying the
    /// same bits.
    pub fn predict_batch_into(&self, t: &mut Tape, graphs: &[&MultiLevelGraph]) -> Vec<Prediction> {
        t.clear();
        if graphs.is_empty() {
            return Vec::new();
        }
        let store = &self.store;
        let encoded = self.encode_batch(t, store, graphs);
        encoded
            .into_iter()
            .zip(graphs)
            .map(|((u, x_loc, x_aoi), g)| self.decode_levels(t, store, g, u, x_loc, x_aoi))
            .collect()
    }

    /// Like [`M2G4Rtp::predict_batch_into`], but also extracts each
    /// sample's encoder activations so a serving layer can cache them
    /// (see [`EncodedQuery`]).
    pub fn predict_batch_encoded_into(
        &self,
        t: &mut Tape,
        graphs: &[&MultiLevelGraph],
    ) -> Vec<(Prediction, EncodedQuery)> {
        t.clear();
        if graphs.is_empty() {
            return Vec::new();
        }
        let store = &self.store;
        let encoded = self.encode_batch(t, store, graphs);
        encoded
            .into_iter()
            .zip(graphs)
            .map(|((u, x_loc, x_aoi), g)| {
                let enc = EncodedQuery {
                    x_loc: t.data(x_loc).to_vec(),
                    x_aoi: x_aoi.map(|x| t.data(x).to_vec()),
                };
                (self.decode_levels(t, store, g, u, x_loc, x_aoi), enc)
            })
            .collect()
    }

    /// Greedy joint inference replaying cached encoder activations:
    /// skips feature embedding and the GAT-e stacks entirely and runs
    /// only the decoders. Bit-identical to [`M2G4Rtp::predict_into`]
    /// on `g` when `enc` was extracted from the same (graph, weights):
    /// the decoders see the same constant bits either way.
    ///
    /// # Panics
    /// Panics if `enc`'s shapes do not match `g` (wrong node counts or
    /// a missing AOI level).
    pub fn predict_encoded_into(
        &self,
        t: &mut Tape,
        g: &MultiLevelGraph,
        enc: &EncodedQuery,
    ) -> Prediction {
        t.clear();
        let store = &self.store;
        let u = self.courier_repr(t, store, g);
        let n = g.locations.n;
        assert_eq!(enc.x_loc.len() % n.max(1), 0, "cached x_loc shape mismatch");
        let x_loc = t.constant(n, enc.x_loc.len() / n, enc.x_loc.clone());
        let x_aoi = self.aoi_level.as_ref().map(|_| {
            let data = enc.x_aoi.as_ref().expect("AOI-level model requires cached x_aoi");
            let m = g.aois.n;
            assert_eq!(data.len() % m.max(1), 0, "cached x_aoi shape mismatch");
            t.constant(m, data.len() / m, data.clone())
        });
        self.decode_levels(t, store, g, u, x_loc, x_aoi)
    }

    /// Joint inference with beam-search route decoding (extension over
    /// the paper's greedy decoder): both levels decode with the given
    /// beam width; `beam == 1` is identical to [`M2G4Rtp::predict`].
    pub fn predict_beam(&self, g: &MultiLevelGraph, beam: usize) -> Prediction {
        let t = &mut Tape::inference();
        let store = &self.store;
        let u = self.courier_repr(t, store, g);
        let x_loc = self.encode_loc(t, store, g);
        let (aoi_route, aoi_times, x_in_loc) = if let Some(aoi) = &self.aoi_level {
            let x_aoi = self.encode_aoi(t, store, g);
            let aoi_route = aoi.route_dec.decode_beam(t, store, x_aoi, u, beam);
            let y_aoi = self
                .time_dec_aoi
                .as_ref()
                .expect("AOI time decoder")
                .forward(t, store, x_aoi, &aoi_route);
            let mut aoi_ranks = vec![0usize; aoi_route.len()];
            for (pos, &a) in aoi_route.iter().enumerate() {
                aoi_ranks[a] = pos;
            }
            let x_in = self.guided_loc_inputs(t, x_loc, y_aoi, &aoi_ranks, &g.loc_to_aoi);
            let times: Vec<f32> =
                t.data(y_aoi).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();
            (aoi_route, times, x_in)
        } else {
            (Vec::new(), Vec::new(), x_loc)
        };
        let route = self.route_dec_loc.decode_beam(t, store, x_in_loc, u, beam);
        let y_loc = self.time_dec_loc.forward(t, store, x_in_loc, &route);
        let times: Vec<f32> = t.data(y_loc).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();
        if self.aoi_level.is_some() {
            Prediction { aoi_route, aoi_times, route, times }
        } else {
            let (aoi_route, aoi_times) =
                derive_aoi_outputs(&route, &times, &g.loc_to_aoi, g.aois.n);
            Prediction { aoi_route, aoi_times, route, times }
        }
    }

    /// Diagnostic inference: like [`M2G4Rtp::predict`], but feeds the
    /// location level **ground-truth** AOI guidance (route positions and
    /// true arrival times) instead of the AOI decoder's predictions.
    ///
    /// The gap between this and `predict` isolates how much location
    /// error is inherited from AOI-level mistakes — the error-analysis
    /// companion to the paper's "AOI guiding Location" design.
    pub fn predict_with_oracle_guidance(
        &self,
        g: &MultiLevelGraph,
        truth: &rtp_sim::GroundTruth,
    ) -> Prediction {
        let t = &mut Tape::inference();
        let store = &self.store;
        let u = self.courier_repr(t, store, g);
        let x_loc = self.encode_loc(t, store, g);
        let x_in_loc = if self.aoi_level.is_some() {
            let scaled: Vec<f32> = truth.aoi_arrival.iter().map(|&v| v / TIME_SCALE).collect();
            let y_true = t.constant(scaled.len(), 1, scaled);
            self.guided_loc_inputs(t, x_loc, y_true, &truth.aoi_ranks(), &g.loc_to_aoi)
        } else {
            x_loc
        };
        let route = self.route_dec_loc.decode(t, store, x_in_loc, u);
        let y_loc = self.time_dec_loc.forward(t, store, x_in_loc, &route);
        let times: Vec<f32> = t.data(y_loc).iter().map(|&v| (v * TIME_SCALE).max(0.0)).collect();
        let (aoi_route, aoi_times) = derive_aoi_outputs(&route, &times, &g.loc_to_aoi, g.aois.n);
        Prediction { aoi_route, aoi_times, route, times }
    }

    /// Convenience: builds the graph for `sample` through the attached
    /// pipeline and predicts.
    pub fn predict_sample(&self, dataset: &Dataset, sample: &RtpSample) -> Prediction {
        self.predict_sample_with(dataset, sample, Numerics::Exact)
    }

    /// [`M2G4Rtp::predict_sample`] under an explicit numerics tier
    /// (`--numerics` on `rtp eval`).
    pub fn predict_sample_with(
        &self,
        dataset: &Dataset,
        sample: &RtpSample,
        numerics: Numerics,
    ) -> Prediction {
        let courier = &dataset.couriers[sample.query.courier_id];
        let g = self.build_graph(&dataset.city, courier, &sample.query);
        self.predict_into(&mut self.inference_tape(numerics), &g)
    }
}

/// A serialisable snapshot of a trained model: configuration, weights
/// and the feature pipeline. This is what the paper's "pre-trained
/// model packaged as M²G4RTP Service module" (§VI, Fig. 7) persists
/// between the offline training job and the online inference layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    /// Model hyperparameters (the architecture is reconstructed from
    /// these).
    pub config: ModelConfig,
    /// Per-parameter weight tensors in registration order.
    pub weights: Vec<Vec<f32>>,
    /// Graph-construction config of the attached pipeline, if any.
    pub graph_config: Option<GraphConfig>,
    /// Fitted feature scaler of the attached pipeline, if any.
    pub scaler: Option<FeatureScaler>,
}

impl SavedModel {
    /// Checks that this snapshot can replace `current` in place — a
    /// hot-swap precondition with the same loud-rejection policy as
    /// checkpoint `--resume` ([`crate::checkpoint::CheckpointError`]):
    /// a swap that cannot be proven compatible is refused with a named
    /// reason, never guessed at and never allowed to reach the
    /// panicking weight restore in [`M2G4Rtp::from_saved`].
    ///
    /// Compatible means: every architecture field of [`ModelConfig`]
    /// matches the running model (graph dims, feature widths, vocab
    /// sizes, variant), the snapshot carries a feature pipeline (a
    /// server cannot build graphs without one), and the weight layout
    /// matches the running parameter store tensor by tensor.
    pub fn validate_swap(&self, current: &M2G4Rtp) -> Result<(), String> {
        let have = current.config();
        let want = &self.config;
        let fields: [(&str, usize, usize); 9] = [
            ("d_loc", want.d_loc, have.d_loc),
            ("d_aoi", want.d_aoi, have.d_aoi),
            ("d_disc", want.d_disc, have.d_disc),
            ("d_courier", want.d_courier, have.d_courier),
            ("d_pos", want.d_pos, have.d_pos),
            ("n_heads", want.n_heads, have.n_heads),
            ("n_layers", want.n_layers, have.n_layers),
            ("aoi_vocab", want.aoi_vocab, have.aoi_vocab),
            ("courier_vocab", want.courier_vocab, have.courier_vocab),
        ];
        for (name, new, running) in fields {
            if new != running {
                return Err(format!(
                    "model config field `{name}` differs: running model has {running}, \
                     new model has {new}"
                ));
            }
        }
        if want.variant != have.variant {
            return Err(format!(
                "model variant differs: running model is {}, new model is {}",
                have.variant.label(),
                want.variant.label()
            ));
        }
        if self.graph_config.is_none() || self.scaler.is_none() {
            return Err("new model has no feature pipeline (graph config + scaler)".into());
        }
        if self.weights.len() != current.store.len() {
            return Err(format!(
                "new model holds {} weight tensors but the running model has {}",
                self.weights.len(),
                current.store.len()
            ));
        }
        for id in current.store.iter_ids() {
            let (new, running) = (self.weights[id.index()].len(), current.store.data(id).len());
            if new != running {
                return Err(format!(
                    "weight tensor `{}` has {new} scalars in the new model but {running} in \
                     the running one",
                    current.store.name(id)
                ));
            }
        }
        Ok(())
    }
}

impl M2G4Rtp {
    /// Snapshots the trained model for persistence (serialise the
    /// result with serde).
    pub fn to_saved(&self) -> SavedModel {
        SavedModel {
            config: self.config.clone(),
            weights: self.store.snapshot(),
            graph_config: self.pipeline.as_ref().map(|p| p.builder.config()),
            scaler: self.pipeline.as_ref().map(|p| p.scaler.clone()),
        }
    }

    /// Reconstructs a model from a snapshot, restoring weights and the
    /// feature pipeline.
    ///
    /// # Panics
    /// Panics if the snapshot's weight layout does not match the
    /// architecture its config describes (i.e. the snapshot is
    /// corrupt or from an incompatible version).
    pub fn from_saved(saved: SavedModel) -> Self {
        let mut model = Self::new(saved.config, 0);
        model.store.restore(&saved.weights);
        if let (Some(gc), Some(scaler)) = (saved.graph_config, saved.scaler) {
            model.set_pipeline(GraphBuilder::new(gc), scaler);
        }
        model
    }
}

/// Derives AOI-level route/times from location-level predictions
/// (first-visit semantics of Definition 5). Exposed for baselines that
/// only predict at the location level but must still report AOI-level
/// outputs.
pub fn derive_aoi_outputs(
    route: &[usize],
    times: &[f32],
    loc_to_aoi: &[usize],
    m: usize,
) -> (Vec<usize>, Vec<f32>) {
    let mut aoi_route = Vec::with_capacity(m);
    let mut aoi_times = vec![0.0f32; m];
    let mut seen = vec![false; m];
    for &i in route {
        let a = loc_to_aoi[i];
        if !seen[a] {
            seen[a] = true;
            aoi_route.push(a);
            aoi_times[a] = times[i];
        }
    }
    (aoi_route, aoi_times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_graph::GraphConfig;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn setup(variant: Variant) -> (Dataset, M2G4Rtp, Vec<MultiLevelGraph>) {
        let d = DatasetBuilder::new(DatasetConfig::tiny(61)).build();
        let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&d).with_variant(variant), 5);
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(&d, &builder);
        let graphs: Vec<_> = d.train[..4.min(d.train.len())]
            .iter()
            .map(|s| {
                let mut g = builder.build(&s.query, &d.city, &d.couriers[s.query.courier_id]);
                scaler.apply(&mut g);
                g
            })
            .collect();
        model.set_pipeline(builder, scaler);
        (d, model, graphs)
    }

    #[test]
    fn forward_train_produces_finite_losses_for_all_variants() {
        for v in Variant::ALL {
            let (d, model, graphs) = setup(v);
            let truth = &d.train[0].truth;
            let mut t = Tape::new();
            let lt = model.forward_train(&mut t, &model.store, &graphs[0], truth);
            assert!(lt.scalars.total.is_finite(), "{v:?} total not finite");
            assert!(lt.scalars.route_loc > 0.0, "{v:?} route loss must start positive");
            assert!(lt.scalars.time_loc > 0.0, "{v:?} time loss must start positive");
            if v == Variant::NoAoi {
                assert_eq!(lt.scalars.route_aoi, 0.0);
                assert_eq!(lt.scalars.time_aoi, 0.0);
            } else {
                assert!(lt.scalars.route_aoi > 0.0);
                assert!(lt.scalars.time_aoi > 0.0);
            }
        }
    }

    #[test]
    fn backward_reaches_every_trainable_family() {
        let (d, mut model, graphs) = setup(Variant::Full);
        let truth = &d.train[0].truth;
        let mut t = Tape::new();
        let store = model.store.clone();
        let lt = model.forward_train(&mut t, &store, &graphs[0], truth);
        model.store.zero_grad();
        t.backward(lt.total, &mut model.store);
        let ids: Vec<_> = model.store.iter_ids().collect();
        let touched =
            ids.iter().filter(|&&id| model.store.grad(id).iter().any(|&g| g != 0.0)).count();
        // Nearly every parameter should receive gradient in a joint pass
        // (some embedding rows are legitimately unused per sample).
        assert!(touched * 2 > ids.len(), "only {touched}/{} params received gradient", ids.len());
        // Uncertainty scalars must always receive gradient.
        for &s in &model.store.iter_ids().collect::<Vec<_>>() {
            if model.store.name(s).starts_with("unc.") {
                assert!(model.store.grad(s)[0] != 0.0, "uncertainty param got no grad");
            }
        }
    }

    #[test]
    fn predictions_are_valid_permutations_with_nonnegative_times() {
        for v in Variant::ALL {
            let (d, model, graphs) = setup(v);
            for (g, s) in graphs.iter().zip(&d.train) {
                let p = model.predict(g);
                let n = s.query.num_locations();
                let m = s.query.distinct_aois().len();
                assert_eq!(p.route.len(), n);
                assert_eq!(p.times.len(), n);
                assert_eq!(p.aoi_route.len(), m, "{v:?}");
                assert_eq!(p.aoi_times.len(), m);
                let mut seen = vec![false; n];
                for &i in &p.route {
                    assert!(!seen[i], "{v:?} route repeats");
                    seen[i] = true;
                }
                assert!(p.times.iter().all(|&x| x >= 0.0 && x.is_finite()));
                assert!(p.aoi_times.iter().all(|&x| x >= 0.0 && x.is_finite()));
            }
        }
    }

    #[test]
    fn predict_sample_goes_through_pipeline() {
        let (d, model, _) = setup(Variant::Full);
        assert!(model.has_pipeline());
        let p = model.predict_sample(&d, &d.train[0]);
        assert_eq!(p.route.len(), d.train[0].query.num_locations());
    }

    #[test]
    fn time_param_range_covers_sort_lstms_only() {
        let (_, model, _) = setup(Variant::Full);
        let ids: Vec<_> = model.store.iter_ids().collect();
        for id in ids {
            let name = model.store.name(id).to_string();
            let is_time_name = name.contains("time_dec");
            assert_eq!(
                model.is_time_param(id),
                is_time_name,
                "param `{name}` misclassified by the freeze boundary"
            );
        }
    }

    #[test]
    fn beam_one_prediction_matches_greedy_prediction() {
        let (_, model, graphs) = setup(Variant::Full);
        for g in &graphs {
            let greedy = model.predict(g);
            let beam = model.predict_beam(g, 1);
            assert_eq!(greedy.route, beam.route);
            assert_eq!(greedy.aoi_route, beam.aoi_route);
            assert_eq!(greedy.times, beam.times);
        }
        // wider beams still emit valid permutations
        let wide = model.predict_beam(&graphs[0], 4);
        let n = wide.route.len();
        let mut seen = vec![false; n];
        for &i in &wide.route {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn saved_model_roundtrip_preserves_predictions() {
        let (d, model, graphs) = setup(Variant::Full);
        let saved = model.to_saved();
        // exercise actual serde, not just the struct copy
        let json = serde_json::to_string(&saved).expect("serialise");
        let restored = M2G4Rtp::from_saved(serde_json::from_str(&json).expect("deserialise"));
        assert!(restored.has_pipeline());
        for (g, s) in graphs.iter().zip(&d.train) {
            let a = model.predict(g);
            let b = restored.predict(g);
            assert_eq!(a.route, b.route, "routes must survive persistence");
            assert_eq!(a.times, b.times, "times must survive persistence");
            // and through the restored pipeline end-to-end
            let c = restored.predict_sample(&d, s);
            assert_eq!(a.route, c.route);
        }
    }

    /// Bit-level equality for predictions: routes plus exact float bits
    /// of every time output.
    fn assert_bit_identical(a: &Prediction, b: &Prediction, ctx: &str) {
        assert_eq!(a.route, b.route, "{ctx}: routes differ");
        assert_eq!(a.aoi_route, b.aoi_route, "{ctx}: AOI routes differ");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.times), bits(&b.times), "{ctx}: time bits differ");
        assert_eq!(bits(&a.aoi_times), bits(&b.aoi_times), "{ctx}: AOI time bits differ");
    }

    #[test]
    fn batched_predict_is_bit_identical_to_unbatched_for_all_variants() {
        for v in Variant::ALL {
            let (_, model, graphs) = setup(v);
            let solo: Vec<_> = graphs.iter().map(|g| model.predict(g)).collect();
            // Batch sizes 1, 2, and the full set, sliced from different
            // offsets so every sample appears at several batch positions.
            for bs in [1, 2, graphs.len()] {
                let mut t = Tape::inference();
                for start in 0..graphs.len() {
                    let end = (start + bs).min(graphs.len());
                    let refs: Vec<&MultiLevelGraph> = graphs[start..end].iter().collect();
                    let batched = model.predict_batch_into(&mut t, &refs);
                    for (k, p) in batched.iter().enumerate() {
                        assert_bit_identical(
                            p,
                            &solo[start + k],
                            &format!("{v:?} batch={bs} sample={}", start + k),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn encoded_replay_is_bit_identical_to_cold_predict() {
        for v in Variant::ALL {
            let (_, model, graphs) = setup(v);
            let refs: Vec<&MultiLevelGraph> = graphs.iter().collect();
            let mut t = Tape::inference();
            let batched = model.predict_batch_encoded_into(&mut t, &refs);
            for (g, (p, enc)) in graphs.iter().zip(&batched) {
                let cold = model.predict(g);
                assert_bit_identical(p, &cold, &format!("{v:?} batched"));
                // Replaying the cached activations must reproduce the
                // cold prediction exactly — this is the cache-hit path.
                let mut t2 = Tape::inference();
                let replay = model.predict_encoded_into(&mut t2, g, enc);
                assert_bit_identical(&replay, &cold, &format!("{v:?} replay"));
                // And again on a reused (cleared) tape.
                let replay2 = model.predict_encoded_into(&mut t2, g, enc);
                assert_bit_identical(&replay2, &cold, &format!("{v:?} replay reuse"));
            }
        }
    }

    #[test]
    fn derive_aoi_outputs_first_visit_semantics() {
        let (ar, at) = derive_aoi_outputs(&[2, 0, 1], &[10.0, 30.0, 5.0], &[1, 1, 0], 2);
        assert_eq!(ar, vec![0, 1], "AOI 0 entered first via location 2");
        // first visit into AOI 1 is location 0 (time 10), not location 1
        assert_eq!(at, vec![5.0, 10.0]);
    }
}
