//! Training loop: Adam with gradient accumulation over mini-batches of
//! per-sample tapes, gradient clipping, validation-based early stopping
//! with best-weights restoration, and the two-phase schedule used by the
//! "two-step" ablation.
//!
//! Mini-batches are **data-parallel**: each sample's forward/backward
//! runs on a worker thread against the epoch-frozen weights, producing
//! a private [`GradBuffer`]; buffers are then reduced into the
//! [`rtp_tensor::ParamStore`] in sample-index order and Adam steps
//! once. Because the reduction order is fixed, the training trajectory
//! is bit-identical for any [`TrainConfig::threads`] setting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use rtp_graph::{FeatureScaler, GraphBuilder, GraphConfig, MultiLevelGraph};
use rtp_sim::Dataset;
use rtp_tensor::optim::{Adam, Optimizer};
use rtp_tensor::parallel::{parallel_map_ordered_with, resolve_threads};
use rtp_tensor::{GradBuffer, Tape};
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    dataset_fingerprint, CheckpointError, CheckpointOptions, TrainCheckpoint, CHECKPOINT_VERSION,
};
use crate::config::Variant;
use crate::model::M2G4Rtp;

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Samples per optimizer step.
    pub batch_size: usize,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Early-stopping patience (epochs without val improvement).
    pub patience: usize,
    /// Fraction of the epoch budget spent on a route-only warm-up
    /// before joint optimisation starts (time modules frozen during
    /// warm-up). The joint tasks compete for shared-encoder capacity;
    /// letting the route structure form first measurably improves both
    /// tasks. Ignored by the `TwoStep` variant, which has its own
    /// strict two-phase schedule.
    pub route_warmup_frac: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print per-epoch progress to stderr.
    pub verbose: bool,
    /// Worker threads for the data-parallel mini-batch loop
    /// (0 = all available cores). Results are bit-identical for every
    /// setting; this only trades wall-clock time.
    pub threads: usize,
}

impl TrainConfig {
    /// Seconds-scale config for tests/CI.
    pub fn quick() -> Self {
        Self {
            epochs: 6,
            lr: 2e-3,
            batch_size: 16,
            grad_clip: 5.0,
            patience: 3,
            route_warmup_frac: 0.34,
            seed: 7,
            verbose: false,
            threads: 0,
        }
    }

    /// The configuration used by the paper-scale experiment harness.
    pub fn full() -> Self {
        Self {
            epochs: 30,
            lr: 1.5e-3,
            batch_size: 16,
            grad_clip: 5.0,
            patience: 7,
            route_warmup_frac: 0.34,
            seed: 7,
            verbose: true,
            threads: 0,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean combined training loss.
    pub train_loss: f32,
    /// Validation mean KRC of the location route.
    pub val_krc: f64,
    /// Validation MAE of location arrival times, minutes.
    pub val_mae: f64,
}

/// Result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs actually run (≤ configured, early stopping).
    pub epochs_run: usize,
    /// Best validation KRC observed.
    pub best_val_krc: f64,
    /// Validation MAE at the best epoch, minutes.
    pub best_val_mae: f64,
    /// Full per-epoch history.
    pub history: Vec<EpochStats>,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
    /// Seconds spent inside the mini-batch gradient loops only
    /// (excludes graph prep and validation) — the quantity the
    /// `training_throughput` bench divides samples by.
    pub train_loop_seconds: f64,
}

/// Fits an [`M2G4Rtp`] model on a dataset.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Trains `model` on `dataset.train`, early-stopping on
    /// `dataset.val`, restoring the best weights, and attaching the
    /// feature pipeline to the model.
    ///
    /// For [`Variant::TwoStep`] the epochs are split 60/40 into a
    /// route-only phase (time modules frozen) and a time-only phase
    /// (everything else frozen) — the paper's "assign an optimizer to
    /// the parameters of SortLSTM separately".
    pub fn fit(&self, model: &mut M2G4Rtp, dataset: &Dataset) -> TrainReport {
        self.fit_with_checkpoints(model, dataset, None)
            .expect("fit without checkpointing performs no fallible I/O")
    }

    /// [`Trainer::fit`] with durable per-epoch checkpoints and exact
    /// resume.
    ///
    /// With `ckpt` set, the full training state — weights, Adam
    /// moments + step count, shuffle RNG state and current
    /// permutation, epoch index, best-snapshot/patience bookkeeping —
    /// is written atomically to `ckpt.dir/checkpoint.json` after every
    /// epoch. With `ckpt.resume`, that state is restored and the epoch
    /// loop continues where it left off, including mid-warm-up and
    /// across the two-step phase-A/phase-B boundary.
    ///
    /// **Exactness guarantee:** a run killed at any point and resumed
    /// from its latest checkpoint produces byte-identical final
    /// weights (and a byte-identical [`crate::SavedModel`] JSON) to an
    /// uninterrupted run — regardless of `threads`, which may even
    /// change across the kill boundary.
    ///
    /// # Errors
    /// Fails if a checkpoint cannot be written, or on resume if the
    /// checkpoint is missing, corrupt, from a different format
    /// version, or belongs to a different run (config, model
    /// architecture or dataset mismatch). It never silently retrains
    /// from scratch.
    pub fn fit_with_checkpoints(
        &self,
        model: &mut M2G4Rtp,
        dataset: &Dataset,
        ckpt: Option<&CheckpointOptions>,
    ) -> Result<TrainReport, CheckpointError> {
        let _fit_span = rtp_obs::span!("train.fit");
        let obs = rtp_obs::metrics::global();
        let (g_loss, g_val_krc, g_val_mae) =
            (obs.gauge("train.loss"), obs.gauge("train.val_krc"), obs.gauge("train.val_mae"));
        let g_ckpt_bytes = obs.gauge("train.checkpoint_bytes");
        let start = std::time::Instant::now();
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(dataset, &builder);
        // Graph construction is embarrassingly parallel and dominates
        // start-up cost on large datasets.
        let prep = |samples: &[rtp_sim::RtpSample]| -> Vec<MultiLevelGraph> {
            samples
                .par_iter()
                .map(|s| {
                    let mut g = builder.build(
                        &s.query,
                        &dataset.city,
                        &dataset.couriers[s.query.courier_id],
                    );
                    scaler.apply(&mut g);
                    g
                })
                .collect()
        };
        let train_graphs = prep(&dataset.train);
        let val_graphs = prep(&dataset.val);

        let mut opt = Adam::new(self.config.lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut history = Vec::new();
        let mut best_score = f64::NEG_INFINITY;
        let mut best_krc = 0.0;
        let mut best_mae = f64::MAX;
        let mut best_snapshot = model.store.snapshot();
        let mut since_best = 0usize;

        let two_step = model.config().variant == Variant::TwoStep;
        let phase_a_epochs = if two_step { (self.config.epochs * 3).div_ceil(5) } else { 0 };
        let warmup_epochs = if two_step {
            0
        } else {
            (self.config.epochs as f32 * self.config.route_warmup_frac) as usize
        };

        let mut indices: Vec<usize> = (0..train_graphs.len()).collect();
        let mut train_loop_seconds = 0.0f64;
        let mut prior_train_seconds = 0.0f64;
        let mut start_epoch = 0usize;
        let mut stopped_early = false;
        let ds_fingerprint = if ckpt.is_some() { dataset_fingerprint(dataset) } else { 0 };
        if let Some(o) = ckpt {
            if o.resume {
                let cp = TrainCheckpoint::load(&o.dir)?;
                cp.validate_against(&self.config, model.config(), &model.store, dataset)?;
                if cp.adam.m.len() != cp.adam.v.len()
                    || cp.adam.m.iter().zip(&cp.adam.v).any(|(m, v)| m.len() != v.len())
                {
                    return Err(CheckpointError::Corrupt(
                        "Adam moment buffers are internally inconsistent".into(),
                    ));
                }
                let restored = Adam::from_state(cp.adam);
                if !restored.matches_store(&model.store) {
                    return Err(CheckpointError::Mismatch(
                        "Adam moment layout does not match the model's parameters".into(),
                    ));
                }
                opt = restored;
                model.store.restore(&cp.weights);
                rng = StdRng::from_state(cp.rng_state);
                indices = cp.indices;
                history = cp.history;
                best_score = f64::from_bits(cp.best_score_bits);
                best_krc = f64::from_bits(cp.best_krc_bits);
                best_mae = f64::from_bits(cp.best_mae_bits);
                best_snapshot = cp.best_snapshot;
                since_best = cp.since_best;
                prior_train_seconds = cp.train_seconds;
                train_loop_seconds = cp.train_loop_seconds;
                // A checkpoint written at the early-stop epoch means the
                // uninterrupted run would have trained no further: resume
                // must finalise, not continue.
                start_epoch = if cp.stopped_early { self.config.epochs } else { cp.epochs_done };
                stopped_early = cp.stopped_early;
                if self.config.verbose {
                    eprintln!(
                        "resumed from {} after epoch {}",
                        o.file().display(),
                        cp.epochs_done - 1
                    );
                }
            }
        }
        // One tape per worker, reused (via `clear()`) across every
        // sample of every epoch — steady-state training allocates no
        // tape buffers.
        let workers = resolve_threads(self.config.threads).min(self.config.batch_size.max(1));
        let mut worker_tapes: Vec<Tape> = (0..workers.max(1)).map(|_| Tape::new()).collect();
        for epoch in start_epoch..self.config.epochs {
            let _epoch_span = rtp_obs::span!("train.epoch", epoch);
            indices.shuffle(&mut rng);
            let phase_b = two_step && epoch >= phase_a_epochs;
            let warming_up = !two_step && epoch < warmup_epochs;
            // One span per epoch-phase: which parameter groups this
            // epoch's gradient steps actually move.
            let phase_span = rtp_obs::trace::span(if warming_up {
                "train.phase.route_warmup"
            } else if !two_step {
                "train.phase.joint"
            } else if phase_b {
                "train.phase.time"
            } else {
                "train.phase.route"
            });
            let mut loss_sum = 0.0f32;
            let loop_start = std::time::Instant::now();
            for batch in indices.chunks(self.config.batch_size) {
                model.store.zero_grad();
                let frozen_store = model.store.clone();
                // Data-parallel shard: each sample runs forward/backward
                // on a worker thread against the frozen weights, into a
                // private gradient buffer.
                let model_ref: &M2G4Rtp = model;
                let shards =
                    parallel_map_ordered_with(&mut worker_tapes, batch.len(), |tape, k| {
                        let i = batch[k];
                        tape.clear();
                        let lt = model_ref.forward_train(
                            tape,
                            &frozen_store,
                            &train_graphs[i],
                            &dataset.train[i].truth,
                        );
                        let objective = if warming_up {
                            lt.route_total
                        } else if !two_step {
                            lt.total
                        } else if phase_b {
                            lt.time_total
                        } else {
                            lt.route_total
                        };
                        let mut buffer = GradBuffer::zeros_like(&frozen_store);
                        tape.backward_into(objective, &mut buffer);
                        (buffer, lt.scalars.total)
                    });
                // Fixed, index-ordered reduction: identical float
                // operation sequence no matter how many workers ran.
                for (buffer, sample_loss) in &shards {
                    model.store.accumulate(buffer);
                    loss_sum += sample_loss;
                }
                if two_step || warming_up {
                    // freeze the complementary parameter group
                    let ids: Vec<_> = model.store.iter_ids().collect();
                    for id in ids {
                        let is_time = model.is_time_param(id);
                        if (phase_b && !is_time) || (!phase_b && is_time) {
                            model.store.zero_grad_of(id);
                        }
                    }
                }
                model.store.scale_grad(1.0 / batch.len() as f32);
                model.store.clip_grad_norm(self.config.grad_clip);
                opt.step(&mut model.store);
            }
            train_loop_seconds += loop_start.elapsed().as_secs_f64();
            drop(phase_span);
            let train_loss = loss_sum / train_graphs.len().max(1) as f32;

            let (val_krc, val_mae) = {
                let _val_span = rtp_obs::span!("train.validate");
                validate(model, &val_graphs, &dataset.val)
            };
            g_loss.set(train_loss as f64);
            g_val_krc.set(val_krc);
            g_val_mae.set(val_mae);
            history.push(EpochStats { epoch, train_loss, val_krc, val_mae });
            // Epoch progress through the flight recorder: a crash later
            // in the run dumps the recent training trajectory alongside
            // the panic event.
            rtp_obs::flight::record(rtp_obs::flight::Kind::Epoch, "train.epoch", 0, || {
                format!(
                    "epoch={epoch} loss={train_loss:.4} val_krc={val_krc:.3} val_mae={val_mae:.2}"
                )
            });
            if self.config.verbose {
                eprintln!(
                    "epoch {epoch:>3}  loss {train_loss:>8.4}  val KRC {val_krc:>6.3}  val MAE {val_mae:>7.2}"
                );
            }

            // During two-step phase A and the route warm-up the time
            // modules are untrained; only start tracking the best epoch
            // (and counting patience) once every task is being optimised.
            let score = val_krc - val_mae / 120.0;
            let in_warmup_phase = warming_up || (two_step && epoch < phase_a_epochs);
            if !in_warmup_phase {
                if score > best_score {
                    best_score = score;
                    best_krc = val_krc;
                    best_mae = val_mae;
                    best_snapshot = model.store.snapshot();
                    since_best = 0;
                } else {
                    since_best += 1;
                    stopped_early = since_best > self.config.patience;
                }
            }

            if let Some(o) = ckpt {
                let bytes = {
                    let _ckpt_span = rtp_obs::span!("train.checkpoint", epoch);
                    TrainCheckpoint {
                        version: CHECKPOINT_VERSION,
                        train_config: self.config.clone(),
                        model_config: model.config().clone(),
                        dataset_fingerprint: ds_fingerprint,
                        epochs_done: epoch + 1,
                        stopped_early,
                        rng_state: rng.state(),
                        indices: indices.clone(),
                        adam: opt.state(),
                        weights: model.store.snapshot(),
                        best_snapshot: best_snapshot.clone(),
                        best_score_bits: best_score.to_bits(),
                        best_krc_bits: best_krc.to_bits(),
                        best_mae_bits: best_mae.to_bits(),
                        since_best,
                        history: history.clone(),
                        train_seconds: prior_train_seconds + start.elapsed().as_secs_f64(),
                        train_loop_seconds,
                    }
                    .save(&o.dir)?
                };
                g_ckpt_bytes.set(bytes as f64);
                if o.stop_after_epoch == Some(epoch) {
                    // Simulated crash: abandon the run right after the
                    // checkpoint, skipping best-weight restoration and
                    // pipeline attachment exactly like a real kill would.
                    return Ok(TrainReport {
                        epochs_run: history.len(),
                        best_val_krc: best_krc,
                        best_val_mae: best_mae,
                        history,
                        train_seconds: prior_train_seconds + start.elapsed().as_secs_f64(),
                        train_loop_seconds,
                    });
                }
            }
            if stopped_early {
                break;
            }
        }
        // If no epoch ever improved the scoreboard (e.g. a two-step run
        // that ended inside phase A), keep the current weights rather
        // than reverting to initialisation.
        if best_score > f64::NEG_INFINITY {
            model.store.restore(&best_snapshot);
        }
        model.set_pipeline(builder, scaler);
        Ok(TrainReport {
            epochs_run: history.len(),
            best_val_krc: best_krc,
            best_val_mae: best_mae,
            history,
            train_seconds: prior_train_seconds + start.elapsed().as_secs_f64(),
            train_loop_seconds,
        })
    }
}

/// Mean location-route KRC and arrival-time MAE over a validation set.
fn validate(
    model: &M2G4Rtp,
    graphs: &[MultiLevelGraph],
    samples: &[rtp_sim::RtpSample],
) -> (f64, f64) {
    if graphs.is_empty() {
        return (0.0, 0.0);
    }
    // Batched sweep: stack samples through the encoders in chunks so the
    // blocked kernels see real row counts. `predict_batch_into` is
    // bit-identical per sample to `predict_into`, so metrics are
    // unchanged — only wall clock moves.
    const VAL_BATCH: usize = 8;
    let mut krc_sum = 0.0;
    let mut mae_sum = 0.0;
    let mut n_locs = 0usize;
    let mut tape = Tape::inference();
    for (gs, ss) in graphs.chunks(VAL_BATCH).zip(samples.chunks(VAL_BATCH)) {
        let refs: Vec<&MultiLevelGraph> = gs.iter().collect();
        for (p, s) in model.predict_batch_into(&mut tape, &refs).iter().zip(ss) {
            krc_sum += rtp_metrics::krc(&p.route, &s.truth.route);
            for (pt, yt) in p.times.iter().zip(&s.truth.arrival) {
                mae_sum += (*pt - *yt).abs() as f64;
            }
            n_locs += s.truth.arrival.len();
        }
    }
    (krc_sum / graphs.len() as f64, mae_sum / n_locs.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn tiny_model(variant: Variant, seed: u64) -> (Dataset, M2G4Rtp) {
        let d = DatasetBuilder::new(DatasetConfig::tiny(71)).build();
        let mut cfg = ModelConfig::for_dataset(&d).with_variant(variant);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        (d.clone(), M2G4Rtp::new(cfg, seed))
    }

    #[test]
    fn training_reduces_loss_and_attaches_pipeline() {
        let (d, mut model) = tiny_model(Variant::Full, 3);
        let cfg = TrainConfig { epochs: 4, patience: 10, ..TrainConfig::quick() };
        let report = Trainer::new(cfg).fit(&mut model, &d);
        assert!(model.has_pipeline());
        assert_eq!(report.history.len(), report.epochs_run);
        let first = report.history.first().unwrap().train_loss;
        let last = report.history.last().unwrap().train_loss;
        assert!(last < first, "training loss must decrease: {first} -> {last}");
        assert!(report.best_val_krc > -1.0 && report.best_val_krc <= 1.0);
    }

    #[test]
    fn training_beats_random_routes_on_validation() {
        // Needs a few hundred samples for the signal to emerge; the
        // `quick` dataset at 3 epochs reliably clears KRC 0.2 (random
        // permutations have expected KRC 0).
        let d = DatasetBuilder::new(DatasetConfig::quick(71)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = M2G4Rtp::new(cfg, 4);
        let tc = TrainConfig { epochs: 3, patience: 10, ..TrainConfig::quick() };
        let report = Trainer::new(tc).fit(&mut model, &d);
        assert!(
            report.best_val_krc > 0.2,
            "trained KRC {} not better than chance",
            report.best_val_krc
        );
    }

    #[test]
    fn two_step_phase_a_leaves_time_modules_untouched() {
        let (d, mut model) = tiny_model(Variant::TwoStep, 5);
        let before: Vec<Vec<f32>> = model
            .store
            .iter_ids()
            .filter(|&id| model.is_time_param(id))
            .map(|id| model.store.data(id).to_vec())
            .collect();
        // epochs=2 with a 60/40 split -> both epochs are phase A
        let cfg = TrainConfig { epochs: 2, patience: 10, ..TrainConfig::quick() };
        Trainer::new(cfg).fit(&mut model, &d);
        // NOTE: best-weights restoration happens at the end; phase A
        // checkpoints are skipped, so the final snapshot is from the last
        // epoch. Compare time params directly.
        let after: Vec<Vec<f32>> = model
            .store
            .iter_ids()
            .filter(|&id| model.is_time_param(id))
            .map(|id| model.store.data(id).to_vec())
            .collect();
        assert_eq!(before, after, "time params must be frozen in phase A");
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        let (d, mut model) = tiny_model(Variant::Full, 6);
        let cfg = TrainConfig { epochs: 12, patience: 1, ..TrainConfig::quick() };
        let report = Trainer::new(cfg).fit(&mut model, &d);
        assert!(report.epochs_run <= 12);
        // the restored model's val metrics equal the reported best
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(&d, &builder);
        let val_graphs: Vec<_> = d
            .val
            .iter()
            .map(|s| {
                let mut g = builder.build(&s.query, &d.city, &d.couriers[s.query.courier_id]);
                scaler.apply(&mut g);
                g
            })
            .collect();
        let (krc, mae) = validate(&model, &val_graphs, &d.val);
        assert!((krc - report.best_val_krc).abs() < 1e-9);
        assert!((mae - report.best_val_mae).abs() < 1e-9);
    }
}
