//! Model hyperparameters and ablation variants.

use rtp_sim::Dataset;
use serde::{Deserialize, Serialize};

/// Ablation variants of the paper's component analysis (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// The complete M²G4RTP model.
    Full,
    /// "two-step": the time modules (SortLSTMs + time heads) get their
    /// own training phase instead of joint multi-task optimisation.
    TwoStep,
    /// "w/o AOI": single-level model — no AOI graph, no guidance.
    NoAoi,
    /// "w/o graph": GAT-e encoders replaced by bidirectional LSTMs.
    NoGraph,
    /// "w/o uncertainty": fixed 100:1 route:time loss weights instead of
    /// learnable homoscedastic-uncertainty weights.
    NoUncertainty,
}

impl Variant {
    /// Human-readable label used by the Fig. 5 harness.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "M2G4RTP",
            Variant::TwoStep => "two-step",
            Variant::NoAoi => "w/o AOI",
            Variant::NoGraph => "w/o graph",
            Variant::NoUncertainty => "w/o uncertainty",
        }
    }

    /// All variants in the order Fig. 5 reports them.
    pub const ALL: [Variant; 5] =
        [Variant::Full, Variant::TwoStep, Variant::NoAoi, Variant::NoGraph, Variant::NoUncertainty];
}

/// Hyperparameters of an [`crate::M2G4Rtp`] instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Hidden width `d_l` of the location level. Must be divisible by
    /// `n_heads`.
    pub d_loc: usize,
    /// Hidden width `d_a` of the AOI level. Must be divisible by
    /// `n_heads`.
    pub d_aoi: usize,
    /// Embedding width of each discrete feature (AOI id/type, weather,
    /// weekday).
    pub d_disc: usize,
    /// Courier-embedding width (part of the decoder query `u`).
    pub d_courier: usize,
    /// Positional-encoding width (Eq. 32).
    pub d_pos: usize,
    /// Number of attention heads `P`.
    pub n_heads: usize,
    /// Number of GAT-e layers `K`.
    pub n_layers: usize,
    /// LeakyReLU negative slope in attention logits (Eq. 20).
    pub leaky_slope: f32,
    /// AOI-id vocabulary size (number of AOIs in the city).
    pub aoi_vocab: usize,
    /// Courier vocabulary size (fleet size).
    pub courier_vocab: usize,
    /// Which ablation variant to build.
    pub variant: Variant,
}

impl ModelConfig {
    /// Default hyperparameters sized for CPU training, with vocabularies
    /// taken from `dataset`.
    pub fn for_dataset(dataset: &Dataset) -> Self {
        Self {
            d_loc: 48,
            d_aoi: 48,
            d_disc: 8,
            d_courier: 8,
            d_pos: 8,
            n_heads: 4,
            n_layers: 2,
            leaky_slope: 0.2,
            aoi_vocab: dataset.city.aois.len() + 1,
            courier_vocab: dataset.couriers.len() + 1,
            variant: Variant::Full,
        }
    }

    /// Same config with a different [`Variant`].
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Validates divisibility and positivity invariants.
    ///
    /// # Panics
    /// Panics with a descriptive message on an invalid configuration.
    pub fn validate(&self) {
        assert!(self.n_heads >= 1, "need at least one attention head");
        assert!(self.n_layers >= 1, "need at least one encoder layer");
        assert_eq!(self.d_loc % self.n_heads, 0, "d_loc must divide by n_heads");
        assert_eq!(self.d_aoi % self.n_heads, 0, "d_aoi must divide by n_heads");
        assert!(self.d_pos >= 2 && self.d_pos.is_multiple_of(2), "d_pos must be even and >= 2");
        assert!(self.aoi_vocab >= 2 && self.courier_vocab >= 2, "vocabularies too small");
    }

    /// Width of the courier representation `u` = courier embedding ++
    /// 3 profile features (work hours, speed, attendance).
    pub fn d_u(&self) -> usize {
        self.d_courier + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn for_dataset_sets_vocabs() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(1)).build();
        let c = ModelConfig::for_dataset(&d);
        assert_eq!(c.aoi_vocab, d.city.aois.len() + 1);
        assert_eq!(c.courier_vocab, d.couriers.len() + 1);
        c.validate();
    }

    #[test]
    fn with_variant_round_trips() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(1)).build();
        for v in Variant::ALL {
            let c = ModelConfig::for_dataset(&d).with_variant(v);
            assert_eq!(c.variant, v);
            assert!(!v.label().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "d_loc must divide")]
    fn validate_rejects_bad_heads() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(1)).build();
        let mut c = ModelConfig::for_dataset(&d);
        c.d_loc = 30;
        c.n_heads = 4;
        c.validate();
    }
}
