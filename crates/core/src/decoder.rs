//! The multi-task decoders: the pointer-style route decoder
//! (Eqs. 27–31 / 34–35) and the SortLSTM arrival-time decoder
//! (Eqs. 32–33 / 36).

use rtp_tensor::nn::{positional_encoding, Linear, LstmCell};
use rtp_tensor::{ParamId, ParamStore, Tape, TensorId};

/// Step-by-step route decoder: an LSTM aggregates the already-emitted
/// nodes into the current state `h_{s-1}` (Eq. 28); at each step a
/// masked additive attention over the remaining candidates scores
/// `o_s^j = vᵀ tanh(W_node x_j + W_query [h‖u])` (Eq. 29), softmax over
/// unvisited nodes gives the pointer distribution (Eq. 30), and the
/// argmax is emitted (Eq. 31).
#[derive(Debug, Clone)]
pub struct RouteDecoder {
    lstm: LstmCell,
    w_node: Linear,
    w_query: Linear,
    v: ParamId,
}

impl RouteDecoder {
    /// Creates a decoder over node representations of width `d_in`,
    /// courier representation of width `d_u`, attention width `d_att`
    /// and LSTM state width `d_h`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_u: usize,
        d_att: usize,
        d_h: usize,
    ) -> Self {
        Self {
            lstm: LstmCell::new(store, &format!("{name}.lstm"), d_in, d_h),
            w_node: Linear::new_no_bias(store, &format!("{name}.w_node"), d_in, d_att),
            w_query: Linear::new_no_bias(store, &format!("{name}.w_query"), d_h + d_u, d_att),
            v: store.add_xavier(&format!("{name}.v"), d_att, 1),
        }
    }

    /// Computes the pointer logits `[1, n]` for one step.
    fn step_logits(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        keys: TensorId,
        h: TensorId,
        u: TensorId,
    ) -> TensorId {
        let hu = t.concat_cols(&[h, u]);
        let q = self.w_query.forward(t, store, hu); // [1, d_att]
        let scores = t.add_row(keys, q); // [n, d_att]
        let scores = t.tanh(scores);
        let v = t.param(store, self.v);
        let o = t.matmul(scores, v); // [n, 1]
        t.transpose(o) // [1, n]
    }

    /// Teacher-forced training loss: the mean step cross-entropy of
    /// Eqs. 37–38's inner sum. `x_in` is `[n, d_in]`, `u` is `[1, d_u]`,
    /// `target` the ground-truth visit sequence.
    pub fn train_loss(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x_in: TensorId,
        u: TensorId,
        target: &[usize],
    ) -> TensorId {
        let (n, _) = t.shape(x_in);
        assert_eq!(target.len(), n, "target route length mismatch");
        let keys = self.w_node.forward(t, store, x_in);
        let mut state = self.lstm.zero_state(t);
        let mut visited = vec![false; n];
        let mut step_losses = Vec::with_capacity(n);
        for &next in target {
            let logits = self.step_logits(t, store, keys, state.0, u);
            let mask: Vec<bool> = visited.iter().map(|&v| !v).collect();
            step_losses.push(t.masked_cross_entropy(logits, &mask, next));
            visited[next] = true;
            // teacher forcing: feed the true node into the state LSTM
            let inp = t.row(x_in, next);
            state = self.lstm.step(t, store, inp, state);
        }
        let stacked = t.concat_rows(&step_losses);
        t.mean_all(stacked)
    }

    /// Beam-search decoding (an extension over the paper's greedy
    /// Eq. 31): keeps the `beam` highest-log-probability partial routes
    /// at every step and returns the best complete one. `beam == 1`
    /// reduces exactly to greedy decoding.
    ///
    /// # Panics
    /// Panics if `beam == 0`.
    pub fn decode_beam(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x_in: TensorId,
        u: TensorId,
        beam: usize,
    ) -> Vec<usize> {
        assert!(beam >= 1, "beam width must be at least 1");
        let (n, _) = t.shape(x_in);
        let keys = self.w_node.forward(t, store, x_in);

        struct Hyp {
            route: Vec<usize>,
            visited: Vec<bool>,
            state: (TensorId, TensorId),
            logp: f32,
        }
        let mut hyps = vec![Hyp {
            route: Vec::new(),
            visited: vec![false; n],
            state: self.lstm.zero_state(t),
            logp: 0.0,
        }];
        for _ in 0..n {
            // expand every hypothesis over its unvisited candidates
            let mut expansions: Vec<(usize, usize, f32)> = Vec::new(); // (hyp, node, logp)
            for (h, hyp) in hyps.iter().enumerate() {
                let logits = self.step_logits(t, store, keys, hyp.state.0, u);
                let mask: Vec<bool> = hyp.visited.iter().map(|&v| !v).collect();
                let logp = t.masked_log_softmax_rows(logits, &mask);
                for (j, &lp) in t.data(logp).iter().enumerate() {
                    if !hyp.visited[j] {
                        expansions.push((h, j, hyp.logp + lp));
                    }
                }
            }
            expansions.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite log-probabilities"));
            expansions.truncate(beam);
            let mut next = Vec::with_capacity(expansions.len());
            for (h, j, logp) in expansions {
                let mut route = hyps[h].route.clone();
                route.push(j);
                let mut visited = hyps[h].visited.clone();
                visited[j] = true;
                let inp = t.row(x_in, j);
                let state = self.lstm.step(t, store, inp, hyps[h].state);
                next.push(Hyp { route, visited, state, logp });
            }
            hyps = next;
        }
        hyps.into_iter()
            .max_by(|a, b| a.logp.partial_cmp(&b.logp).expect("finite log-probabilities"))
            .expect("at least one hypothesis survives")
            .route
    }

    /// Greedy decoding (Eq. 31): returns the predicted visit sequence.
    pub fn decode(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x_in: TensorId,
        u: TensorId,
    ) -> Vec<usize> {
        let (n, _) = t.shape(x_in);
        let keys = self.w_node.forward(t, store, x_in);
        let mut state = self.lstm.zero_state(t);
        let mut visited = vec![false; n];
        let mut route = Vec::with_capacity(n);
        for _ in 0..n {
            let logits = self.step_logits(t, store, keys, state.0, u);
            let data = t.data(logits);
            let mut best = usize::MAX;
            let mut best_v = f32::NEG_INFINITY;
            for (j, &v) in data.iter().enumerate() {
                if !visited[j] && v > best_v {
                    best_v = v;
                    best = j;
                }
            }
            debug_assert_ne!(best, usize::MAX);
            visited[best] = true;
            route.push(best);
            let inp = t.row(x_in, best);
            state = self.lstm.step(t, store, inp, state);
        }
        route
    }
}

/// SortLSTM (Eqs. 32–33): an LSTM that consumes node representations
/// **sorted by the route**, each concatenated with the sinusoidal
/// positional encoding of its route position, and emits one arrival
/// time per step. Monotonicity of the outputs is deliberately not
/// enforced — the paper argues this lets the time task correct route
/// errors instead of accumulating them.
#[derive(Debug, Clone)]
pub struct SortLstm {
    lstm: LstmCell,
    head: Linear,
    d_pos: usize,
}

impl SortLstm {
    /// Creates a SortLSTM over inputs of width `d_in` with positional
    /// encodings of width `d_pos` and hidden width `d_h`.
    pub fn new(store: &mut ParamStore, name: &str, d_in: usize, d_pos: usize, d_h: usize) -> Self {
        Self {
            lstm: LstmCell::new(store, &format!("{name}.lstm"), d_in + d_pos, d_h),
            head: Linear::new(store, &format!("{name}.head"), d_h, 1),
            d_pos,
        }
    }

    /// Runs the SortLSTM along `route` and returns the predicted times
    /// as an `[n, 1]` tensor aligned with **node index** (so
    /// `out[i]` is the prediction for node `i`, whatever its route
    /// position).
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x_in: TensorId,
        route: &[usize],
    ) -> TensorId {
        let (n, _) = t.shape(x_in);
        assert_eq!(route.len(), n, "route length mismatch");
        let mut per_node: Vec<Option<TensorId>> = vec![None; n];
        let mut state = self.lstm.zero_state(t);
        for (s, &node) in route.iter().enumerate() {
            let pe = positional_encoding(s + 1, self.d_pos);
            let pe = t.constant(1, self.d_pos, pe);
            let xi = t.row(x_in, node);
            let inp = t.concat_cols(&[xi, pe]);
            state = self.lstm.step(t, store, inp, state);
            let y = self.head.forward(t, store, state.0); // [1,1]
            assert!(per_node[node].is_none(), "route revisits node {node}");
            per_node[node] = Some(y);
        }
        let rows: Vec<TensorId> =
            per_node.into_iter().map(|o| o.expect("route covers all nodes")).collect();
        t.concat_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_tensor::optim::{Adam, Optimizer};

    #[test]
    fn route_decoder_emits_permutations() {
        let mut store = ParamStore::new(1);
        let dec = RouteDecoder::new(&mut store, "d", 8, 4, 8, 8);
        let mut t = Tape::new();
        let x = t.constant(6, 8, (0..48).map(|i| (i as f32 * 0.31).sin()).collect());
        let u = t.constant(1, 4, vec![0.1, 0.2, -0.1, 0.5]);
        let route = dec.decode(&mut t, &store, x, u);
        let mut seen = [false; 6];
        for &i in &route {
            assert!(!seen[i], "repeat in decoded route");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn route_decoder_learns_a_fixed_ordering() {
        // Toy task: route nodes in ascending order of their first
        // feature. The pointer decoder must reach near-zero loss.
        let mut store = ParamStore::new(2);
        let dec = RouteDecoder::new(&mut store, "d", 4, 2, 16, 16);
        let mut opt = Adam::new(0.01);
        let samples: Vec<(Vec<f32>, Vec<usize>)> = (0..8)
            .map(|s| {
                let vals: Vec<f32> = (0..5).map(|i| ((s * 5 + i) as f32 * 0.73).sin()).collect();
                let mut order: Vec<usize> = (0..5).collect();
                order.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
                let feats: Vec<f32> = vals.iter().flat_map(|&v| [v, v * v, 1.0 - v, 0.5]).collect();
                (feats, order)
            })
            .collect();
        let mut last = f32::MAX;
        for _ in 0..150 {
            store.zero_grad();
            let mut total = 0.0;
            for (feats, order) in &samples {
                let mut t = Tape::new();
                let x = t.constant(5, 4, feats.clone());
                let u = t.constant(1, 2, vec![0.0, 0.0]);
                let loss = dec.train_loss(&mut t, &store, x, u, order);
                total += t.scalar(loss);
                t.backward(loss, &mut store);
            }
            store.scale_grad(1.0 / samples.len() as f32);
            opt.step(&mut store);
            last = total / samples.len() as f32;
        }
        assert!(last < 0.15, "pointer decoder failed to learn sorting: {last}");
        // and greedy decode now reproduces the orderings
        let (feats, order) = &samples[0];
        let mut t = Tape::new();
        let x = t.constant(5, 4, feats.clone());
        let u = t.constant(1, 2, vec![0.0, 0.0]);
        assert_eq!(&dec.decode(&mut t, &store, x, u), order);
    }

    #[test]
    fn beam_width_one_equals_greedy() {
        let mut store = ParamStore::new(11);
        let dec = RouteDecoder::new(&mut store, "d", 6, 3, 8, 8);
        let mut t = Tape::new();
        let x = t.constant(7, 6, (0..42).map(|i| (i as f32 * 0.21).sin()).collect());
        let u = t.constant(1, 3, vec![0.2, -0.3, 0.1]);
        let greedy = dec.decode(&mut t, &store, x, u);
        let beam1 = dec.decode_beam(&mut t, &store, x, u, 1);
        assert_eq!(greedy, beam1);
    }

    #[test]
    fn beam_search_never_scores_below_greedy() {
        // sequence log-probability of the beam-8 route must be >= that
        // of the greedy route under the same model
        let mut store = ParamStore::new(12);
        let dec = RouteDecoder::new(&mut store, "d", 5, 2, 8, 8);
        let score = |route: &[usize], t: &mut Tape, x, u| -> f32 {
            // teacher-force the route and sum its step log-probs
            let loss = dec.train_loss(t, &store, x, u, route);
            -t.scalar(loss) * route.len() as f32
        };
        let data: Vec<f32> = (0..30).map(|i| (i as f32 * 0.47).cos()).collect();
        let mut t = Tape::new();
        let x = t.constant(6, 5, data);
        let u = t.constant(1, 2, vec![0.4, -0.2]);
        let greedy = dec.decode(&mut t, &store, x, u);
        let beamed = dec.decode_beam(&mut t, &store, x, u, 8);
        let sg = score(&greedy, &mut t, x, u);
        let sb = score(&beamed, &mut t, x, u);
        assert!(sb >= sg - 1e-4, "beam ({sb}) worse than greedy ({sg})");
        // both must be permutations
        let mut seen = [false; 6];
        for &i in &beamed {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn sort_lstm_aligns_outputs_with_node_index() {
        let mut store = ParamStore::new(3);
        let sl = SortLstm::new(&mut store, "s", 4, 4, 8);
        let mut t = Tape::new();
        let x = t.constant(3, 4, (0..12).map(|i| i as f32 / 12.0).collect());
        let route = vec![2, 0, 1];
        let out = sl.forward(&mut t, &store, x, &route);
        assert_eq!(t.shape(out), (3, 1));
        // Re-running with the identity route gives a different
        // step-order, so node 2's value must change (it moves from step
        // 1 to step 3).
        let mut t2 = Tape::new();
        let x2 = t2.constant(3, 4, (0..12).map(|i| i as f32 / 12.0).collect());
        let out2 = sl.forward(&mut t2, &store, x2, &[0, 1, 2]);
        assert_ne!(t.data(out)[2], t2.data(out2)[2], "route position must matter");
    }

    #[test]
    fn sort_lstm_learns_cumulative_times() {
        // Toy: each node carries its service duration; arrival time of
        // the k-th routed node is the prefix sum. SortLSTM must regress
        // it from route-ordered inputs.
        let mut store = ParamStore::new(4);
        let sl = SortLstm::new(&mut store, "s", 1, 4, 16);
        let mut opt = Adam::new(0.01);
        let mut last = f32::MAX;
        for step in 0..300 {
            let durs: Vec<f32> = (0..4).map(|i| 0.3 + ((step * 4 + i) % 7) as f32 * 0.1).collect();
            let route = vec![1, 3, 0, 2];
            let mut target = vec![0.0f32; 4];
            let mut acc = 0.0;
            for &nd in &route {
                acc += durs[nd];
                target[nd] = acc;
            }
            let mut t = Tape::new();
            let x = t.constant(4, 1, durs);
            let pred = sl.forward(&mut t, &store, x, &route);
            let y = t.constant(4, 1, target);
            let loss = t.mse_loss(pred, y);
            last = t.scalar(loss);
            store.zero_grad();
            t.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!(last < 0.05, "SortLSTM failed prefix-sum regression: {last}");
    }

    #[test]
    #[should_panic(expected = "route revisits node")]
    fn sort_lstm_rejects_non_permutation_routes() {
        let mut store = ParamStore::new(5);
        let sl = SortLstm::new(&mut store, "s", 2, 4, 4);
        let mut t = Tape::new();
        let x = t.constant(3, 2, vec![0.0; 6]);
        sl.forward(&mut t, &store, x, &[0, 0, 1]);
    }
}
