//! The multi-level graph encoder: feature embedding (Eqs. 18–19), the
//! GAT-e attention layer (Eqs. 20–26), and the BiLSTM replacement
//! encoder used by the "w/o graph" ablation.

use rtp_graph::{GlobalFeatures, LevelGraph};
use rtp_tensor::nn::{Embedding, Linear};
use rtp_tensor::{ParamId, ParamStore, Tape, TensorId};

/// Embeds one level's raw node features into `[n, d]` (Eq. 18).
///
/// Continuous features go through a linear projection; discrete features
/// (AOI id, AOI type) through embedding tables; the global features
/// `x^g` (Eq. 17) are encoded the same way (linear for continuous,
/// embeddings for weather/weekday) and concatenated onto every node, as
/// §IV-B prescribes. A final fusion projection maps the concatenation to
/// the level width `d`.
#[derive(Debug, Clone)]
pub struct NodeEmbedder {
    cont: Linear,
    aoi_id: Embedding,
    aoi_type: Embedding,
    weather: Embedding,
    weekday: Embedding,
    courier: Embedding,
    global_cont: Linear,
    fuse: Linear,
    fuse2: Linear,
    d: usize,
}

impl NodeEmbedder {
    /// Creates an embedder for nodes with `cont_dim` continuous features
    /// targeting hidden width `d`.
    ///
    /// The courier identity is embedded into the global block: the
    /// high-level transfer habit the paper motivates is a function of
    /// (courier, AOI), so the encoder must see both to form it — the
    /// decoder query alone couples them too weakly.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Eq. 18 feature families
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cont_dim: usize,
        global_cont_dim: usize,
        aoi_vocab: usize,
        courier_vocab: usize,
        d_disc: usize,
        d: usize,
    ) -> Self {
        let cont = Linear::new(store, &format!("{name}.cont"), cont_dim, 2 * d_disc);
        let aoi_id = Embedding::new(store, &format!("{name}.aoi_id"), aoi_vocab, d_disc);
        let aoi_type = Embedding::new(store, &format!("{name}.aoi_type"), 6, d_disc);
        let weather = Embedding::new(store, &format!("{name}.weather"), 4, d_disc);
        let weekday = Embedding::new(store, &format!("{name}.weekday"), 7, d_disc);
        let courier = Embedding::new(store, &format!("{name}.courier"), courier_vocab, d_disc);
        let global_cont =
            Linear::new(store, &format!("{name}.global_cont"), global_cont_dim, d_disc);
        let fused_in = 2 * d_disc + d_disc * 6;
        // Two-layer fusion: habit-style signals are *interactions*
        // between discrete embeddings (courier × AOI); a single linear
        // map over a concatenation is purely additive and cannot
        // represent them.
        let fuse = Linear::new(store, &format!("{name}.fuse"), fused_in, d);
        let fuse2 = Linear::new(store, &format!("{name}.fuse2"), d, d);
        Self { cont, aoi_id, aoi_type, weather, weekday, courier, global_cont, fuse, fuse2, d }
    }

    /// Embeds every node of `level`, returning `[n, d]`.
    pub fn embed(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        level: &LevelGraph,
        global: &GlobalFeatures,
    ) -> TensorId {
        let n = level.n;
        let cont_in = t.constant(n, level.cont_dim, level.cont.clone());
        let cont = self.cont.forward(t, store, cont_in);
        let ids = self.aoi_id.forward(t, store, &level.aoi_ids);
        let types = self.aoi_type.forward(t, store, &level.aoi_types);

        let g_cont_in = t.constant(1, global.cont.len(), global.cont.clone());
        let g_cont = self.global_cont.forward(t, store, g_cont_in);
        let g_weather = self.weather.forward(t, store, &[global.weather]);
        let g_weekday = self.weekday.forward(t, store, &[global.weekday]);
        let g_courier = self.courier.forward(t, store, &[global.courier_id]);
        let g = t.concat_cols(&[g_cont, g_weather, g_weekday, g_courier]);
        let g_rep = t.repeat_rows(g, n);

        let all = t.concat_cols(&[cont, ids, types, g_rep]);
        let h = self.fuse.forward(t, store, all);
        let h = t.relu(h);
        self.fuse2.forward(t, store, h)
    }

    /// Output width `d`.
    pub fn out_dim(&self) -> usize {
        self.d
    }
}

/// Embeds raw edge features `[n*n, EDGE_DIM]` into `[n*n, d]` (Eq. 19).
#[derive(Debug, Clone)]
pub struct EdgeEmbedder {
    lin: Linear,
}

impl EdgeEmbedder {
    /// Creates the edge projection.
    pub fn new(store: &mut ParamStore, name: &str, edge_dim: usize, d: usize) -> Self {
        Self { lin: Linear::new(store, &format!("{name}.edge"), edge_dim, d) }
    }

    /// Projects a level's dense edge features.
    pub fn embed(&self, t: &mut Tape, store: &ParamStore, level: &LevelGraph) -> TensorId {
        let nn = level.n * level.n;
        let raw = t.constant(nn, level.edge_dim, level.edge.clone());
        self.lin.forward(t, store, raw)
    }
}

/// One head of a GAT-e layer.
#[derive(Debug, Clone)]
struct GatEHead {
    w1: ParamId,      // attention transform  [d, dh]
    a_left: ParamId,  // attention vector, query half  [dh, 1]
    a_right: ParamId, // attention vector, key half    [dh, 1]
    a_e: ParamId,     // edge attention vector         [d, 1]
    w2: ParamId,      // value transform               [d, dh]
    w3: ParamId,      // edge update: edge term        [d, dh]
    w4: ParamId,      // edge update: source-node term [d, dh]
    w5: ParamId,      // edge update: target-node term [d, dh]
}

/// A GAT-e layer (Eqs. 20–25): graph attention whose logits include an
/// edge-feature term, plus an edge-update pathway. Multi-head with
/// concatenation; the final layer of a stack averages heads and delays
/// the activation (Eq. 26).
///
/// Note on Eq. 22: the paper's summand is written `α_ij W2 h_i`, which
/// would aggregate the node's own representation regardless of `j`; as
/// in standard GAT (Veličković et al.) we aggregate the *neighbour*
/// representation `W2 h_j`.
#[derive(Debug, Clone)]
pub struct GatELayer {
    heads: Vec<GatEHead>,
    d: usize,
    dh: usize,
    last: bool,
    slope: f32,
}

impl GatELayer {
    /// Creates a layer of `n_heads` heads over width `d`.
    ///
    /// Non-final layers give each head width `d / n_heads` and
    /// concatenate; the final layer (`last = true`) gives each head the
    /// full width `d` and averages (Eq. 26).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        n_heads: usize,
        last: bool,
        slope: f32,
    ) -> Self {
        assert_eq!(d % n_heads, 0, "width {d} not divisible by {n_heads} heads");
        let dh = if last { d } else { d / n_heads };
        let heads = (0..n_heads)
            .map(|p| GatEHead {
                w1: store.add_xavier(&format!("{name}.h{p}.w1"), d, dh),
                a_left: store.add_xavier(&format!("{name}.h{p}.a_left"), dh, 1),
                a_right: store.add_xavier(&format!("{name}.h{p}.a_right"), dh, 1),
                a_e: store.add_xavier(&format!("{name}.h{p}.a_e"), d, 1),
                w2: store.add_xavier(&format!("{name}.h{p}.w2"), d, dh),
                w3: store.add_xavier(&format!("{name}.h{p}.w3"), d, dh),
                w4: store.add_xavier(&format!("{name}.h{p}.w4"), d, dh),
                w5: store.add_xavier(&format!("{name}.h{p}.w5"), d, dh),
            })
            .collect();
        Self { heads, d, dh, last, slope }
    }

    /// Applies the layer: node features `x [n,d]`, edge features
    /// `z [n*n,d]`, adjacency mask `adj [n*n]`. Returns `(x', z')`.
    /// The final layer returns `z` unchanged (no consumer after it).
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> (TensorId, TensorId) {
        let (n, d) = t.shape(x);
        assert_eq!(d, self.d, "GAT-e width mismatch");
        assert_eq!(adj.len(), n * n, "adjacency mask size mismatch");

        let mut node_outs = Vec::with_capacity(self.heads.len());
        let mut edge_outs = Vec::with_capacity(self.heads.len());
        for h in &self.heads {
            // ---- attention logits (Eq. 20) ----
            let w1 = t.param(store, h.w1);
            let h1 = t.matmul(x, w1); // [n, dh]
            let al = t.param(store, h.a_left);
            let ar = t.param(store, h.a_right);
            let s_left = t.matmul(h1, al); // [n, 1]
            let s_right = t.matmul(h1, ar); // [n, 1]
            let ae = t.param(store, h.a_e);
            let e_att = t.matmul(z, ae); // [n*n, 1]
            let e_att = t.reshape(e_att, n, n);
            let pair = t.add_outer(s_left, s_right); // [n, n]
            let logits = t.add(pair, e_att);
            let logits = t.leaky_relu(logits, self.slope);
            // ---- masked softmax over neighbours (Eq. 21) ----
            let alpha = t.masked_softmax_rows(logits, adj);
            // ---- aggregate neighbour values (Eqs. 22/24/26) ----
            let w2 = t.param(store, h.w2);
            let hv = t.matmul(x, w2); // [n, dh]
            let agg = t.matmul(alpha, hv); // [n, dh]
            node_outs.push(if self.last { agg } else { t.relu(agg) });
            // ---- edge update (Eqs. 23/25), skipped on the last layer ----
            if !self.last {
                let w3 = t.param(store, h.w3);
                let w4 = t.param(store, h.w4);
                let w5 = t.param(store, h.w5);
                let ze = t.matmul(z, w3); // [n*n, dh]
                let hi = t.matmul(x, w4); // [n, dh]
                let hi = t.repeat_interleave_rows(hi, n); // row i*n+j -> h_i
                let hj = t.matmul(x, w5);
                let hj = t.repeat_rows(hj, n); // row i*n+j -> h_j
                let sum = t.add(ze, hi);
                let sum = t.add(sum, hj);
                edge_outs.push(t.relu(sum));
            }
        }
        let x_out = if self.last {
            // average heads, then delayed activation (Eq. 26)
            let mut acc = node_outs[0];
            for &o in &node_outs[1..] {
                acc = t.add(acc, o);
            }
            let mean = t.scale(acc, 1.0 / node_outs.len() as f32);
            t.relu(mean)
        } else {
            t.concat_cols(&node_outs)
        };
        let z_out = if self.last { z } else { t.concat_cols(&edge_outs) };
        (x_out, z_out)
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.dh
    }
}

/// A stack of `K` GAT-e layers (the encoder of one level).
#[derive(Debug, Clone)]
pub struct GatEncoder {
    layers: Vec<GatELayer>,
}

impl GatEncoder {
    /// Builds `n_layers` GAT-e layers; the final one head-averages.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        n_heads: usize,
        n_layers: usize,
        slope: f32,
    ) -> Self {
        assert!(n_layers >= 1);
        let layers = (0..n_layers)
            .map(|k| {
                GatELayer::new(store, &format!("{name}.l{k}"), d, n_heads, k == n_layers - 1, slope)
            })
            .collect();
        Self { layers }
    }

    /// Encodes node features against edge features and adjacency.
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> TensorId {
        let mut x = x;
        let mut z = z;
        for layer in &self.layers {
            let (nx, nz) = layer.forward(t, store, x, z, adj);
            x = nx;
            z = nz;
        }
        x
    }

    /// Number of layers `K`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Bidirectional-LSTM encoder used by the "w/o graph" ablation: nodes
/// are consumed as a sequence in input order, losing the explicit
/// spatial structure — exactly the weakness Fig. 5 demonstrates.
#[derive(Debug, Clone)]
pub struct BiLstmEncoder {
    fwd: rtp_tensor::nn::LstmCell,
    bwd: rtp_tensor::nn::LstmCell,
    proj: Linear,
}

impl BiLstmEncoder {
    /// Creates a BiLSTM encoder with hidden width `d/2` per direction.
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        assert_eq!(d % 2, 0, "BiLSTM width must be even");
        let h = d / 2;
        Self {
            fwd: rtp_tensor::nn::LstmCell::new(store, &format!("{name}.fwd"), d, h),
            bwd: rtp_tensor::nn::LstmCell::new(store, &format!("{name}.bwd"), d, h),
            proj: Linear::new(store, &format!("{name}.proj"), d, d),
        }
    }

    /// Encodes `[n, d]` node features sequentially.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let (n, _) = t.shape(x);
        let mut fwd_h = Vec::with_capacity(n);
        let mut state = self.fwd.zero_state(t);
        for i in 0..n {
            let xi = t.row(x, i);
            state = self.fwd.step(t, store, xi, state);
            fwd_h.push(state.0);
        }
        let mut bwd_h = vec![None; n];
        let mut state = self.bwd.zero_state(t);
        for i in (0..n).rev() {
            let xi = t.row(x, i);
            state = self.bwd.step(t, store, xi, state);
            bwd_h[i] = Some(state.0);
        }
        let rows: Vec<TensorId> =
            (0..n).map(|i| t.concat_cols(&[fwd_h[i], bwd_h[i].expect("filled")])).collect();
        let seq = t.concat_rows(&rows);
        let out = self.proj.forward(t, store, seq);
        t.relu(out)
    }
}

/// The encoder of one level: graph-attention (the real model) or BiLSTM
/// (the "w/o graph" ablation).
#[derive(Debug, Clone)]
pub enum Encoder {
    /// GAT-e stack.
    Gat(GatEncoder),
    /// Sequential BiLSTM (ablation).
    BiLstm(BiLstmEncoder),
}

impl Encoder {
    /// Encodes a level; the BiLSTM variant ignores edges and adjacency.
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> TensorId {
        match self {
            Encoder::Gat(g) => g.forward(t, store, x, z, adj),
            Encoder::BiLstm(b) => b.forward(t, store, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_graph::{GraphBuilder, GraphConfig};
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn one_graph() -> rtp_graph::MultiLevelGraph {
        let d = DatasetBuilder::new(DatasetConfig::tiny(51)).build();
        let s = &d.train[0];
        GraphBuilder::new(GraphConfig::default()).build(
            &s.query,
            &d.city,
            &d.couriers[s.query.courier_id],
        )
    }

    #[test]
    fn node_embedder_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(1);
        let emb = NodeEmbedder::new(&mut store, "ne", g.locations.cont_dim, 4, 400, 64, 8, 32);
        let mut t = Tape::new();
        let x = emb.embed(&mut t, &store, &g.locations, &g.global);
        assert_eq!(t.shape(x), (g.locations.n, 32));
        assert_eq!(emb.out_dim(), 32);
    }

    #[test]
    fn edge_embedder_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(1);
        let emb = EdgeEmbedder::new(&mut store, "ee", g.locations.edge_dim, 32);
        let mut t = Tape::new();
        let z = emb.embed(&mut t, &store, &g.locations);
        assert_eq!(t.shape(z), (g.locations.n * g.locations.n, 32));
    }

    #[test]
    fn gat_layer_respects_adjacency() {
        // Attention to non-neighbours must be exactly zero: perturbing a
        // non-neighbour's value transform contribution cannot reach node
        // i. We verify via the alpha-mask structure: with an adjacency of
        // only self-loops, the output of node i depends only on x_i.
        let mut store = ParamStore::new(2);
        let layer = GatELayer::new(&mut store, "g", 8, 2, false, 0.2);
        let n = 4;
        let adj: Vec<bool> = (0..n * n).map(|k| k / n == k % n).collect(); // identity
        let x_data: Vec<f32> = (0..n * 8).map(|i| (i as f32 * 0.13).sin()).collect();
        let z_data = vec![0.1f32; n * n * 8];

        let mut t = Tape::new();
        let x = t.constant(n, 8, x_data.clone());
        let z = t.constant(n * n, 8, z_data.clone());
        let (out, _) = layer.forward(&mut t, &store, x, z, &adj);
        let base = t.data(out).to_vec();

        // change node 3's features; nodes 0..2 outputs must not move
        let mut x2 = x_data.clone();
        for v in x2[3 * 8..4 * 8].iter_mut() {
            *v += 1.0;
        }
        let mut t2 = Tape::new();
        let x = t2.constant(n, 8, x2);
        let z = t2.constant(n * n, 8, z_data);
        let (out2, _) = layer.forward(&mut t2, &store, x, z, &adj);
        let changed = t2.data(out2);
        assert_eq!(&base[..3 * 8], &changed[..3 * 8], "non-neighbour leak");
        assert_ne!(&base[3 * 8..], &changed[3 * 8..], "self influence missing");
    }

    #[test]
    fn gat_encoder_full_stack_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(3);
        let node = NodeEmbedder::new(&mut store, "ne", g.locations.cont_dim, 4, 400, 64, 8, 32);
        let edge = EdgeEmbedder::new(&mut store, "ee", g.locations.edge_dim, 32);
        let enc = GatEncoder::new(&mut store, "enc", 32, 4, 2, 0.2);
        assert_eq!(enc.depth(), 2);
        let mut t = Tape::new();
        let x = node.embed(&mut t, &store, &g.locations, &g.global);
        let z = edge.embed(&mut t, &store, &g.locations);
        let out = enc.forward(&mut t, &store, x, z, &g.locations.adj);
        assert_eq!(t.shape(out), (g.locations.n, 32));
        assert!(t.data(out).iter().all(|v| v.is_finite()));
        assert!(t.data(out).iter().all(|&v| v >= 0.0), "final ReLU output");
    }

    #[test]
    fn bilstm_encoder_shapes_and_direction_sensitivity() {
        let mut store = ParamStore::new(4);
        let enc = BiLstmEncoder::new(&mut store, "bi", 16);
        let n = 5;
        let data: Vec<f32> = (0..n * 16).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let mut t = Tape::new();
        let x = t.constant(n, 16, data.clone());
        let out = enc.forward(&mut t, &store, x);
        assert_eq!(t.shape(out), (n, 16));
        // reversing the input order must change per-position outputs
        let mut rev = Vec::new();
        for i in (0..n).rev() {
            rev.extend_from_slice(&data[i * 16..(i + 1) * 16]);
        }
        let mut t2 = Tape::new();
        let x2 = t2.constant(n, 16, rev);
        let out2 = enc.forward(&mut t2, &store, x2);
        assert_ne!(t.data(out), t2.data(out2), "BiLSTM must be order-sensitive");
    }

    #[test]
    fn last_layer_head_averaging_keeps_width() {
        let mut store = ParamStore::new(5);
        let layer = GatELayer::new(&mut store, "g", 12, 3, true, 0.2);
        assert_eq!(layer.head_dim(), 12, "last-layer heads are full-width");
        let n = 3;
        let adj = vec![true; n * n];
        let mut t = Tape::new();
        let x = t.constant(n, 12, vec![0.3; n * 12]);
        let z = t.constant(n * n, 12, vec![0.1; n * n * 12]);
        let (out, zback) = layer.forward(&mut t, &store, x, z, &adj);
        assert_eq!(t.shape(out), (n, 12));
        assert_eq!(zback, z, "last layer passes edges through");
    }
}
