//! The multi-level graph encoder: feature embedding (Eqs. 18–19), the
//! GAT-e attention layer (Eqs. 20–26), and the BiLSTM replacement
//! encoder used by the "w/o graph" ablation.

use rtp_graph::{GlobalFeatures, LevelGraph};
use rtp_tensor::nn::{Embedding, Linear};
use rtp_tensor::{ParamId, ParamStore, Tape, TensorId};

/// Embeds one level's raw node features into `[n, d]` (Eq. 18).
///
/// Continuous features go through a linear projection; discrete features
/// (AOI id, AOI type) through embedding tables; the global features
/// `x^g` (Eq. 17) are encoded the same way (linear for continuous,
/// embeddings for weather/weekday) and concatenated onto every node, as
/// §IV-B prescribes. A final fusion projection maps the concatenation to
/// the level width `d`.
#[derive(Debug, Clone)]
pub struct NodeEmbedder {
    cont: Linear,
    aoi_id: Embedding,
    aoi_type: Embedding,
    weather: Embedding,
    weekday: Embedding,
    courier: Embedding,
    global_cont: Linear,
    fuse: Linear,
    fuse2: Linear,
    d: usize,
}

impl NodeEmbedder {
    /// Creates an embedder for nodes with `cont_dim` continuous features
    /// targeting hidden width `d`.
    ///
    /// The courier identity is embedded into the global block: the
    /// high-level transfer habit the paper motivates is a function of
    /// (courier, AOI), so the encoder must see both to form it — the
    /// decoder query alone couples them too weakly.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Eq. 18 feature families
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cont_dim: usize,
        global_cont_dim: usize,
        aoi_vocab: usize,
        courier_vocab: usize,
        d_disc: usize,
        d: usize,
    ) -> Self {
        let cont = Linear::new(store, &format!("{name}.cont"), cont_dim, 2 * d_disc);
        let aoi_id = Embedding::new(store, &format!("{name}.aoi_id"), aoi_vocab, d_disc);
        let aoi_type = Embedding::new(store, &format!("{name}.aoi_type"), 6, d_disc);
        let weather = Embedding::new(store, &format!("{name}.weather"), 4, d_disc);
        let weekday = Embedding::new(store, &format!("{name}.weekday"), 7, d_disc);
        let courier = Embedding::new(store, &format!("{name}.courier"), courier_vocab, d_disc);
        let global_cont =
            Linear::new(store, &format!("{name}.global_cont"), global_cont_dim, d_disc);
        let fused_in = 2 * d_disc + d_disc * 6;
        // Two-layer fusion: habit-style signals are *interactions*
        // between discrete embeddings (courier × AOI); a single linear
        // map over a concatenation is purely additive and cannot
        // represent them.
        let fuse = Linear::new(store, &format!("{name}.fuse"), fused_in, d);
        let fuse2 = Linear::new(store, &format!("{name}.fuse2"), d, d);
        Self { cont, aoi_id, aoi_type, weather, weekday, courier, global_cont, fuse, fuse2, d }
    }

    /// Embeds every node of `level`, returning `[n, d]`.
    pub fn embed(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        level: &LevelGraph,
        global: &GlobalFeatures,
    ) -> TensorId {
        let n = level.n;
        let cont_in = t.constant(n, level.cont_dim, level.cont.clone());
        let cont = self.cont.forward(t, store, cont_in);
        let ids = self.aoi_id.forward(t, store, &level.aoi_ids);
        let types = self.aoi_type.forward(t, store, &level.aoi_types);

        let g_cont_in = t.constant(1, global.cont.len(), global.cont.clone());
        let g_cont = self.global_cont.forward(t, store, g_cont_in);
        let g_weather = self.weather.forward(t, store, &[global.weather]);
        let g_weekday = self.weekday.forward(t, store, &[global.weekday]);
        let g_courier = self.courier.forward(t, store, &[global.courier_id]);
        let g = t.concat_cols(&[g_cont, g_weather, g_weekday, g_courier]);
        let g_rep = t.repeat_rows(g, n);

        let all = t.concat_cols(&[cont, ids, types, g_rep]);
        let h = self.fuse.forward(t, store, all);
        let h = t.relu(h);
        self.fuse2.forward(t, store, h)
    }

    /// Embeds every node of every level in `batch`, returning the
    /// vertically stacked `[Σn, d]` — bit-identical per row to
    /// [`NodeEmbedder::embed`] on each sample alone.
    ///
    /// All per-node paths (continuous projection, id/type embeddings,
    /// fusion) are row-local, so stacking is exact. The per-sample
    /// global block is computed as one `[B, ·]` matrix and distributed
    /// to nodes with a gather, which copies the same bits
    /// `repeat_rows` would.
    pub fn embed_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        batch: &LevelBatch<'_>,
        globals: &[&GlobalFeatures],
    ) -> TensorId {
        assert_eq!(batch.len(), globals.len(), "one GlobalFeatures per level");
        let cont_dim = batch.level(0).cont_dim;
        let mut cont_data = Vec::with_capacity(batch.total_nodes * cont_dim);
        let mut aoi_ids = Vec::with_capacity(batch.total_nodes);
        let mut aoi_types = Vec::with_capacity(batch.total_nodes);
        for s in 0..batch.len() {
            let level = batch.level(s);
            assert_eq!(level.cont_dim, cont_dim, "mixed level widths in one batch");
            cont_data.extend_from_slice(&level.cont);
            aoi_ids.extend_from_slice(&level.aoi_ids);
            aoi_types.extend_from_slice(&level.aoi_types);
        }
        let cont_in = t.constant(batch.total_nodes, cont_dim, cont_data);
        let cont = self.cont.forward(t, store, cont_in);
        let ids = self.aoi_id.forward(t, store, &aoi_ids);
        let types = self.aoi_type.forward(t, store, &aoi_types);

        let g_dim = globals[0].cont.len();
        let mut g_cont_data = Vec::with_capacity(batch.len() * g_dim);
        let mut weather = Vec::with_capacity(batch.len());
        let mut weekday = Vec::with_capacity(batch.len());
        let mut courier = Vec::with_capacity(batch.len());
        for g in globals {
            g_cont_data.extend_from_slice(&g.cont);
            weather.push(g.weather);
            weekday.push(g.weekday);
            courier.push(g.courier_id);
        }
        let g_cont_in = t.constant(batch.len(), g_dim, g_cont_data);
        let g_cont = self.global_cont.forward(t, store, g_cont_in);
        let g_weather = self.weather.forward(t, store, &weather);
        let g_weekday = self.weekday.forward(t, store, &weekday);
        let g_courier = self.courier.forward(t, store, &courier);
        let g = t.concat_cols(&[g_cont, g_weather, g_weekday, g_courier]); // [B, ·]
        let g_rep = t.gather_rows(g, &batch.row_to_sample); // [Σn, ·]

        let all = t.concat_cols(&[cont, ids, types, g_rep]);
        let h = self.fuse.forward(t, store, all);
        let h = t.relu(h);
        self.fuse2.forward(t, store, h)
    }

    /// Output width `d`.
    pub fn out_dim(&self) -> usize {
        self.d
    }
}

/// Row layout of a batch of level graphs stacked vertically: sample
/// `s`'s node rows occupy `[node_offset(s), node_offset(s) + n_s)` of
/// every stacked `[Σn, ·]` node tensor and its edge rows
/// `[edge_offset(s), edge_offset(s) + n_s²)` of every stacked
/// `[Σn², ·]` edge tensor.
///
/// The batched forward relies on the kernel determinism contract
/// (`rtp_tensor::kernels`): every matmul output element is one fixed
/// left-to-right accumulation independent of the operand's row count,
/// so stacking rows of many samples through the same weight matrix
/// produces bit-identical rows to running each sample alone. Ops whose
/// shape is per-sample (attention softmax, `add_outer`, neighbour
/// aggregation) run on per-sample slices gathered from the stack —
/// gathers copy bits exactly — and are restacked with `concat_rows`.
pub struct LevelBatch<'a> {
    levels: Vec<&'a LevelGraph>,
    /// Per sample: its stacked node-row indices (a contiguous range,
    /// materialised once so per-layer gathers allocate nothing).
    node_index: Vec<Vec<usize>>,
    /// Per sample: its stacked edge-row indices.
    edge_index: Vec<Vec<usize>>,
    /// Stacked node row → sample index (for global-feature gathers).
    row_to_sample: Vec<usize>,
    /// Stacked edge row `i*n+j` of sample `s` → stacked node row of
    /// `i` (the batched form of `repeat_interleave_rows`).
    hi_index: Vec<usize>,
    /// Stacked edge row `i*n+j` of sample `s` → stacked node row of
    /// `j` (the batched form of `repeat_rows`).
    hj_index: Vec<usize>,
    total_nodes: usize,
    total_edges: usize,
}

impl<'a> LevelBatch<'a> {
    /// Computes the stacking layout for `levels` (all of one level
    /// kind, so they share feature widths).
    pub fn new(levels: Vec<&'a LevelGraph>) -> Self {
        let mut node_index = Vec::with_capacity(levels.len());
        let mut edge_index = Vec::with_capacity(levels.len());
        let mut row_to_sample = Vec::new();
        let mut hi_index = Vec::new();
        let mut hj_index = Vec::new();
        let (mut nodes, mut edges) = (0usize, 0usize);
        for (s, level) in levels.iter().enumerate() {
            let n = level.n;
            node_index.push((nodes..nodes + n).collect());
            edge_index.push((edges..edges + n * n).collect());
            row_to_sample.extend(std::iter::repeat_n(s, n));
            for i in 0..n {
                for j in 0..n {
                    hi_index.push(nodes + i);
                    hj_index.push(nodes + j);
                }
            }
            nodes += n;
            edges += n * n;
        }
        Self {
            levels,
            node_index,
            edge_index,
            row_to_sample,
            hi_index,
            hj_index,
            total_nodes: nodes,
            total_edges: edges,
        }
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Sample `s`'s level graph.
    pub fn level(&self, s: usize) -> &LevelGraph {
        self.levels[s]
    }

    /// Sample `s`'s stacked node-row indices.
    pub fn node_indices(&self, s: usize) -> &[usize] {
        &self.node_index[s]
    }

    /// Total stacked node rows `Σn`.
    pub fn total_nodes(&self) -> usize {
        self.total_nodes
    }
}

/// Embeds raw edge features `[n*n, EDGE_DIM]` into `[n*n, d]` (Eq. 19).
#[derive(Debug, Clone)]
pub struct EdgeEmbedder {
    lin: Linear,
}

impl EdgeEmbedder {
    /// Creates the edge projection.
    pub fn new(store: &mut ParamStore, name: &str, edge_dim: usize, d: usize) -> Self {
        Self { lin: Linear::new(store, &format!("{name}.edge"), edge_dim, d) }
    }

    /// Projects a level's dense edge features.
    pub fn embed(&self, t: &mut Tape, store: &ParamStore, level: &LevelGraph) -> TensorId {
        let nn = level.n * level.n;
        let raw = t.constant(nn, level.edge_dim, level.edge.clone());
        self.lin.forward(t, store, raw)
    }

    /// Projects a whole batch's stacked edge features `[Σn², d]` in one
    /// matmul — the largest row count of the forward, which is exactly
    /// where the blocked kernels pay off. Bit-identical per row to
    /// [`EdgeEmbedder::embed`] (the projection is row-local).
    pub fn embed_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        batch: &LevelBatch<'_>,
    ) -> TensorId {
        let edge_dim = batch.level(0).edge_dim;
        let mut data = Vec::with_capacity(batch.total_edges * edge_dim);
        for s in 0..batch.len() {
            let level = batch.level(s);
            assert_eq!(level.edge_dim, edge_dim, "mixed edge widths in one batch");
            data.extend_from_slice(&level.edge);
        }
        let raw = t.constant(batch.total_edges, edge_dim, data);
        self.lin.forward(t, store, raw)
    }
}

/// One head of a GAT-e layer.
#[derive(Debug, Clone)]
struct GatEHead {
    w1: ParamId,      // attention transform  [d, dh]
    a_left: ParamId,  // attention vector, query half  [dh, 1]
    a_right: ParamId, // attention vector, key half    [dh, 1]
    a_e: ParamId,     // edge attention vector         [d, 1]
    w2: ParamId,      // value transform               [d, dh]
    w3: ParamId,      // edge update: edge term        [d, dh]
    w4: ParamId,      // edge update: source-node term [d, dh]
    w5: ParamId,      // edge update: target-node term [d, dh]
}

/// A GAT-e layer (Eqs. 20–25): graph attention whose logits include an
/// edge-feature term, plus an edge-update pathway. Multi-head with
/// concatenation; the final layer of a stack averages heads and delays
/// the activation (Eq. 26).
///
/// Note on Eq. 22: the paper's summand is written `α_ij W2 h_i`, which
/// would aggregate the node's own representation regardless of `j`; as
/// in standard GAT (Veličković et al.) we aggregate the *neighbour*
/// representation `W2 h_j`.
#[derive(Debug, Clone)]
pub struct GatELayer {
    heads: Vec<GatEHead>,
    d: usize,
    dh: usize,
    last: bool,
    slope: f32,
}

impl GatELayer {
    /// Creates a layer of `n_heads` heads over width `d`.
    ///
    /// Non-final layers give each head width `d / n_heads` and
    /// concatenate; the final layer (`last = true`) gives each head the
    /// full width `d` and averages (Eq. 26).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        n_heads: usize,
        last: bool,
        slope: f32,
    ) -> Self {
        assert_eq!(d % n_heads, 0, "width {d} not divisible by {n_heads} heads");
        let dh = if last { d } else { d / n_heads };
        let heads = (0..n_heads)
            .map(|p| GatEHead {
                w1: store.add_xavier(&format!("{name}.h{p}.w1"), d, dh),
                a_left: store.add_xavier(&format!("{name}.h{p}.a_left"), dh, 1),
                a_right: store.add_xavier(&format!("{name}.h{p}.a_right"), dh, 1),
                a_e: store.add_xavier(&format!("{name}.h{p}.a_e"), d, 1),
                w2: store.add_xavier(&format!("{name}.h{p}.w2"), d, dh),
                w3: store.add_xavier(&format!("{name}.h{p}.w3"), d, dh),
                w4: store.add_xavier(&format!("{name}.h{p}.w4"), d, dh),
                w5: store.add_xavier(&format!("{name}.h{p}.w5"), d, dh),
            })
            .collect();
        Self { heads, d, dh, last, slope }
    }

    /// Applies the layer: node features `x [n,d]`, edge features
    /// `z [n*n,d]`, adjacency mask `adj [n*n]`. Returns `(x', z')`.
    /// The final layer returns `z` unchanged (no consumer after it).
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> (TensorId, TensorId) {
        let (n, d) = t.shape(x);
        assert_eq!(d, self.d, "GAT-e width mismatch");
        assert_eq!(adj.len(), n * n, "adjacency mask size mismatch");

        let mut node_outs = Vec::with_capacity(self.heads.len());
        let mut edge_outs = Vec::with_capacity(self.heads.len());
        for h in &self.heads {
            // ---- attention logits (Eq. 20) ----
            let w1 = t.param(store, h.w1);
            let h1 = t.matmul(x, w1); // [n, dh]
            let al = t.param(store, h.a_left);
            let ar = t.param(store, h.a_right);
            let s_left = t.matmul(h1, al); // [n, 1]
            let s_right = t.matmul(h1, ar); // [n, 1]
            let ae = t.param(store, h.a_e);
            let e_att = t.matmul(z, ae); // [n*n, 1]
            let e_att = t.reshape(e_att, n, n);
            let pair = t.add_outer(s_left, s_right); // [n, n]
            let logits = t.add(pair, e_att);
            let logits = t.leaky_relu(logits, self.slope);
            // ---- masked softmax over neighbours (Eq. 21) ----
            let alpha = t.masked_softmax_rows(logits, adj);
            // ---- aggregate neighbour values (Eqs. 22/24/26) ----
            let w2 = t.param(store, h.w2);
            let hv = t.matmul(x, w2); // [n, dh]
            let agg = t.matmul(alpha, hv); // [n, dh]
            node_outs.push(if self.last { agg } else { t.relu(agg) });
            // ---- edge update (Eqs. 23/25), skipped on the last layer ----
            if !self.last {
                let w3 = t.param(store, h.w3);
                let w4 = t.param(store, h.w4);
                let w5 = t.param(store, h.w5);
                let ze = t.matmul(z, w3); // [n*n, dh]
                let hi = t.matmul(x, w4); // [n, dh]
                let hi = t.repeat_interleave_rows(hi, n); // row i*n+j -> h_i
                let hj = t.matmul(x, w5);
                let hj = t.repeat_rows(hj, n); // row i*n+j -> h_j
                let sum = t.add(ze, hi);
                let sum = t.add(sum, hj);
                edge_outs.push(t.relu(sum));
            }
        }
        let x_out = if self.last {
            // average heads, then delayed activation (Eq. 26)
            let mut acc = node_outs[0];
            for &o in &node_outs[1..] {
                acc = t.add(acc, o);
            }
            let mean = t.scale(acc, 1.0 / node_outs.len() as f32);
            t.relu(mean)
        } else {
            t.concat_cols(&node_outs)
        };
        let z_out = if self.last { z } else { t.concat_cols(&edge_outs) };
        (x_out, z_out)
    }

    /// Applies the layer to a whole batch: stacked node features
    /// `x [Σn, d]`, stacked edge features `z [Σn², d]`. Returns the
    /// stacked `(x', z')`, each row bit-identical to
    /// [`GatELayer::forward`] on its sample alone.
    ///
    /// The expensive matmuls (`W1..W5`, the `[Σn², d]` edge paths) run
    /// once over the stack; only the per-sample-shaped attention pieces
    /// (`add_outer`, masked softmax over the sample's adjacency, the
    /// `α @ hv` aggregation) run per sample on gathered slices.
    pub fn forward_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        batch: &LevelBatch<'_>,
    ) -> (TensorId, TensorId) {
        let (rows, d) = t.shape(x);
        assert_eq!(d, self.d, "GAT-e width mismatch");
        assert_eq!(rows, batch.total_nodes, "stacked node rows mismatch");

        let mut node_outs = Vec::with_capacity(self.heads.len());
        let mut edge_outs = Vec::with_capacity(self.heads.len());
        for h in &self.heads {
            // ---- stacked attention projections (Eq. 20) ----
            let w1 = t.param(store, h.w1);
            let h1 = t.matmul(x, w1); // [Σn, dh]
            let al = t.param(store, h.a_left);
            let ar = t.param(store, h.a_right);
            let s_left = t.matmul(h1, al); // [Σn, 1]
            let s_right = t.matmul(h1, ar); // [Σn, 1]
            let ae = t.param(store, h.a_e);
            let e_att = t.matmul(z, ae); // [Σn², 1]
            let w2 = t.param(store, h.w2);
            let hv = t.matmul(x, w2); // [Σn, dh]
                                      // ---- per-sample softmax + aggregation (Eqs. 21/22) ----
            let mut aggs = Vec::with_capacity(batch.len());
            for s in 0..batch.len() {
                let n = batch.level(s).n;
                let nodes = &batch.node_index[s];
                let sl = t.gather_rows(s_left, nodes);
                let sr = t.gather_rows(s_right, nodes);
                let e = t.gather_rows(e_att, &batch.edge_index[s]);
                let e = t.reshape(e, n, n);
                let pair = t.add_outer(sl, sr); // [n, n]
                let logits = t.add(pair, e);
                let logits = t.leaky_relu(logits, self.slope);
                let alpha = t.masked_softmax_rows(logits, &batch.level(s).adj);
                let hv_s = t.gather_rows(hv, nodes);
                aggs.push(t.matmul(alpha, hv_s)); // [n, dh]
            }
            let agg = t.concat_rows(&aggs); // [Σn, dh]
            node_outs.push(if self.last { agg } else { t.relu(agg) });
            // ---- stacked edge update (Eqs. 23/25) ----
            if !self.last {
                let w3 = t.param(store, h.w3);
                let w4 = t.param(store, h.w4);
                let w5 = t.param(store, h.w5);
                let ze = t.matmul(z, w3); // [Σn², dh]
                let hi = t.matmul(x, w4);
                let hi = t.gather_rows(hi, &batch.hi_index); // row i*n+j -> h_i
                let hj = t.matmul(x, w5);
                let hj = t.gather_rows(hj, &batch.hj_index); // row i*n+j -> h_j
                let sum = t.add(ze, hi);
                let sum = t.add(sum, hj);
                edge_outs.push(t.relu(sum));
            }
        }
        let x_out = if self.last {
            let mut acc = node_outs[0];
            for &o in &node_outs[1..] {
                acc = t.add(acc, o);
            }
            let mean = t.scale(acc, 1.0 / node_outs.len() as f32);
            t.relu(mean)
        } else {
            t.concat_cols(&node_outs)
        };
        let z_out = if self.last { z } else { t.concat_cols(&edge_outs) };
        (x_out, z_out)
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.dh
    }
}

/// A stack of `K` GAT-e layers (the encoder of one level).
#[derive(Debug, Clone)]
pub struct GatEncoder {
    layers: Vec<GatELayer>,
}

impl GatEncoder {
    /// Builds `n_layers` GAT-e layers; the final one head-averages.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        n_heads: usize,
        n_layers: usize,
        slope: f32,
    ) -> Self {
        assert!(n_layers >= 1);
        let layers = (0..n_layers)
            .map(|k| {
                GatELayer::new(store, &format!("{name}.l{k}"), d, n_heads, k == n_layers - 1, slope)
            })
            .collect();
        Self { layers }
    }

    /// Encodes node features against edge features and adjacency.
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> TensorId {
        let mut x = x;
        let mut z = z;
        for layer in &self.layers {
            let (nx, nz) = layer.forward(t, store, x, z, adj);
            x = nx;
            z = nz;
        }
        x
    }

    /// Encodes a whole stacked batch (see [`GatELayer::forward_batch`]).
    pub fn forward_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        batch: &LevelBatch<'_>,
    ) -> TensorId {
        let mut x = x;
        let mut z = z;
        for layer in &self.layers {
            let (nx, nz) = layer.forward_batch(t, store, x, z, batch);
            x = nx;
            z = nz;
        }
        x
    }

    /// Number of layers `K`.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Bidirectional-LSTM encoder used by the "w/o graph" ablation: nodes
/// are consumed as a sequence in input order, losing the explicit
/// spatial structure — exactly the weakness Fig. 5 demonstrates.
#[derive(Debug, Clone)]
pub struct BiLstmEncoder {
    fwd: rtp_tensor::nn::LstmCell,
    bwd: rtp_tensor::nn::LstmCell,
    proj: Linear,
}

impl BiLstmEncoder {
    /// Creates a BiLSTM encoder with hidden width `d/2` per direction.
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        assert_eq!(d % 2, 0, "BiLSTM width must be even");
        let h = d / 2;
        Self {
            fwd: rtp_tensor::nn::LstmCell::new(store, &format!("{name}.fwd"), d, h),
            bwd: rtp_tensor::nn::LstmCell::new(store, &format!("{name}.bwd"), d, h),
            proj: Linear::new(store, &format!("{name}.proj"), d, d),
        }
    }

    /// Encodes `[n, d]` node features sequentially.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let (n, _) = t.shape(x);
        let mut fwd_h = Vec::with_capacity(n);
        let mut state = self.fwd.zero_state(t);
        for i in 0..n {
            let xi = t.row(x, i);
            state = self.fwd.step(t, store, xi, state);
            fwd_h.push(state.0);
        }
        let mut bwd_h = vec![None; n];
        let mut state = self.bwd.zero_state(t);
        for i in (0..n).rev() {
            let xi = t.row(x, i);
            state = self.bwd.step(t, store, xi, state);
            bwd_h[i] = Some(state.0);
        }
        let rows: Vec<TensorId> =
            (0..n).map(|i| t.concat_cols(&[fwd_h[i], bwd_h[i].expect("filled")])).collect();
        let seq = t.concat_rows(&rows);
        let out = self.proj.forward(t, store, seq);
        t.relu(out)
    }
}

/// The encoder of one level: graph-attention (the real model) or BiLSTM
/// (the "w/o graph" ablation).
#[derive(Debug, Clone)]
pub enum Encoder {
    /// GAT-e stack.
    Gat(GatEncoder),
    /// Sequential BiLSTM (ablation).
    BiLstm(BiLstmEncoder),
}

impl Encoder {
    /// Encodes a level; the BiLSTM variant ignores edges and adjacency.
    pub fn forward(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        adj: &[bool],
    ) -> TensorId {
        match self {
            Encoder::Gat(g) => g.forward(t, store, x, z, adj),
            Encoder::BiLstm(b) => b.forward(t, store, x),
        }
    }

    /// Encodes a stacked batch. The GAT path batches the heavy matmuls
    /// across samples; the BiLSTM ablation is inherently sequential per
    /// sample, so it runs each sample's slice alone and restacks —
    /// still bit-identical, just without the batching win.
    pub fn forward_batch(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        z: TensorId,
        batch: &LevelBatch<'_>,
    ) -> TensorId {
        match self {
            Encoder::Gat(g) => g.forward_batch(t, store, x, z, batch),
            Encoder::BiLstm(b) => {
                let outs: Vec<TensorId> = (0..batch.len())
                    .map(|s| {
                        let xs = t.gather_rows(x, batch.node_indices(s));
                        b.forward(t, store, xs)
                    })
                    .collect();
                t.concat_rows(&outs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_graph::{GraphBuilder, GraphConfig};
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn one_graph() -> rtp_graph::MultiLevelGraph {
        let d = DatasetBuilder::new(DatasetConfig::tiny(51)).build();
        let s = &d.train[0];
        GraphBuilder::new(GraphConfig::default()).build(
            &s.query,
            &d.city,
            &d.couriers[s.query.courier_id],
        )
    }

    #[test]
    fn node_embedder_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(1);
        let emb = NodeEmbedder::new(&mut store, "ne", g.locations.cont_dim, 4, 400, 64, 8, 32);
        let mut t = Tape::new();
        let x = emb.embed(&mut t, &store, &g.locations, &g.global);
        assert_eq!(t.shape(x), (g.locations.n, 32));
        assert_eq!(emb.out_dim(), 32);
    }

    #[test]
    fn edge_embedder_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(1);
        let emb = EdgeEmbedder::new(&mut store, "ee", g.locations.edge_dim, 32);
        let mut t = Tape::new();
        let z = emb.embed(&mut t, &store, &g.locations);
        assert_eq!(t.shape(z), (g.locations.n * g.locations.n, 32));
    }

    #[test]
    fn gat_layer_respects_adjacency() {
        // Attention to non-neighbours must be exactly zero: perturbing a
        // non-neighbour's value transform contribution cannot reach node
        // i. We verify via the alpha-mask structure: with an adjacency of
        // only self-loops, the output of node i depends only on x_i.
        let mut store = ParamStore::new(2);
        let layer = GatELayer::new(&mut store, "g", 8, 2, false, 0.2);
        let n = 4;
        let adj: Vec<bool> = (0..n * n).map(|k| k / n == k % n).collect(); // identity
        let x_data: Vec<f32> = (0..n * 8).map(|i| (i as f32 * 0.13).sin()).collect();
        let z_data = vec![0.1f32; n * n * 8];

        let mut t = Tape::new();
        let x = t.constant(n, 8, x_data.clone());
        let z = t.constant(n * n, 8, z_data.clone());
        let (out, _) = layer.forward(&mut t, &store, x, z, &adj);
        let base = t.data(out).to_vec();

        // change node 3's features; nodes 0..2 outputs must not move
        let mut x2 = x_data.clone();
        for v in x2[3 * 8..4 * 8].iter_mut() {
            *v += 1.0;
        }
        let mut t2 = Tape::new();
        let x = t2.constant(n, 8, x2);
        let z = t2.constant(n * n, 8, z_data);
        let (out2, _) = layer.forward(&mut t2, &store, x, z, &adj);
        let changed = t2.data(out2);
        assert_eq!(&base[..3 * 8], &changed[..3 * 8], "non-neighbour leak");
        assert_ne!(&base[3 * 8..], &changed[3 * 8..], "self influence missing");
    }

    #[test]
    fn gat_encoder_full_stack_shapes() {
        let g = one_graph();
        let mut store = ParamStore::new(3);
        let node = NodeEmbedder::new(&mut store, "ne", g.locations.cont_dim, 4, 400, 64, 8, 32);
        let edge = EdgeEmbedder::new(&mut store, "ee", g.locations.edge_dim, 32);
        let enc = GatEncoder::new(&mut store, "enc", 32, 4, 2, 0.2);
        assert_eq!(enc.depth(), 2);
        let mut t = Tape::new();
        let x = node.embed(&mut t, &store, &g.locations, &g.global);
        let z = edge.embed(&mut t, &store, &g.locations);
        let out = enc.forward(&mut t, &store, x, z, &g.locations.adj);
        assert_eq!(t.shape(out), (g.locations.n, 32));
        assert!(t.data(out).iter().all(|v| v.is_finite()));
        assert!(t.data(out).iter().all(|&v| v >= 0.0), "final ReLU output");
    }

    #[test]
    fn bilstm_encoder_shapes_and_direction_sensitivity() {
        let mut store = ParamStore::new(4);
        let enc = BiLstmEncoder::new(&mut store, "bi", 16);
        let n = 5;
        let data: Vec<f32> = (0..n * 16).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect();
        let mut t = Tape::new();
        let x = t.constant(n, 16, data.clone());
        let out = enc.forward(&mut t, &store, x);
        assert_eq!(t.shape(out), (n, 16));
        // reversing the input order must change per-position outputs
        let mut rev = Vec::new();
        for i in (0..n).rev() {
            rev.extend_from_slice(&data[i * 16..(i + 1) * 16]);
        }
        let mut t2 = Tape::new();
        let x2 = t2.constant(n, 16, rev);
        let out2 = enc.forward(&mut t2, &store, x2);
        assert_ne!(t.data(out), t2.data(out2), "BiLSTM must be order-sensitive");
    }

    #[test]
    fn batched_encode_is_bit_identical_to_per_sample() {
        // Three graphs of different sizes through the full embed+encode
        // stack, stacked vs alone: every output row must carry the very
        // same bits (the kernel determinism contract makes row-stacking
        // exact; this guards the batched wiring on top of it).
        let d = DatasetBuilder::new(DatasetConfig::tiny(52)).build();
        let graphs: Vec<_> = d.train[..3]
            .iter()
            .map(|s| {
                GraphBuilder::new(GraphConfig::default()).build(
                    &s.query,
                    &d.city,
                    &d.couriers[s.query.courier_id],
                )
            })
            .collect();
        let mut store = ParamStore::new(7);
        let cont_dim = graphs[0].locations.cont_dim;
        let node = NodeEmbedder::new(&mut store, "ne", cont_dim, 4, 400, 64, 8, 32);
        let edge = EdgeEmbedder::new(&mut store, "ee", graphs[0].locations.edge_dim, 32);
        let enc = GatEncoder::new(&mut store, "enc", 32, 4, 2, 0.2);

        let mut tb = Tape::new();
        let batch = LevelBatch::new(graphs.iter().map(|g| &g.locations).collect());
        let globals: Vec<_> = graphs.iter().map(|g| &g.global).collect();
        let xb = node.embed_batch(&mut tb, &store, &batch, &globals);
        let zb = edge.embed_batch(&mut tb, &store, &batch);
        let out_b = enc.forward_batch(&mut tb, &store, xb, zb, &batch);
        let stacked = tb.data(out_b).to_vec();

        let mut offset = 0usize;
        for g in &graphs {
            let mut t = Tape::new();
            let x = node.embed(&mut t, &store, &g.locations, &g.global);
            let z = edge.embed(&mut t, &store, &g.locations);
            let out = enc.forward(&mut t, &store, x, z, &g.locations.adj);
            let alone = t.data(out);
            let rows = g.locations.n * 32;
            let batched_bits: Vec<u32> =
                stacked[offset..offset + rows].iter().map(|v| v.to_bits()).collect();
            let alone_bits: Vec<u32> = alone.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batched_bits, alone_bits, "batched rows must be bit-identical");
            offset += rows;
        }
        assert_eq!(offset, stacked.len(), "batch must cover exactly the stacked rows");
    }

    #[test]
    fn last_layer_head_averaging_keeps_width() {
        let mut store = ParamStore::new(5);
        let layer = GatELayer::new(&mut store, "g", 12, 3, true, 0.2);
        assert_eq!(layer.head_dim(), 12, "last-layer heads are full-width");
        let n = 3;
        let adj = vec![true; n * n];
        let mut t = Tape::new();
        let x = t.constant(n, 12, vec![0.3; n * 12]);
        let z = t.constant(n * n, 12, vec![0.1; n * n * 12]);
        let (out, zback) = layer.forward(&mut t, &store, x, z, &adj);
        assert_eq!(t.shape(out), (n, 12));
        assert_eq!(zback, z, "last layer passes edges through");
    }
}
