//! # m2g4rtp
//!
//! A from-scratch Rust implementation of **M²G4RTP** (Cai et al., ICDE
//! 2023): a multi-level, multi-task graph model that jointly predicts a
//! courier's future service **route** and per-location **arrival times**
//! in instant logistics.
//!
//! The model follows the paper §IV exactly:
//!
//! * **Multi-level graph encoder** — discrete features are embedded,
//!   continuous features linearly projected (Eqs. 18–19), then `K`
//!   stacked **GAT-e** layers (graph attention with edge features in the
//!   attention logits and an edge-update pathway, Eqs. 20–25; final
//!   layer head-averaging, Eq. 26) encode the location graph `G^l` and
//!   the AOI graph `G^a` in parallel.
//! * **Multi-task decoder** — per level, an LSTM-state pointer decoder
//!   with masked additive attention picks the next node step by step
//!   (Eqs. 27–31), and a **SortLSTM** consumes node representations
//!   sorted by the route, concatenated with sinusoidal position
//!   encodings, to emit arrival times (Eqs. 32–33). The AOI level's
//!   route position and predicted arrival time are concatenated onto
//!   every location's representation as guidance (Eqs. 34–36) — the
//!   "AOI guiding Location" divide-and-conquer of §IV-C.
//! * **Homoscedastic-uncertainty loss weighting** (Eq. 41, after
//!   Kendall et al. 2018) balances the four heterogeneous losses with
//!   learnable log-variances.
//!
//! The ablation variants of the paper's component analysis (Fig. 5) are
//! first-class: [`Variant::TwoStep`], [`Variant::NoAoi`],
//! [`Variant::NoGraph`] (BiLSTM encoder), [`Variant::NoUncertainty`]
//! (fixed 100:1 weights).
//!
//! ```no_run
//! use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
//! use rtp_sim::{DatasetBuilder, DatasetConfig};
//!
//! let dataset = DatasetBuilder::new(DatasetConfig::quick(7)).build();
//! let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), 7);
//! let report = Trainer::new(TrainConfig::quick()).fit(&mut model, &dataset);
//! println!("best val KRC {:.3}", report.best_val_krc);
//! ```

mod checkpoint;
mod config;
mod decoder;
mod encoder;
mod model;
mod trainer;

pub use checkpoint::{
    dataset_fingerprint, CheckpointError, CheckpointOptions, TrainCheckpoint, CHECKPOINT_FILE,
    CHECKPOINT_VERSION,
};
pub use config::{ModelConfig, Variant};
pub use decoder::{RouteDecoder, SortLstm};
pub use encoder::{
    BiLstmEncoder, EdgeEmbedder, Encoder, GatELayer, GatEncoder, LevelBatch, NodeEmbedder,
};
pub use model::{derive_aoi_outputs, EncodedQuery, M2G4Rtp, Prediction, SampleLosses, SavedModel};
pub use trainer::{EpochStats, TrainConfig, TrainReport, Trainer};

/// Arrival-time gaps are regressed in units of `TIME_SCALE` minutes to
/// keep the regression loss on a similar scale to the route
/// cross-entropy early in training (the uncertainty weighting then
/// fine-balances them).
pub const TIME_SCALE: f32 = 10.0;
