//! Kill-and-resume integration test against the real `rtp` binary:
//! train with `--checkpoint-dir`, SIGKILL the child once it has
//! checkpointed a (seeded-random) number of epochs, `--resume`, and
//! assert the final model file is **byte-identical** to an
//! uninterrupted reference run. Covers `--variant full` (kill inside
//! the route warm-up) and `--variant two-step` (kill inside phase A),
//! plus the corrupted/truncated-checkpoint failure modes.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const EPOCHS: &str = "3";

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtp"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtp-cli-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `rtp train` argument list shared by every run of one scenario.
fn train_args(ds: &str, variant: &str, threads: &str, out: &Path) -> Vec<String> {
    [
        "train",
        "--dataset",
        ds,
        "--epochs",
        EPOCHS,
        "--variant",
        variant,
        "--seed",
        "5",
        "--threads",
        threads,
        "--out",
    ]
    .iter()
    .map(|s| s.to_string())
    .chain([out.to_str().unwrap().to_string()])
    .collect()
}

fn run_ok(args: &[String]) {
    let out = bin().args(args).output().expect("spawn rtp");
    assert!(out.status.success(), "rtp {args:?} failed:\n{}", String::from_utf8_lossy(&out.stderr));
}

/// Extracts `"epochs_done": N` from checkpoint JSON without a parser.
fn epochs_done(json: &str) -> Option<usize> {
    let key = "\"epochs_done\":";
    let at = json.find(key)? + key.len();
    let digits: String = json[at..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Polls the checkpoint file until at least `min_epochs` are recorded.
/// Atomic checkpoint writes guarantee every read sees a complete file,
/// never a partial one.
fn wait_for_epochs(ckpt: &Path, min_epochs: usize, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        if let Ok(text) = std::fs::read_to_string(ckpt) {
            if epochs_done(&text).is_some_and(|n| n >= min_epochs) {
                return;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("training exited before it could be killed: {status:?}");
        }
        assert!(Instant::now() < deadline, "timed out waiting for checkpoint at {ckpt:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn generate_dataset(dir: &Path) -> String {
    let ds = dir.join("d.json").to_str().unwrap().to_string();
    run_ok(
        &["generate", "--scale", "tiny", "--seed", "3", "--out", &ds]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    ds
}

/// A kill epoch that varies between runs (so over time the suite
/// exercises every kill point) while staying in-range for 3 epochs.
fn seeded_kill_epoch() -> usize {
    1 + (std::process::id() as usize) % 2
}

fn kill_and_resume_is_byte_identical(variant: &str) {
    let dir = tmpdir(variant);
    let ds = generate_dataset(&dir);

    // Uninterrupted reference, no checkpointing involved at all.
    let reference = dir.join("reference.json");
    run_ok(&train_args(&ds, variant, "1", &reference));

    // Victim: checkpointing on; SIGKILL once >= kill_at epochs are
    // durably checkpointed (i.e. mid-flight through the next epoch).
    let ck = dir.join("ck");
    let victim_out = dir.join("victim.json");
    let mut args = train_args(&ds, variant, "1", &victim_out);
    args.extend(["--checkpoint-dir".to_string(), ck.to_str().unwrap().to_string()]);
    let mut child =
        bin().args(&args).stdout(Stdio::null()).stderr(Stdio::null()).spawn().expect("spawn rtp");
    wait_for_epochs(&ck.join("checkpoint.json"), seeded_kill_epoch(), &mut child);
    child.kill().expect("kill child");
    child.wait().expect("reap child");
    assert!(!victim_out.exists(), "killed run must not have written a model");

    // Resume (with a different thread count — explicitly allowed) and
    // compare byte-for-byte against the reference.
    let resumed = dir.join("resumed.json");
    let mut args = train_args(&ds, variant, "0", &resumed);
    args.extend([
        "--checkpoint-dir".to_string(),
        ck.to_str().unwrap().to_string(),
        "--resume".to_string(),
    ]);
    run_ok(&args);

    let want = std::fs::read(&reference).unwrap();
    let got = std::fs::read(&resumed).unwrap();
    assert!(!want.is_empty());
    assert_eq!(
        want, got,
        "--variant {variant}: resumed model differs from uninterrupted reference"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_variant_kill_and_resume_is_byte_identical() {
    kill_and_resume_is_byte_identical("full");
}

#[test]
fn two_step_kill_and_resume_is_byte_identical() {
    kill_and_resume_is_byte_identical("two-step");
}

#[test]
fn corrupt_or_missing_checkpoints_fail_loudly() {
    let dir = tmpdir("corrupt");
    let ds = generate_dataset(&dir);
    let try_resume = |ck: &Path| -> String {
        let mut args = train_args(&ds, "full", "1", &dir.join("m.json"));
        args.extend([
            "--checkpoint-dir".to_string(),
            ck.to_str().unwrap().to_string(),
            "--resume".to_string(),
        ]);
        let out = bin().args(&args).output().expect("spawn rtp");
        assert_eq!(out.status.code(), Some(1), "resume must fail, not retrain from scratch");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };

    // missing checkpoint
    let empty = dir.join("empty-ck");
    std::fs::create_dir_all(&empty).unwrap();
    let err = try_resume(&empty);
    assert!(err.contains("nothing to resume from"), "{err}");

    // garbage contents
    let garbage = dir.join("garbage-ck");
    std::fs::create_dir_all(&garbage).unwrap();
    std::fs::write(garbage.join("checkpoint.json"), "{\"version\": 1, \"trunca").unwrap();
    let err = try_resume(&garbage);
    assert!(err.contains("not a valid checkpoint"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}
