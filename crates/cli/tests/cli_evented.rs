//! End-to-end tests of the epoll (evented) connection front end: twin
//! byte-identity against the legacy thread-per-connection server,
//! partial-line reassembly across readiness events, and the
//! shutdown-poke accounting fix (`serve.connections` counts real
//! clients only). The 1k-idle soak lives in its own binary
//! (`cli_soak.rs`) so its process-wide thread-count assertions don't
//! race other tests.

mod common;

use common::{
    query_line, start_server, strip_latency, strip_trace, traced_query_line, trained_model, Client,
};
use m2g4rtp::M2G4Rtp;
use rtp_cli::serve::{FrontEnd, ServeOptions};
use std::io::Write as _;
use std::time::Duration;

/// Replies from the evented front end must be byte-identical to the
/// threaded front end — same weights, same queries, same error lines —
/// after stripping the nondeterministic latency/trace fields. The
/// reactor is a transport change only; the protocol surface is pinned
/// by its twin.
#[test]
fn evented_replies_are_byte_identical_to_the_threaded_front_end() {
    let (dataset, model) = trained_model(211);
    let saved = model.to_saved();
    let load = || M2G4Rtp::from_saved(saved.clone());

    let evented = start_server(
        load(),
        dataset.clone(),
        ServeOptions { frontend: FrontEnd::Evented, ..Default::default() },
    );
    let threaded = start_server(
        load(),
        dataset.clone(),
        ServeOptions { frontend: FrontEnd::Threaded, ..Default::default() },
    );

    let mut ec = Client::connect(&evented.addr);
    let mut tc = Client::connect(&threaded.addr);
    for k in 0..6 {
        let line = query_line(&dataset, k);
        let er = strip_latency(&ec.round_trip(&line));
        let tr = strip_latency(&tc.round_trip(&line));
        assert_eq!(er, tr, "query {k}: front ends disagree");

        let traced = traced_query_line(&dataset, k);
        let er = strip_latency(&strip_trace(&ec.round_trip(&traced)));
        let tr = strip_latency(&strip_trace(&tc.round_trip(&traced)));
        assert_eq!(er, tr, "traced query {k}: front ends disagree");
    }
    // Error replies are part of the protocol surface too.
    for bad in ["not json", "{\"cmd\":\"frobnicate\"}", "{\"orders\":[]}"] {
        assert_eq!(
            ec.round_trip(bad),
            tc.round_trip(bad),
            "error reply for {bad:?}: front ends disagree"
        );
    }
}

/// A pipelined burst (all requests written before any reply is read)
/// must come back in request order on the evented path, exactly as the
/// blocking loop answered it.
#[test]
fn evented_pipelined_burst_replies_in_request_order() {
    let (dataset, model) = trained_model(223);
    let server = start_server(model, dataset.clone(), ServeOptions::default());
    let mut client = Client::connect(&server.addr);

    let mut expected = Vec::new();
    for k in 0..8 {
        client.send(&query_line(&dataset, k));
        expected.push(k);
    }
    let mut singles = Client::connect(&server.addr);
    for k in expected {
        let burst = strip_latency(&client.recv());
        let single = strip_latency(&singles.round_trip(&query_line(&dataset, k)));
        assert_eq!(burst, single, "burst reply {k} out of order or corrupted");
    }
}

/// A client that dribbles one request byte-per-write across many
/// readiness events must still get exactly one (correct) reply: the
/// reactor's per-connection buffer reassembles partial lines.
#[test]
fn dribbled_request_bytes_reassemble_into_one_request() {
    let (dataset, model) = trained_model(227);
    let server = start_server(model, dataset.clone(), ServeOptions::default());

    let mut reference = Client::connect(&server.addr);
    let line = query_line(&dataset, 0);
    let want = strip_latency(&reference.round_trip(&line));

    let mut dribbler = Client::connect(&server.addr);
    let bytes = format!("{line}\n");
    for (i, chunk) in bytes.as_bytes().chunks(1).enumerate() {
        dribbler.stream.write_all(chunk).expect("dribble byte");
        // Pause every few bytes so the kernel delivers separate
        // readiness events instead of coalescing the whole line.
        if i % 64 == 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert_eq!(strip_latency(&dribbler.recv()), want, "dribbled request corrupted");

    // A complete line and a partial one in a single write: the
    // complete line is answered now, the tail once its newline lands.
    let (head, tail) = bytes.as_bytes().split_at(bytes.len() / 2);
    let mut mixed = Client::connect(&server.addr);
    mixed.send_partial(format!("{line}\n").as_bytes());
    mixed.send_partial(head);
    assert_eq!(strip_latency(&mixed.recv()), want, "complete line in mixed write");
    std::thread::sleep(Duration::from_millis(20));
    mixed.send_partial(tail);
    assert_eq!(strip_latency(&mixed.recv()), want, "split line completed later");
}

/// The shutdown self-connect poke must not be visible in connection
/// accounting: with two real clients, the summary says exactly
/// `connections: 2 handled` — on both front ends (the bug was the
/// threaded acceptor's; the reactor must not reintroduce it).
#[test]
fn shutdown_poke_is_excluded_from_connection_accounting() {
    for frontend in [FrontEnd::Evented, FrontEnd::Threaded] {
        let (dataset, model) = trained_model(229);
        // Two workers: the threaded front end parks a worker on each
        // open connection, and both clients stay open concurrently.
        let server = start_server(
            model,
            dataset.clone(),
            ServeOptions { allow_shutdown: true, frontend, workers: 2, ..Default::default() },
        );

        let mut c1 = Client::connect(&server.addr);
        let r = c1.round_trip(&query_line(&dataset, 0));
        assert!(r.contains("sorted_orders"), "{frontend:?}: {r}");
        let mut c2 = Client::connect(&server.addr);
        let ack = c2.round_trip("{\"cmd\":\"shutdown\"}");
        assert!(ack.contains("shutting down"), "{frontend:?}: {ack}");

        let summary = server.shutdown_summary();
        assert!(
            summary.contains("connections: 2 handled"),
            "{frontend:?}: poke leaked into accounting:\n{summary}"
        );
    }
}

/// A connection that dies mid-line (bytes sent, no newline, then EOF)
/// must cost only itself: the server stays healthy for the next
/// client and exits cleanly.
#[test]
fn eof_with_unterminated_partial_line_is_contained() {
    let (dataset, model) = trained_model(233);
    let server = start_server(
        model,
        dataset.clone(),
        ServeOptions { allow_shutdown: true, ..Default::default() },
    );

    let mut half = Client::connect(&server.addr);
    half.send_partial(b"{\"orders\":");
    drop(half);

    // The server keeps answering.
    let mut client = Client::connect(&server.addr);
    let r = client.round_trip(&query_line(&dataset, 1));
    assert!(r.contains("sorted_orders"), "{r}");
    let ack = client.round_trip("{\"cmd\":\"shutdown\"}");
    assert!(ack.contains("shutting down"), "{ack}");
    server.shutdown_summary();
}
