//! Hot-swap integration tests: the in-band `{"cmd":"reload"}` verb,
//! the SIGHUP path, the loud-rejection policy, the version-keyed
//! encoder cache, and a swap-under-load soak. Runs in its own test
//! binary because the SIGHUP test raises a real process-wide signal.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{
    query_line, reply_version, start_sharded_server, start_spec_server, strip_latency,
    strip_version, trained_model, Client,
};
use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_cli::serve::{ServeOptions, ShardSpec};
use rtp_sim::Dataset;

/// A second model on the same dataset that predicts differently from
/// [`trained_model`]'s (different init seed, no training) — structurally
/// swap-compatible, behaviourally distinguishable.
fn swapped_in_model(dataset: &Dataset, model_seed: u64) -> M2G4Rtp {
    let mut cfg = ModelConfig::for_dataset(dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model = M2G4Rtp::new(cfg, model_seed);
    // One epoch attaches the feature pipeline (validate_swap requires
    // it); a different seed keeps the weights distinct.
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, dataset);
    model
}

/// Writes a model as SavedModel JSON under a unique temp path.
fn write_model_file(model: &M2G4Rtp, tag: &str) -> String {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "rtp-reload-{}-{}-{tag}.json",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&path, serde_json::to_string(&model.to_saved()).expect("serialise")).unwrap();
    path.to_str().unwrap().to_string()
}

/// The reload request line for a model path (default shard).
fn reload_line(path: &str) -> String {
    format!("{{\"cmd\":\"reload\",\"model\":{}}}", serde_json::to_string(path).unwrap())
}

/// `batch_max > 1` turns the encoder cache on — reload correctness
/// against stale cached activations only shows with batching active.
fn batched_opts() -> ServeOptions {
    ServeOptions {
        allow_shutdown: true,
        workers: 2,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    }
}

/// A reload must advance the version tag on every subsequent reply,
/// actually serve the new weights (even for queries whose encoder
/// activations were cached under the old generation), and count its
/// cache invalidations.
#[test]
fn reload_advances_version_and_serves_the_new_weights() {
    let (dataset, model_a) = trained_model(61);
    let model_b = swapped_in_model(&dataset, 17);
    let path_b = write_model_file(&model_b, "b");

    let server =
        start_sharded_server(vec![("default".into(), model_a)], dataset.clone(), batched_opts());
    let mut client = Client::connect(&server.addr);

    // Warm the encoder cache: same queries twice, all on version 1.
    let mut before = Vec::new();
    for k in 0..4 {
        let line = query_line(&dataset, k);
        let first = client.round_trip(&line);
        assert_eq!(reply_version(&first), 1, "fresh server serves version 1: {first}");
        let second = client.round_trip(&line);
        assert_eq!(
            strip_latency(&second),
            strip_latency(&first),
            "cache hit must not change the reply"
        );
        before.push(strip_version(&strip_latency(&first)));
    }

    let ack = client.round_trip(&reload_line(&path_b));
    assert!(ack.contains("\"reloaded\":\"default\""), "ack: {ack}");
    assert_eq!(reply_version(&ack), 2, "first swap lands version 2: {ack}");

    // Every post-swap reply is tagged with the new version, and the
    // swapped-in weights answer — not version-1 cache entries.
    let mut changed = 0;
    for (k, old_body) in before.iter().enumerate() {
        let reply = client.round_trip(&query_line(&dataset, k));
        assert_eq!(reply_version(&reply), 2, "post-swap reply: {reply}");
        if strip_version(&strip_latency(&reply)) != *old_body {
            changed += 1;
        }
    }
    assert!(changed > 0, "differently-seeded weights must answer at least one query differently");

    // The swap's bookkeeping is observable: one reload, no failures,
    // and the warmed cache entries were invalidated.
    let metrics = client.round_trip("{\"cmd\":\"metrics\"}");
    assert!(metrics.contains("serve_reload_count 1"), "metrics: {metrics}");
    assert!(metrics.contains("serve_reload_failures 0"), "metrics: {metrics}");
    assert!(!metrics.contains("serve_cache_invalidations 0"), "swap must drain the cache");

    client.send("{\"cmd\":\"shutdown\"}");
    let summary = server.shutdown_summary();
    assert!(summary.contains("0 conn error(s), 0 panic(s)"), "summary:\n{summary}");
    std::fs::remove_file(&path_b).ok();
}

/// Bad reloads are rejected loudly — structured error naming the cause,
/// running model untouched, failure counted — never a silent fallback.
#[test]
fn reload_rejects_mismatches_without_touching_the_running_model() {
    let (dataset, model_a) = trained_model(67);

    // A config-mismatched model: double the location embedding width.
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 32;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut mismatched = M2G4Rtp::new(cfg, 9);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut mismatched, &dataset);
    let path_mismatch = write_model_file(&mismatched, "mismatch");

    let garbage = std::env::temp_dir().join(format!("rtp-reload-{}-junk.json", std::process::id()));
    std::fs::write(&garbage, "{\"not\":\"a model\"}").unwrap();
    let path_garbage = garbage.to_str().unwrap().to_string();

    let server =
        start_sharded_server(vec![("default".into(), model_a)], dataset.clone(), batched_opts());
    let mut client = Client::connect(&server.addr);
    let line = query_line(&dataset, 0);
    let baseline = strip_version(&strip_latency(&client.round_trip(&line)));

    let cases: &[(String, &str)] = &[
        (reload_line(&path_mismatch), "d_loc"),
        (reload_line("/nonexistent/model.json"), "cannot read"),
        (reload_line(&path_garbage), "not a SavedModel"),
        ("{\"cmd\":\"reload\"}".to_string(), "needs a `model` key"),
        (
            format!(
                "{{\"cmd\":\"reload\",\"model\":{},\"shard\":\"nope\"}}",
                serde_json::to_string(&path_mismatch).unwrap()
            ),
            "unknown shard",
        ),
    ];
    for (request, expect) in cases {
        let reply = client.round_trip(request);
        assert!(reply.contains("\"error\""), "must reject: {reply}");
        assert!(reply.contains(expect), "error must name the cause ({expect}): {reply}");
    }

    // Still version 1, still the original weights.
    let reply = client.round_trip(&line);
    assert_eq!(reply_version(&reply), 1, "failed reloads must not advance the version");
    assert_eq!(strip_version(&strip_latency(&reply)), baseline);

    // Only the file-level/validation failures count as reload attempts;
    // the malformed requests (no model key, unknown shard) never reach
    // the swap machinery.
    let metrics = client.round_trip("{\"cmd\":\"metrics\"}");
    assert!(metrics.contains("serve_reload_count 0"), "metrics: {metrics}");
    assert!(metrics.contains("serve_reload_failures 3"), "metrics: {metrics}");

    client.send("{\"cmd\":\"shutdown\"}");
    server.shutdown_summary();
    std::fs::remove_file(&path_mismatch).ok();
    std::fs::remove_file(&path_garbage).ok();
}

/// SIGHUP re-reads every shard's original `--model` path through the
/// same swap machinery as the in-band verb.
#[test]
fn sighup_reloads_from_the_shard_model_path() {
    // Install the handler before any SIGHUP can be raised, so the
    // signal's default action (terminate) can never win the race
    // against the server's own installation.
    rtp_cli::evented::install_sighup_handler();

    let (dataset, model_a) = trained_model(71);
    let model_b = swapped_in_model(&dataset, 23);
    let path = write_model_file(&model_a, "sighup");

    let server = start_spec_server(
        vec![ShardSpec::with_path("default", model_a, path.clone())],
        dataset.clone(),
        batched_opts(),
    );
    let mut client = Client::connect(&server.addr);
    let line = query_line(&dataset, 1);
    assert_eq!(reply_version(&client.round_trip(&line)), 1);

    // Republish new weights at the served path, then poke the server.
    std::fs::write(&path, serde_json::to_string(&model_b.to_saved()).unwrap()).unwrap();
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    assert_eq!(unsafe { raise(1) }, 0, "raise(SIGHUP)");

    // The watcher polls; wait for the swap to land.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let reply = client.round_trip(&line);
        if reply_version(&reply) == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "SIGHUP swap never landed: {reply}");
        std::thread::sleep(Duration::from_millis(20));
    }

    client.send("{\"cmd\":\"shutdown\"}");
    let summary = server.shutdown_summary();
    assert!(summary.contains("0 conn error(s)"), "summary:\n{summary}");
    std::fs::remove_file(&path).ok();
}

/// The headline guarantee: many consecutive hot-swaps under concurrent
/// pipelined load, with zero dropped connections, per-connection
/// monotonic version tags, and — because every swap republishes the
/// same weights — byte-identical reply bodies throughout.
#[test]
fn soak_ten_hot_swaps_under_pipelined_load_drop_nothing() {
    const SWAPS: u64 = 10;
    const CLIENTS: usize = 3;
    const PIPELINE: usize = 8;

    let (dataset, model_a) = trained_model(73);
    let path = write_model_file(&model_a, "soak");
    let server =
        start_sharded_server(vec![("default".into(), model_a)], dataset.clone(), batched_opts());
    let addr = server.addr.clone();
    let dataset = Arc::new(dataset);

    // Ground truth: one reply per query shape, version/latency
    // stripped. Identity swaps must never change these bytes.
    let mut reference = Vec::new();
    {
        let mut c = Client::connect(&addr);
        for k in 0..PIPELINE {
            reference.push(strip_version(&strip_latency(&c.round_trip(&query_line(&dataset, k)))));
        }
    }
    let reference = Arc::new(reference);

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|w| {
            let (addr, dataset, reference, stop) =
                (addr.clone(), Arc::clone(&dataset), Arc::clone(&reference), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr);
                let mut last_version = 0u64;
                let mut replies = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    // Pipeline a burst, then drain it.
                    for k in 0..PIPELINE {
                        client.send(&query_line(&dataset, k));
                    }
                    for k in 0..PIPELINE {
                        let reply = client.recv();
                        assert!(!reply.is_empty(), "client {w}: server hung up mid-burst");
                        let version = reply_version(&reply);
                        assert!(
                            version >= last_version,
                            "client {w}: version went backwards {last_version} -> {version}"
                        );
                        last_version = version;
                        assert_eq!(
                            strip_version(&strip_latency(&reply)),
                            reference[k],
                            "client {w}: identity swap changed reply bytes"
                        );
                        replies += 1;
                    }
                }
                (replies, last_version)
            })
        })
        .collect();

    // Swap while the load runs; each ack must advance the version.
    let mut operator = Client::connect(&addr);
    for swap in 0..SWAPS {
        let ack = operator.round_trip(&reload_line(&path));
        assert_eq!(reply_version(&ack), swap + 2, "swap {swap} ack: {ack}");
        std::thread::sleep(Duration::from_millis(30));
    }

    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for w in workers {
        let (replies, last_version) = w.join().expect("load client panicked");
        assert!(replies > 0, "load client never completed a burst");
        assert!(last_version >= 1, "load client never saw a tagged reply");
        total += replies;
    }

    // The served model provably advanced across every swap.
    assert_eq!(reply_version(&operator.round_trip(&query_line(&dataset, 0))), SWAPS + 1);

    operator.send("{\"cmd\":\"shutdown\"}");
    let summary = server.shutdown_summary();
    assert!(
        summary.contains("0 conn error(s), 0 panic(s)"),
        "swaps must not drop connections; {total} replies served; summary:\n{summary}"
    );
    assert!(!summary.contains("dropped accepts"), "summary:\n{summary}");
    std::fs::remove_file(&path).ok();
}
