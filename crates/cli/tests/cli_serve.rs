//! End-to-end test of the TCP inference server: train a tiny model,
//! serve it on an ephemeral port, and act as a client speaking
//! newline-delimited JSON.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_cli::serve::{serve, ServeResponse};
use rtp_sim::{DatasetBuilder, DatasetConfig};

#[test]
fn serve_answers_queries_over_tcp() {
    let dataset = DatasetBuilder::new(DatasetConfig::tiny(151)).build();
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model = M2G4Rtp::new(cfg, 3);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, &dataset);

    // capture the server's "listening on ADDR" line through a pipe
    let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
    struct AddrSink(std::sync::mpsc::Sender<String>, Vec<u8>);
    impl Write for AddrSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.1.extend_from_slice(buf);
            if let Some(pos) = self.1.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.1[..pos]).to_string();
                if let Some(addr) = line.strip_prefix("listening on ") {
                    let _ = self.0.send(addr.to_string());
                }
                self.1.drain(..=pos);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let dataset2 = dataset.clone();
    let server = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, Vec::new());
        // serve exactly 3 requests on an ephemeral port, then exit
        serve(model, dataset2, 0, 3, &mut sink).expect("server runs");
    });

    let addr = addr_rx.recv_timeout(std::time::Duration::from_secs(30)).expect("server address");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));

    // 1–2: two valid queries, pipelined on one connection
    for k in 0..2 {
        let q = &dataset.test[k].query;
        let line = serde_json::to_string(q).expect("serialise query");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let resp: ServeResponse = serde_json::from_str(&reply).expect("valid response JSON");
        assert_eq!(resp.sorted_orders.len(), q.orders.len());
        assert_eq!(resp.eta_minutes.len(), q.orders.len());
        assert!(resp.eta_minutes.iter().all(|&e| e >= 0.0 && e.is_finite()));
        assert!(resp.latency_ms > 0.0);
        // sorted orders are a permutation
        let mut seen = vec![false; q.orders.len()];
        for &i in &resp.sorted_orders {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    // 3: malformed request gets a JSON error, not a dropped connection
    stream.write_all(b"this is not json\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("error"), "expected error reply, got: {reply}");

    server.join().expect("server thread exits cleanly");
}
