//! End-to-end tests of the TCP inference server: train a tiny model,
//! serve it on an ephemeral port with a worker pool, and act as one or
//! many clients speaking newline-delimited JSON — including clients
//! that misbehave (garbage, hard closes, induced panics), which must
//! cost only their own connection, never the server.

mod common;

use common::{query_line, start_server, strip_latency, trained_model, Client};
use m2g4rtp::M2G4Rtp;
use rtp_cli::serve::{ServeOptions, ServeResponse, StatsReply};
use std::time::Duration;

/// Asserts a reply is a well-formed prediction for `n_orders` orders:
/// `sorted_orders` a permutation, ETAs finite and non-negative.
fn assert_valid_prediction(reply: &str, n_orders: usize) -> ServeResponse {
    let resp: ServeResponse = serde_json::from_str(reply).expect("valid response JSON");
    assert_eq!(resp.sorted_orders.len(), n_orders);
    assert_eq!(resp.eta_minutes.len(), n_orders);
    assert!(resp.eta_minutes.iter().all(|&e| e >= 0.0 && e.is_finite()));
    // `>= 0.0`, not `> 0.0`: a tiny model can answer inside one timer
    // tick on coarse clocks, legitimately reporting 0.0 ms.
    assert!(resp.latency_ms >= 0.0 && resp.latency_ms.is_finite());
    let mut seen = vec![false; n_orders];
    for &i in &resp.sorted_orders {
        assert!(!seen[i], "duplicate order index in route");
        seen[i] = true;
    }
    resp
}

/// Polls `{"cmd":"stats"}` on a fresh connection until `pred` holds or
/// the deadline passes (some failure counters lag the client's view of
/// the fault, e.g. a reset is seen at the server's next read).
fn wait_for_stats(addr: &str, pred: impl Fn(&StatsReply) -> bool) -> StatsReply {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let mut c = Client::connect(addr);
        let stats: StatsReply =
            serde_json::from_str(&c.round_trip("{\"cmd\":\"stats\"}")).expect("stats reply parses");
        if pred(&stats) || std::time::Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn serve_answers_queries_over_tcp() {
    let (dataset, model) = trained_model(151);
    let opts = ServeOptions { max_requests: 3, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    let mut client = Client::connect(&server.addr);
    // 1–2: two valid queries, pipelined on one connection
    for k in 0..2 {
        let reply = client.round_trip(&query_line(&dataset, k));
        assert_valid_prediction(&reply, dataset.test[k].query.orders.len());
    }
    // 3: malformed request gets a JSON error, not a dropped connection
    let reply = client.round_trip("this is not json");
    assert!(reply.contains("error"), "expected error reply, got: {reply}");

    let summary = server.shutdown_summary();
    assert!(summary.contains("served 3 request(s): 2 ok, 1 error(s)"), "{summary}");
}

#[test]
fn concurrent_pipelining_clients_all_get_valid_permutations_with_exact_accounting() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 3;
    let (dataset, model) = trained_model(157);
    let opts = ServeOptions {
        workers: 4,
        max_requests: CLIENTS * PER_CLIENT + 1, // + the final stats line
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);

    let addr = &server.addr;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let dataset = &dataset;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                // pipeline: write every request, then read every reply
                for k in 0..PER_CLIENT {
                    client.send(&query_line(dataset, c * PER_CLIENT + k));
                }
                for k in 0..PER_CLIENT {
                    let reply = client.recv();
                    let q = &dataset.test[(c * PER_CLIENT + k) % dataset.test.len()].query;
                    assert_valid_prediction(&reply, q.orders.len());
                }
            });
        }
    });

    // every reply above is accounted for before this stats round trip
    let mut client = Client::connect(addr);
    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.requests"), Some(&((CLIENTS * PER_CLIENT) as u64)));
    assert_eq!(stats.counters.get("serve.errors"), Some(&0));
    assert_eq!(stats.counters.get("serve.connections"), Some(&((CLIENTS + 1) as u64)));
    let worker_sum: u64 = stats
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("serve.worker.") && k.ends_with(".requests"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(worker_sum, (CLIENTS * PER_CLIENT) as u64, "per-worker counters must add up");

    let summary = server.shutdown_summary();
    assert!(
        summary.contains(&format!(
            "served {} request(s): {} ok, 0 error(s), 1 stats",
            CLIENTS * PER_CLIENT + 1,
            CLIENTS * PER_CLIENT
        )),
        "{summary}"
    );
}

#[test]
fn garbage_then_hard_close_costs_only_that_connection() {
    let (dataset, model) = trained_model(163);
    let opts = ServeOptions { workers: 2, allow_shutdown: true, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    // a well-behaved client, connected the whole time
    let mut good = Client::connect(&server.addr);
    let reply = good.round_trip(&query_line(&dataset, 0));
    assert_valid_prediction(&reply, dataset.test[0].query.orders.len());

    {
        // a hostile client: garbage line, then a hard close mid-line
        // with an unread reply in its receive buffer (⇒ RST, so the
        // server sees a genuine I/O error, not a clean EOF)
        let mut bad = Client::connect(&server.addr);
        let reply = bad.round_trip("garbage that is not json");
        assert!(reply.contains("error"), "{reply}");
        bad.send(&query_line(&dataset, 1)); // reply never read
        bad.send_partial(b"{\"truncated");
        bad.close_with_unread();
    }

    // the good client keeps getting served while the bad one dies
    for k in 2..5 {
        let reply = good.round_trip(&query_line(&dataset, k));
        assert_valid_prediction(&reply, dataset.test[k].query.orders.len());
    }

    let stats = wait_for_stats(&server.addr, |s| {
        s.counters.get("serve.conn_errors").copied().unwrap_or(0) >= 1
    });
    assert!(
        stats.counters.get("serve.conn_errors").copied().unwrap_or(0) >= 1,
        "the hard close must surface as a connection error: {:?}",
        stats.counters
    );
    assert!(stats.counters.get("serve.requests").copied().unwrap_or(0) >= 5);

    let mut c = Client::connect(&server.addr);
    assert!(c.round_trip("{\"cmd\":\"shutdown\"}").contains("shutting down"));
    let summary = server.shutdown_summary();
    assert!(summary.contains("conn error(s)"), "{summary}");
    assert!(!summary.contains("0 conn error(s)"), "{summary}");
}

#[test]
fn unknown_courier_is_an_error_not_a_courier0_prediction() {
    let (dataset, model) = trained_model(167);
    let opts = ServeOptions { max_requests: 3, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    let mut client = Client::connect(&server.addr);
    let mut query = dataset.test[0].query.clone();
    query.courier_id = 1_000_000;
    let line = serde_json::to_string(&query).expect("serialise query");
    let reply = client.round_trip(&line);
    assert!(
        reply.contains("unknown courier_id 1000000"),
        "must name the bad courier id, got: {reply}"
    );
    assert!(
        serde_json::from_str::<ServeResponse>(&reply).is_err(),
        "an unknown courier must not yield a prediction: {reply}"
    );

    // a valid query on the same connection still works
    let reply = client.round_trip(&query_line(&dataset, 0));
    assert_valid_prediction(&reply, dataset.test[0].query.orders.len());

    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.errors"), Some(&1));
    assert_eq!(stats.counters.get("serve.requests"), Some(&1));

    server.shutdown_summary();
}

#[test]
fn idle_connections_are_reaped() {
    let (dataset, model) = trained_model(173);
    let opts = ServeOptions {
        workers: 2,
        idle_timeout: Some(Duration::from_millis(200)),
        allow_shutdown: true,
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);

    let mut stalled = Client::connect(&server.addr);
    // send nothing: the server must close this connection on its own
    let reply = stalled.recv();
    assert!(reply.is_empty(), "idle connection must be reaped with EOF, got: {reply}");

    let stats =
        wait_for_stats(&server.addr, |s| s.counters.get("serve.timeouts").copied() >= Some(1));
    assert!(
        stats.counters.get("serve.timeouts").copied().unwrap_or(0) >= 1,
        "{:?}",
        stats.counters
    );

    // reaping must not affect fresh connections
    let mut c = Client::connect(&server.addr);
    let reply = c.round_trip(&query_line(&dataset, 0));
    assert_valid_prediction(&reply, dataset.test[0].query.orders.len());
    assert!(c.round_trip("{\"cmd\":\"shutdown\"}").contains("shutting down"));
    let summary = server.shutdown_summary();
    assert!(summary.contains("1 timeout(s)"), "{summary}");
}

/// The acceptance test: with one connection force-killed mid-request
/// and one request panicking, the server stays up, later requests on
/// fresh connections succeed, the shutdown summary reports the
/// failures — and the N-worker server's predictions are byte-identical
/// to the single-worker path for the same queries (per-worker tapes
/// must not change numerics).
#[test]
fn fault_isolation_and_multi_worker_determinism() {
    let (dataset, model) = trained_model(179);
    // two bit-identical models from one set of trained weights
    let saved = serde_json::to_string(&model.to_saved()).expect("serialise model");
    let model_multi = M2G4Rtp::from_saved(serde_json::from_str(&saved).expect("parse model"));
    let model_single = M2G4Rtp::from_saved(serde_json::from_str(&saved).expect("parse model"));

    const QUERIES: usize = 5;
    let lines: Vec<String> = (0..QUERIES).map(|k| query_line(&dataset, k)).collect();

    // reference: single worker, sequential
    let reference: Vec<String> = {
        let opts = ServeOptions { workers: 1, max_requests: QUERIES, ..Default::default() };
        let server = start_server(model_single, dataset.clone(), opts);
        let mut client = Client::connect(&server.addr);
        let replies = lines.iter().map(|l| strip_latency(&client.round_trip(l))).collect();
        server.shutdown_summary();
        replies
    };

    // system under test: 4 workers, faults injected between requests
    let opts = ServeOptions { workers: 4, allow_shutdown: true, ..Default::default() };
    let server = start_server(model_multi, dataset.clone(), opts);

    // fault 1: an in-handler panic (via the gated fault-injection cmd)
    let mut panicker = Client::connect(&server.addr);
    let reply = panicker.round_trip("{\"cmd\":\"panic\"}");
    assert!(reply.contains("internal error"), "best-effort panic reply, got: {reply}");
    assert!(panicker.recv().is_empty(), "panicking connection must be dropped");
    drop(panicker);

    // fault 2: a connection force-killed mid-request (reply never read
    // ⇒ close sends RST ⇒ the server's next read on it fails)
    let mut killed = Client::connect(&server.addr);
    killed.send(&lines[0]);
    killed.close_with_unread();

    // the server is still up: fresh connections serve every query,
    // byte-identical to the single-worker reference
    let mut client = Client::connect(&server.addr);
    for (line, expect) in lines.iter().zip(&reference) {
        let got = strip_latency(&client.round_trip(line));
        assert_eq!(&got, expect, "multi-worker reply must be byte-identical to single-worker");
    }
    // and concurrent fresh clients agree too
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let addr = &server.addr;
            let lines = &lines;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for (line, expect) in lines.iter().zip(reference) {
                    assert_eq!(&strip_latency(&client.round_trip(line)), expect);
                }
            });
        }
    });

    let stats = wait_for_stats(&server.addr, |s| {
        s.counters.get("serve.panics").copied() == Some(1)
            && s.counters.get("serve.conn_errors").copied().unwrap_or(0) >= 1
    });
    assert_eq!(stats.counters.get("serve.panics"), Some(&1), "{:?}", stats.counters);
    assert!(
        stats.counters.get("serve.conn_errors").copied().unwrap_or(0) >= 1,
        "{:?}",
        stats.counters
    );

    let mut c = Client::connect(&server.addr);
    assert!(c.round_trip("{\"cmd\":\"shutdown\"}").contains("shutting down"));
    let summary = server.shutdown_summary();
    assert!(summary.contains("1 panic(s)"), "{summary}");
    assert!(!summary.contains("0 conn error(s)"), "{summary}");
}

/// The batching acceptance test: twin servers from one set of saved
/// weights — an unbatched single-worker reference and a batched
/// multi-worker system under test with concurrent pipelining clients —
/// must produce byte-identical replies (modulo the latency field), at
/// several batch-max/window settings. The pipelining clients keep many
/// requests in flight at once, so real multi-job batches form, and the
/// repeat queries across clients exercise the encoder cache's hit path
/// against the same reference bytes.
#[test]
fn batched_replies_are_byte_identical_to_unbatched() {
    let (dataset, model) = trained_model(181);
    let saved = serde_json::to_string(&model.to_saved()).expect("serialise model");
    let load = || M2G4Rtp::from_saved(serde_json::from_str(&saved).expect("parse model"));

    const QUERIES: usize = 6;
    let lines: Vec<String> = (0..QUERIES).map(|k| query_line(&dataset, k)).collect();

    // Reference: unbatched, single worker, sequential.
    let reference: Vec<String> = {
        let opts = ServeOptions { workers: 1, max_requests: QUERIES, ..Default::default() };
        let server = start_server(load(), dataset.clone(), opts);
        let mut client = Client::connect(&server.addr);
        let replies = lines.iter().map(|l| strip_latency(&client.round_trip(l))).collect();
        server.shutdown_summary();
        replies
    };

    for (batch_max, window_us) in [(2usize, 500u64), (4, 2000)] {
        let opts = ServeOptions {
            workers: 4,
            allow_shutdown: true,
            batch_max,
            batch_window: Duration::from_micros(window_us),
            ..Default::default()
        };
        let server = start_server(load(), dataset.clone(), opts);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let addr = &server.addr;
                let lines = &lines;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    // pipeline: everything in flight before reading
                    for line in lines {
                        client.send(line);
                    }
                    for expect in reference {
                        assert_eq!(
                            &strip_latency(&client.recv()),
                            expect,
                            "batched reply must be byte-identical (batch_max {batch_max})"
                        );
                    }
                });
            }
        });

        let mut c = Client::connect(&server.addr);
        let stats: StatsReply =
            serde_json::from_str(&c.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
        let batches = stats.histograms.get("serve.batch_size").map(|h| h.count).unwrap_or(0);
        assert!(batches > 0, "the engine must have run batched forwards: {:?}", stats.histograms);
        let hits = stats.counters.get("serve.cache.hits").copied().unwrap_or(0);
        let misses = stats.counters.get("serve.cache.misses").copied().unwrap_or(0);
        assert_eq!(hits + misses, (4 * QUERIES) as u64, "every prediction is a hit or a miss");
        assert!(c.round_trip("{\"cmd\":\"shutdown\"}").contains("shutting down"));
        server.shutdown_summary();
    }
}

/// The encoder cache's exact behaviour on one connection: repeats of a
/// line are hits and byte-identical to the cold reply; changing the
/// same courier's route state (here: the query clock advancing) misses
/// the fingerprint, replaces the stale entry (counted as an
/// invalidation), and switching back re-encodes from scratch — again
/// byte-identical to the original cold reply, proving no stale
/// activations survive an invalidation.
#[test]
fn encoder_cache_hits_and_invalidations_are_exact_and_bit_identical() {
    let (dataset, model) = trained_model(191);
    let q_a = dataset.test[0].query.clone();
    let mut q_b = q_a.clone();
    q_b.time += 30.0; // same courier, route state moved on
    let line_a = serde_json::to_string(&q_a).expect("serialise");
    let line_b = serde_json::to_string(&q_b).expect("serialise");

    let opts = ServeOptions {
        workers: 2,
        allow_shutdown: true,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);

    let cold_a = strip_latency(&client.round_trip(&line_a)); // miss
    for _ in 0..3 {
        // hits: replayed activations must reproduce the cold bytes
        assert_eq!(strip_latency(&client.round_trip(&line_a)), cold_a);
    }
    let cold_b = strip_latency(&client.round_trip(&line_b)); // miss + invalidation
    assert_eq!(strip_latency(&client.round_trip(&line_b)), cold_b); // hit
                                                                    // switch back: the stale entry for this courier is gone, so this is
                                                                    // a fresh encode — and must still equal the original cold bytes
    assert_eq!(strip_latency(&client.round_trip(&line_a)), cold_a); // miss + invalidation

    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.cache.hits"), Some(&4), "{:?}", stats.counters);
    assert_eq!(stats.counters.get("serve.cache.misses"), Some(&3), "{:?}", stats.counters);
    assert_eq!(stats.counters.get("serve.cache.invalidations"), Some(&2), "{:?}", stats.counters);
    let rate = stats.gauges.get("serve.cache.hit_rate").copied().unwrap_or(-1.0);
    assert!((rate - 4.0 / 7.0).abs() < 1e-9, "hit-rate gauge must track the counters: {rate}");

    assert!(client.round_trip("{\"cmd\":\"shutdown\"}").contains("shutting down"));
    server.shutdown_summary();
}

/// Unknown control commands must be classified as control lines (never
/// falling through to the query parse-error path), answered with a
/// named reply, and counted in `serve.unknown_cmds` — not
/// `serve.errors`.
#[test]
fn unknown_command_gets_named_reply_and_its_own_counter() {
    let (dataset, model) = trained_model(193);
    let opts = ServeOptions { max_requests: 4, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    let mut client = Client::connect(&server.addr);
    let reply = client.round_trip("{\"cmd\":\"flush\"}");
    assert!(reply.contains("unknown command `flush`"), "must name the command: {reply}");
    assert!(reply.contains("stats"), "must list the known commands: {reply}");
    assert!(!reply.contains("bad request"), "must not read as a query parse error: {reply}");

    // A non-string `cmd` is still a control line, not a malformed query.
    let reply = client.round_trip("{\"cmd\":42}");
    assert!(reply.contains("unknown command"), "{reply}");
    assert!(!reply.contains("bad request"), "{reply}");

    // Predictions still work on the same connection afterwards.
    let reply = client.round_trip(&query_line(&dataset, 0));
    assert_valid_prediction(&reply, dataset.test[0].query.orders.len());

    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.unknown_cmds"), Some(&2), "{:?}", stats.counters);
    assert_eq!(
        stats.counters.get("serve.errors"),
        Some(&0),
        "unknown commands must not pollute serve.errors: {:?}",
        stats.counters
    );
    assert_eq!(stats.counters.get("serve.requests"), Some(&1));
    server.shutdown_summary();
}

/// `--numerics quantized` end to end: replies are tagged with the tier
/// so clients can tell approximate answers from bit-exact ones, the
/// default server's reply shape is unchanged (no tag), and against a
/// twin exact server with the same weights the quantized routes are
/// identical with per-stop ETAs inside the declared 0.5-minute budget.
#[test]
fn quantized_serving_is_tagged_and_within_accuracy_budget() {
    let (dataset, model) = trained_model(197);
    // Twin servers share one training run's weights, so every reply
    // difference is attributable to the numerics tier alone.
    let saved = model.to_saved();
    let load = || M2G4Rtp::from_saved(saved.clone());

    let exact_srv = start_server(
        load(),
        dataset.clone(),
        ServeOptions { allow_shutdown: true, ..Default::default() },
    );
    let quant_srv = start_server(
        load(),
        dataset.clone(),
        ServeOptions {
            allow_shutdown: true,
            numerics: rtp_tensor::Numerics::Quantized,
            ..Default::default()
        },
    );

    let mut ec = Client::connect(&exact_srv.addr);
    let mut qc = Client::connect(&quant_srv.addr);
    for k in 0..8 {
        let line = query_line(&dataset, k);
        let er = ec.round_trip(&line);
        let qr = qc.round_trip(&line);
        assert!(
            !er.contains("\"numerics\""),
            "default-tier replies must keep the untagged shape: {er}"
        );
        assert!(
            qr.contains("\"numerics\":\"quantized\""),
            "quantized replies must carry the tier tag: {qr}"
        );
        let n = dataset.test[k % dataset.test.len()].query.orders.len();
        let e = assert_valid_prediction(&er, n);
        let q = assert_valid_prediction(&qr, n);
        assert_eq!(e.sorted_orders, q.sorted_orders, "quantized route differs from exact");
        assert_eq!(e.aoi_sequence, q.aoi_sequence, "quantized AOI sequence differs from exact");
        for (i, (ee, qe)) in e.eta_minutes.iter().zip(&q.eta_minutes).enumerate() {
            assert!(
                (ee - qe).abs() <= 0.5,
                "stop {i}: quantized ETA {qe} vs exact {ee} exceeds the 0.5 min budget"
            );
        }
    }

    for (mut c, srv) in [(ec, exact_srv), (qc, quant_srv)] {
        let ack = c.round_trip("{\"cmd\":\"shutdown\"}");
        assert!(ack.contains("shutting down"), "{ack}");
        drop(c);
        srv.shutdown_summary();
    }
}
