//! End-to-end tests of the `rtp online` loop: train rounds on fresh
//! simulated days and hot-swap each round's weights into a live server.

mod common;

use std::time::Duration;

use common::{query_line, reply_version, start_sharded_server, trained_model, Client};
use rtp_cli::online::{run_online, OnlineOptions};
use rtp_cli::serve::ServeOptions;

fn temp_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("rtp-online-{}-{tag}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

/// Two rounds of the loop against a live server: each round's reload
/// is acknowledged with an advancing version, and afterwards the
/// server provably serves the final round's model.
#[test]
fn online_rounds_train_and_hot_swap_into_a_live_server() {
    let (dataset, model) = trained_model(83);
    // M2G4Rtp is deliberately not Clone; round-trip through SavedModel
    // to give the server its own copy of the boot weights.
    let served = m2g4rtp::M2G4Rtp::from_saved(model.to_saved());
    let server = start_sharded_server(
        vec![("default".into(), served)],
        dataset.clone(),
        ServeOptions {
            allow_shutdown: true,
            workers: 2,
            batch_max: 4,
            batch_window: Duration::from_micros(200),
            ..Default::default()
        },
    );

    let out_path = temp_path("published.json");
    let opts = OnlineOptions {
        addr: server.addr.clone(),
        shard: Some("default".into()),
        rounds: 2,
        epochs_per_round: 1,
        seed: 901,
        threads: 1,
        out: out_path.clone(),
        checkpoint_dir: None,
    };
    let mut log = Vec::new();
    let reports = run_online(model, &dataset, &opts, &mut log).expect("online loop runs");
    let log = String::from_utf8(log).unwrap();

    assert_eq!(reports.len(), 2);
    // Version 1 is the boot model; rounds land 2 then 3.
    assert_eq!(reports[0].model_version, 2, "log:\n{log}");
    assert_eq!(reports[1].model_version, 3, "log:\n{log}");
    assert!(log.contains("round 1/2"), "log:\n{log}");
    assert!(log.contains("round 2/2"), "log:\n{log}");

    // The server really serves round 2's model, and counted the swaps.
    let mut client = Client::connect(&server.addr);
    let reply = client.round_trip(&query_line(&dataset, 0));
    assert_eq!(reply_version(&reply), 3, "server must serve the last pushed round: {reply}");
    let metrics = client.round_trip("{\"cmd\":\"metrics\"}");
    assert!(metrics.contains("serve_reload_count 2"), "metrics: {metrics}");
    assert!(metrics.contains("serve_reload_failures 0"), "metrics: {metrics}");

    // The published artifact is a loadable SavedModel (atomic publish
    // means it can never be seen half-written).
    let text = std::fs::read_to_string(&out_path).expect("published model exists");
    let saved: m2g4rtp::SavedModel = serde_json::from_str(&text).expect("published model parses");
    drop(saved);

    client.send("{\"cmd\":\"shutdown\"}");
    let summary = server.shutdown_summary();
    assert!(summary.contains("0 conn error(s)"), "summary:\n{summary}");
    std::fs::remove_file(&out_path).ok();
}

/// The loop fails fast — a dead server address aborts round 1 before
/// any training time is wasted on unpushable rounds.
#[test]
fn online_fails_fast_when_the_server_is_unreachable() {
    let (dataset, model) = trained_model(89);
    let out_path = temp_path("unreachable.json");
    let opts = OnlineOptions {
        // A bound-then-dropped ephemeral port: connection refused.
        addr: {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = l.local_addr().unwrap().to_string();
            drop(l);
            addr
        },
        shard: None,
        rounds: 2,
        epochs_per_round: 1,
        seed: 902,
        threads: 1,
        out: out_path.clone(),
        checkpoint_dir: None,
    };
    let mut log = Vec::new();
    let err = run_online(model, &dataset, &opts, &mut log).expect_err("push must fail");
    assert!(
        err.to_string().contains("refused") || err.kind() == std::io::ErrorKind::ConnectionRefused,
        "unexpected error: {err}"
    );
    std::fs::remove_file(&out_path).ok();
}

/// The CLI wiring: `rtp online` parses, runs rounds in-process, and
/// reports the final served version on stdout.
#[test]
fn online_subcommand_runs_end_to_end() {
    let (dataset, model) = trained_model(97);
    let served = m2g4rtp::M2G4Rtp::from_saved(model.to_saved());
    let server = start_sharded_server(
        vec![("default".into(), served)],
        dataset.clone(),
        ServeOptions { allow_shutdown: true, workers: 1, ..Default::default() },
    );

    let dir = std::path::PathBuf::from(temp_path("cli"));
    std::fs::create_dir_all(&dir).unwrap();
    let ds_path = dir.join("d.json");
    let md_path = dir.join("m.json");
    let out_path = dir.join("pub.json");
    std::fs::write(&ds_path, dataset.to_json().unwrap()).unwrap();
    std::fs::write(&md_path, serde_json::to_string(&model.to_saved()).unwrap()).unwrap();

    let cli = rtp_cli::args::parse(&[
        "online",
        "--model",
        md_path.to_str().unwrap(),
        "--dataset",
        ds_path.to_str().unwrap(),
        "--addr",
        &server.addr,
        "--out",
        out_path.to_str().unwrap(),
        "--rounds",
        "1",
        "--epochs-per-round",
        "1",
        "--seed",
        "903",
        "--threads",
        "1",
    ])
    .expect("parses");
    let mut out = Vec::new();
    let code = rtp_cli::commands::run(cli.command, &mut out).expect("runs");
    let out = String::from_utf8(out).unwrap();
    assert_eq!(code, 0, "output:\n{out}");
    assert!(out.contains("online loop done: 1 round(s), serving model_version 2"), "{out}");

    let mut client = Client::connect(&server.addr);
    assert_eq!(reply_version(&client.round_trip(&query_line(&dataset, 0))), 2);
    client.send("{\"cmd\":\"shutdown\"}");
    server.shutdown_summary();
    std::fs::remove_dir_all(&dir).ok();
}
