//! End-to-end test of the in-band telemetry request: after serving
//! real queries, `{"cmd":"stats"}` must return a parseable registry
//! snapshot whose counters and latency histogram reflect exactly the
//! traffic the server handled.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_cli::serve::{serve, ServeResponse, StatsReply};
use rtp_sim::{DatasetBuilder, DatasetConfig};

#[test]
fn stats_request_reports_latency_percentiles_errors_and_pool_hit_rate() {
    let dataset = DatasetBuilder::new(DatasetConfig::tiny(171)).build();
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model = M2G4Rtp::new(cfg, 7);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, &dataset);

    let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
    let (out_tx, out_rx) = std::sync::mpsc::channel::<String>();
    struct AddrSink(std::sync::mpsc::Sender<String>, std::sync::mpsc::Sender<String>, Vec<u8>);
    impl Write for AddrSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.2.extend_from_slice(buf);
            while let Some(pos) = self.2.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.2[..pos]).to_string();
                if let Some(addr) = line.strip_prefix("listening on ") {
                    let _ = self.0.send(addr.to_string());
                } else {
                    let _ = self.1.send(line);
                }
                self.2.drain(..=pos);
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let dataset2 = dataset.clone();
    let server = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, out_tx, Vec::new());
        // 2 queries + 1 bad line + 1 stats request = 4 replies
        serve(model, dataset2, 0, 4, &mut sink).expect("server runs");
    });

    let addr = addr_rx.recv_timeout(std::time::Duration::from_secs(30)).expect("server address");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));

    for k in 0..2 {
        let q = &dataset.test[k].query;
        let line = serde_json::to_string(q).expect("serialise query");
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let resp: ServeResponse = serde_json::from_str(&reply).expect("valid response JSON");
        // latency field is the histogram sample (µs-quantised), so it
        // must be strictly positive and finite
        assert!(resp.latency_ms > 0.0 && resp.latency_ms.is_finite());
    }

    stream.write_all(b"not json at all\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("error"), "{reply}");

    stream.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let stats: StatsReply = serde_json::from_str(&reply).expect("stats reply parses");

    // exact traffic accounting
    assert_eq!(stats.counters.get("serve.requests"), Some(&2));
    assert_eq!(stats.counters.get("serve.errors"), Some(&1));
    assert_eq!(stats.counters.get("serve.stats"), Some(&1));

    let lat = stats.histograms.get("serve.latency_us").expect("latency histogram present");
    assert_eq!(lat.count, 2);
    assert!(lat.p50 >= 1 && lat.p50 <= lat.p99 && lat.p99 <= lat.max);

    let route_len = stats.histograms.get("serve.route_len").expect("route_len histogram");
    assert_eq!(route_len.count, 2);
    assert!(route_len.max as usize <= dataset.test[0].query.orders.len().max(64));

    // pooled inference tape: the second request reuses the first's
    // buffers, so the hit rate is strictly positive
    let hit_rate = stats.gauges.get("tensor.pool.hit_rate").expect("pool hit rate gauge");
    assert!(*hit_rate > 0.0, "expected pool reuse, hit rate {hit_rate}");

    // the matmul kernel counters ride in from the global registry
    let fwd = stats.counters.get("tensor.matmul.fwd").copied().unwrap_or(0);
    assert!(fwd > 0, "matmul counter should have counted training + serving work");

    server.join().expect("server thread exits cleanly");

    // shutdown summary: served/ok/error counts and latency percentiles
    let mut summary = String::new();
    while let Ok(line) = out_rx.try_recv() {
        summary.push_str(&line);
        summary.push('\n');
    }
    assert!(summary.contains("served 4 request(s): 2 ok, 1 error(s), 1 stats"), "{summary}");
    assert!(summary.contains("latency p50"), "{summary}");
    assert!(summary.contains("p99"), "{summary}");
}
