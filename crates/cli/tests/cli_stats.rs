//! End-to-end test of the in-band telemetry request: after serving
//! real queries, `{"cmd":"stats"}` must return a parseable registry
//! snapshot whose counters and latency histogram reflect exactly the
//! traffic the server handled.

mod common;

use std::time::Duration;

use common::{query_line, start_server, trained_model, Client};
use rtp_cli::serve::{ServeOptions, ServeResponse, StatsReply};

#[test]
fn stats_request_reports_latency_percentiles_errors_and_pool_hit_rate() {
    let (dataset, model) = trained_model(171);
    // 2 queries + 1 bad line + 1 stats request = 4 replies
    let opts = ServeOptions { max_requests: 4, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    let mut client = Client::connect(&server.addr);
    for k in 0..2 {
        let reply = client.round_trip(&query_line(&dataset, k));
        let resp: ServeResponse = serde_json::from_str(&reply).expect("valid response JSON");
        // latency field is the histogram sample (µs-quantised), so it
        // must be strictly positive and finite
        assert!(resp.latency_ms > 0.0 && resp.latency_ms.is_finite());
    }

    let reply = client.round_trip("not json at all");
    assert!(reply.contains("error"), "{reply}");

    let reply = client.round_trip("{\"cmd\":\"stats\"}");
    let stats: StatsReply = serde_json::from_str(&reply).expect("stats reply parses");

    // exact traffic accounting
    assert_eq!(stats.counters.get("serve.requests"), Some(&2));
    assert_eq!(stats.counters.get("serve.errors"), Some(&1));
    assert_eq!(stats.counters.get("serve.stats"), Some(&1));
    assert_eq!(stats.counters.get("serve.connections"), Some(&1));
    assert_eq!(stats.counters.get("serve.conn_errors"), Some(&0));
    assert_eq!(stats.counters.get("serve.panics"), Some(&0));
    assert!(stats.gauges.get("serve.active_connections").copied() >= Some(1.0));

    let lat = stats.histograms.get("serve.latency_us").expect("latency histogram present");
    assert_eq!(lat.count, 2);
    assert!(lat.p50 >= 1 && lat.p50 <= lat.p99 && lat.p99 <= lat.max);

    let route_len = stats.histograms.get("serve.route_len").expect("route_len histogram");
    assert_eq!(route_len.count, 2);
    assert!(route_len.max as usize <= dataset.test[0].query.orders.len().max(64));

    // pooled inference tape: the second request reuses the first's
    // buffers, so the hit rate is strictly positive
    let hit_rate = stats.gauges.get("tensor.pool.hit_rate").expect("pool hit rate gauge");
    assert!(*hit_rate > 0.0, "expected pool reuse, hit rate {hit_rate}");

    // the matmul kernel counters ride in from the global registry
    let fwd = stats.counters.get("tensor.matmul.fwd").copied().unwrap_or(0);
    assert!(fwd > 0, "matmul counter should have counted training + serving work");

    // shutdown summary: served/ok/error counts and latency percentiles
    let summary = server.shutdown_summary();
    assert!(summary.contains("served 4 request(s): 2 ok, 1 error(s), 1 stats"), "{summary}");
    assert!(summary.contains("connections: 1 handled, 0 conn error(s), 0 panic(s)"), "{summary}");
    assert!(summary.contains("latency p50"), "{summary}");
    assert!(summary.contains("p99"), "{summary}");
}

/// The batching/cache/tier metrics introduced alongside micro-batching
/// must all round-trip through `{"cmd":"stats"}`: the `serve.batch_size`
/// histogram with its percentiles, the `serve.cache.hit_rate` gauge,
/// the `serve.unknown_cmds` counter, and the per-numerics-tier request
/// counters.
#[test]
fn stats_round_trip_batch_size_cache_rate_unknown_cmds_and_tiers() {
    let (dataset, model) = trained_model(172);
    // 2 predictions + 1 unknown command + 1 stats = 4 replies
    let opts = ServeOptions {
        max_requests: 4,
        workers: 1,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);

    // Same line twice: one engine round (cache miss) + one cache hit.
    let line = query_line(&dataset, 0);
    let first = client.round_trip(&line);
    let second = client.round_trip(&line);
    assert_eq!(common::strip_latency(&first), common::strip_latency(&second));

    let reply = client.round_trip("{\"cmd\":\"frobnicate\"}");
    assert!(reply.contains("unknown command"), "{reply}");

    let reply = client.round_trip("{\"cmd\":\"stats\"}");
    let stats: StatsReply = serde_json::from_str(&reply).expect("stats reply parses");

    // serve.batch_size: exactly one batched forward (the cache hit
    // never reaches the engine), of batch size 1.
    let batch = stats.histograms.get("serve.batch_size").expect("batch_size histogram in stats");
    assert_eq!(batch.count, 1, "one engine batch expected");
    assert!(batch.p50 >= 1 && batch.p50 <= batch.max);

    // serve.cache.hit_rate: 1 hit / (1 hit + 1 miss).
    assert_eq!(stats.counters.get("serve.cache.hits"), Some(&1));
    assert_eq!(stats.counters.get("serve.cache.misses"), Some(&1));
    assert_eq!(stats.gauges.get("serve.cache.hit_rate"), Some(&0.5));

    // serve.unknown_cmds: the typo'd command, kept out of serve.errors.
    assert_eq!(stats.counters.get("serve.unknown_cmds"), Some(&1));
    assert_eq!(stats.counters.get("serve.errors"), Some(&0));

    // Per-numerics-tier counters: all three registered, default tier
    // counted both predictions.
    assert_eq!(stats.counters.get("serve.requests.exact"), Some(&2));
    assert_eq!(stats.counters.get("serve.requests.fast"), Some(&0));
    assert_eq!(stats.counters.get("serve.requests.quantized"), Some(&0));

    // The stage histograms ride along for every prediction.
    for name in rtp_obs::StageBreakdown::NAMES {
        let h = stats
            .histograms
            .get(&format!("serve.stage.{name}_us"))
            .unwrap_or_else(|| panic!("serve.stage.{name}_us missing from stats"));
        assert_eq!(h.count, 2, "stage {name} must have one sample per prediction");
    }

    drop(client);
    server.shutdown_summary();
}
