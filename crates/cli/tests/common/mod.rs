//! Shared scaffolding for the serve-layer integration tests: train a
//! tiny model once, run the server on a background thread capturing
//! its stdout, and speak the NDJSON protocol as a client.
#![allow(dead_code)] // each test binary uses a different subset

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_cli::serve::{serve, serve_sharded, ServeOptions, ShardSpec};
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};

/// A tiny trained model + its dataset (1 epoch; serving latency and
/// protocol behaviour do not depend on convergence).
pub fn trained_model(seed: u64) -> (Dataset, M2G4Rtp) {
    let dataset = DatasetBuilder::new(DatasetConfig::tiny(seed)).build();
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model = M2G4Rtp::new(cfg, 3);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, &dataset);
    (dataset, model)
}

/// Routes the server's "listening on ADDR" line to one channel and
/// every other stdout line (the shutdown summary) to another.
struct AddrSink(Sender<String>, Sender<String>, Vec<u8>);

impl Write for AddrSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.2.extend_from_slice(buf);
        while let Some(pos) = self.2.iter().position(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(&self.2[..pos]).to_string();
            if let Some(addr) = line.strip_prefix("listening on ") {
                let _ = self.0.send(addr.to_string());
            } else {
                let _ = self.1.send(line);
            }
            self.2.drain(..=pos);
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A server running on a background thread.
pub struct ServerHandle {
    /// `host:port` to connect to.
    pub addr: String,
    out_rx: Receiver<String>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// Waits for the server to exit and returns its full stdout (the
    /// "workers:" line plus the telemetry summary), newline-joined.
    pub fn shutdown_summary(self) -> String {
        self.join.join().expect("server thread exits cleanly");
        let mut summary = String::new();
        while let Ok(line) = self.out_rx.try_recv() {
            summary.push_str(&line);
            summary.push('\n');
        }
        summary
    }
}

/// Spawns `serve` on an ephemeral port and waits for its address.
pub fn start_server(model: M2G4Rtp, dataset: Dataset, opts: ServeOptions) -> ServerHandle {
    let (addr_tx, addr_rx) = channel::<String>();
    let (out_tx, out_rx) = channel::<String>();
    let join = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, out_tx, Vec::new());
        serve(model, dataset, opts, &mut sink).expect("server runs");
    });
    let addr = addr_rx.recv_timeout(Duration::from_secs(60)).expect("server address");
    ServerHandle { addr, out_rx, join }
}

/// Spawns a multi-shard `serve_sharded` fleet on an ephemeral port and
/// waits for its address. Shard order is routing order: the first
/// shard is the default for requests without a `"city"` key.
pub fn start_sharded_server(
    models: Vec<(String, M2G4Rtp)>,
    dataset: Dataset,
    opts: ServeOptions,
) -> ServerHandle {
    let specs = models.into_iter().map(|(name, model)| ShardSpec::new(name, model)).collect();
    start_spec_server(specs, dataset, opts)
}

/// Spawns `serve_sharded` from full [`ShardSpec`]s (path-ful shards arm
/// SIGHUP reloads) on an ephemeral port and waits for its address.
pub fn start_spec_server(
    specs: Vec<ShardSpec>,
    dataset: Dataset,
    opts: ServeOptions,
) -> ServerHandle {
    let (addr_tx, addr_rx) = channel::<String>();
    let (out_tx, out_rx) = channel::<String>();
    let join = std::thread::spawn(move || {
        let mut sink = AddrSink(addr_tx, out_tx, Vec::new());
        serve_sharded(specs, dataset, opts, &mut sink).expect("server runs");
    });
    let addr = addr_rx.recv_timeout(Duration::from_secs(60)).expect("server address");
    ServerHandle { addr, out_rx, join }
}

/// The k-th test query with a `"city"` routing key spliced in front.
pub fn city_query_line(dataset: &Dataset, k: usize, city: &str) -> String {
    let line = query_line(dataset, k);
    format!("{{\"city\":\"{city}\",{}", &line[1..])
}

/// Current thread count of this process, from `/proc/self/status`
/// (Linux-only, like the epoll reactor itself).
pub fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line present")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// The soft `RLIMIT_NOFILE` cap, from `/proc/self/limits` — the test
/// process and the in-process server share it, so soak tests size
/// their connection count off this instead of hard-coding 1k+.
pub fn max_open_files() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").expect("read /proc/self/limits");
    let line = limits.lines().find(|l| l.starts_with("Max open files")).expect("limit line");
    let soft = line.split_whitespace().nth(3).expect("soft limit field");
    if soft == "unlimited" {
        1 << 20
    } else {
        soft.parse().expect("soft limit parses")
    }
}

/// A blocking NDJSON client connection.
pub struct Client {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Self { stream, reader }
    }

    /// Sends one request line.
    pub fn send(&mut self, line: &str) {
        self.stream.write_all(format!("{line}\n").as_bytes()).expect("send");
    }

    /// Reads one reply line (empty string on EOF).
    pub fn recv(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        reply
    }

    /// One request/reply round trip.
    pub fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Sends raw bytes with no trailing newline (a truncated line).
    pub fn send_partial(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("send partial");
    }

    /// Hard-closes the connection while a server reply sits unread in
    /// the receive buffer, so the close emits an RST and the server's
    /// next read on this connection fails with a real I/O error
    /// (a plain close would be a clean EOF). Call only with at least
    /// one reply in flight.
    pub fn close_with_unread(self) {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let mut byte = [0u8; 1];
        while self.stream.peek(&mut byte).unwrap_or(0) == 0 {
            assert!(std::time::Instant::now() < deadline, "no reply arrived to leave unread");
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(self);
    }
}

/// The k-th test query as a request line.
pub fn query_line(dataset: &Dataset, k: usize) -> String {
    serde_json::to_string(&dataset.test[k % dataset.test.len()].query).expect("serialise query")
}

/// Strips the spliced `"latency_ms":X,` field so two replies to the
/// same query can be compared byte-for-byte (latency is the only
/// nondeterministic field).
pub fn strip_latency(reply: &str) -> String {
    let body = reply.trim();
    let prefix = "{\"latency_ms\":";
    if let Some(rest) = body.strip_prefix(prefix) {
        if let Some(comma) = rest.find(',') {
            return format!("{{{}", &rest[comma + 1..]);
        }
    }
    body.to_string()
}

/// Strips the spliced `"model_version":N,` field (and nothing else),
/// so replies computed before and after an identity hot-swap — same
/// weights, different version tag — can be compared byte-for-byte.
/// Composes with [`strip_latency`]: strip latency first.
pub fn strip_version(reply: &str) -> String {
    let body = reply.trim();
    let key = "\"model_version\":";
    let Some(start) = body.find(key) else {
        return body.to_string();
    };
    let rest = &body[start + key.len()..];
    let end = rest.find(',').map(|c| c + 1).unwrap_or(rest.len());
    format!("{}{}", &body[..start], &rest[end..])
}

/// The `model_version` tag carried by a reply.
pub fn reply_version(reply: &str) -> u64 {
    let v: serde::Value = serde_json::from_str(reply.trim()).expect("reply parses");
    match v.get("model_version") {
        Some(serde::Value::Num(n)) => n.as_u64().expect("model_version is a u64"),
        other => panic!("missing model_version in {reply}: {other:?}"),
    }
}

/// The k-th test query as a request line with `"trace": true` spliced
/// in, so the reply echoes its trace id and stage breakdown.
pub fn traced_query_line(dataset: &Dataset, k: usize) -> String {
    let line = query_line(dataset, k);
    format!("{{\"trace\":true,{}", &line[1..])
}

/// Strips the spliced `,"trace_id":N,"stages":{...}` fields from a
/// traced reply, leaving exactly the bytes an untraced reply to the
/// same query would carry (modulo `latency_ms`). Untraced replies pass
/// through unchanged.
pub fn strip_trace(reply: &str) -> String {
    let body = reply.trim();
    let Some(start) = body.find(",\"trace_id\":") else {
        return body.to_string();
    };
    let stages_key = "\"stages\":{";
    let sk = body[start..].find(stages_key).expect("stages follows trace_id") + start;
    let close = body[sk + stages_key.len()..].find('}').expect("stages object closes");
    let end = sk + stages_key.len() + close + 1;
    format!("{}{}", &body[..start], &body[end..])
}

/// The `trace_id` and stage durations echoed in a traced reply, in
/// [`rtp_obs::StageBreakdown::NAMES`] order.
pub fn parse_trace(reply: &str) -> (u64, [u64; 5]) {
    let v: serde::Value = serde_json::from_str(reply.trim()).expect("traced reply parses");
    let trace_id = match v.get("trace_id") {
        Some(serde::Value::Num(n)) => n.as_u64().expect("trace_id is a u64"),
        other => panic!("missing trace_id in {reply}: {other:?}"),
    };
    let stages = v.get("stages").expect("stages present");
    let stage = |name: &str| match stages.get(&format!("{name}_us")) {
        Some(serde::Value::Num(n)) => {
            let f = n.as_f64();
            assert!(f.is_finite() && f >= 0.0, "stage {name} must be finite and >= 0, got {f}");
            n.as_u64().unwrap_or_else(|| panic!("stage {name} is not a u64: {f}"))
        }
        other => panic!("missing stage {name} in {reply}: {other:?}"),
    };
    (trace_id, rtp_obs::StageBreakdown::NAMES.map(stage))
}
