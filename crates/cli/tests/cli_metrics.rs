//! End-to-end tests of the Prometheus exporters: the in-band
//! `{"cmd":"metrics"}` verb and the `--metrics-file` periodic snapshot
//! writer both emit text exposition that passes the format validator
//! (label syntax, monotone cumulative buckets, `_sum`/`_count`
//! consistency) and reflects the traffic actually served.

mod common;

use std::time::Duration;

use common::{query_line, start_server, traced_query_line, trained_model, Client};
use rtp_cli::serve::{MetricsReply, ServeOptions};

#[test]
fn metrics_command_returns_valid_prometheus_text() {
    let (dataset, model) = trained_model(401);
    let opts = ServeOptions {
        max_requests: 4,
        workers: 1,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);
    client.round_trip(&query_line(&dataset, 0));
    client.round_trip(&traced_query_line(&dataset, 1));
    let reply = client.round_trip("not json at all");
    assert!(reply.contains("error"), "{reply}");

    let reply = client.round_trip("{\"cmd\":\"metrics\"}");
    let m: MetricsReply = serde_json::from_str(&reply).expect("metrics reply parses");
    let samples = rtp_obs::prom::validate(&m.metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", m.metrics));
    assert!(samples > 20, "expected a full registry, got {samples} samples");

    // Exact traffic accounting in the exposition.
    assert!(m.metrics.contains("serve_requests 2\n"), "{}", m.metrics);
    assert!(m.metrics.contains("serve_errors 1\n"), "{}", m.metrics);
    assert!(m.metrics.contains("serve_requests_exact 2\n"), "{}", m.metrics);
    // The queue_wait/forward stage split of the batched path is
    // visible as separate histogram families.
    assert!(m.metrics.contains("serve_stage_queue_wait_us_count 2\n"), "{}", m.metrics);
    assert!(m.metrics.contains("serve_stage_forward_us_count 2\n"), "{}", m.metrics);
    assert!(m.metrics.contains("serve_stage_forward_us_bucket{le=\""), "{}", m.metrics);
    assert!(m.metrics.contains("# TYPE serve_latency_us histogram\n"), "{}", m.metrics);

    drop(client);
    server.shutdown_summary();
}

#[test]
fn metrics_file_snapshots_are_scrapeable_and_final() {
    let (dataset, model) = trained_model(402);
    let path =
        std::env::temp_dir().join(format!("rtp-metrics-snapshot-{}.txt", std::process::id()));
    let path_s = path.to_str().unwrap().to_string();
    let opts = ServeOptions {
        workers: 1,
        allow_shutdown: true,
        metrics_file: Some(path_s),
        metrics_interval: Duration::from_secs(1),
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);

    // The writer emits a snapshot at startup, before any traffic.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let initial = loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            break text;
        }
        assert!(std::time::Instant::now() < deadline, "no startup snapshot appeared");
        std::thread::sleep(Duration::from_millis(20));
    };
    rtp_obs::prom::validate(&initial)
        .unwrap_or_else(|e| panic!("invalid startup exposition: {e}\n{initial}"));
    assert!(initial.contains("serve_requests 0\n"), "{initial}");

    let mut client = Client::connect(&server.addr);
    client.round_trip(&query_line(&dataset, 0));
    client.round_trip(&query_line(&dataset, 1));
    client.round_trip("{\"cmd\":\"shutdown\"}");
    drop(client);
    server.shutdown_summary();

    // The shutdown path writes one final snapshot after the drain, so
    // the file reflects the complete run.
    let text = std::fs::read_to_string(&path).expect("final snapshot present");
    std::fs::remove_file(&path).ok();
    rtp_obs::prom::validate(&text)
        .unwrap_or_else(|e| panic!("invalid final exposition: {e}\n{text}"));
    assert!(text.contains("serve_requests 2\n"), "{text}");
    assert!(text.contains("serve_latency_us_count 2\n"), "{text}");
    assert!(text.contains("serve_stage_write_us_count 2\n"), "{text}");
    // Gauges survive the render with Prometheus float spelling.
    assert!(text.contains("# TYPE serve_active_connections gauge\n"), "{text}");
}
