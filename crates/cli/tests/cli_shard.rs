//! End-to-end tests of the per-city shard router: repeatable `--model
//! NAME=PATH` hosts one model per shard, request lines route by their
//! `"city"` key (absent ⇒ the first shard), and every shard owns its
//! own counters in stats, Prometheus exposition and the shutdown
//! summary.

mod common;

use common::{
    city_query_line, query_line, start_server, start_sharded_server, strip_latency, strip_trace,
    trained_model, Client,
};
use m2g4rtp::{M2G4Rtp, ModelConfig, TrainConfig, Trainer};
use rtp_cli::serve::{MetricsReply, ServeOptions, StatsReply};
use rtp_sim::Dataset;

/// Two models over one dataset with distinguishable outputs: shard
/// `a` is the usual 1-epoch model, shard `b` is trained from a
/// different init seed (routes/ETAs differ on at least one test
/// query — asserted, not assumed, by the routing test).
fn two_city_fleet(seed: u64) -> (Dataset, M2G4Rtp, M2G4Rtp) {
    let (dataset, model_a) = trained_model(seed);
    let mut cfg = ModelConfig::for_dataset(&dataset);
    cfg.d_loc = 16;
    cfg.d_aoi = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    let mut model_b = M2G4Rtp::new(cfg, 77);
    Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model_b, &dataset);
    (dataset, model_a, model_b)
}

/// Each `"city"` reaches exactly its model: the 2-shard server's
/// replies are byte-identical to single-model twin servers running the
/// same weights, and a request without a `"city"` key falls back to
/// the first shard.
#[test]
fn city_key_routes_to_the_matching_shard_and_default_falls_back() {
    let (dataset, model_a, model_b) = two_city_fleet(251);
    let (saved_a, saved_b) = (model_a.to_saved(), model_b.to_saved());

    let twin_a = start_server(model_a, dataset.clone(), ServeOptions::default());
    let twin_b = start_server(model_b, dataset.clone(), ServeOptions::default());
    let fleet = start_sharded_server(
        vec![
            ("a".to_string(), M2G4Rtp::from_saved(saved_a)),
            ("b".to_string(), M2G4Rtp::from_saved(saved_b)),
        ],
        dataset.clone(),
        ServeOptions::default(),
    );

    let mut ca = Client::connect(&twin_a.addr);
    let mut cb = Client::connect(&twin_b.addr);
    let mut cf = Client::connect(&fleet.addr);
    let mut distinguishable = false;
    for k in 0..8 {
        let want_a = strip_latency(&ca.round_trip(&query_line(&dataset, k)));
        let want_b = strip_latency(&cb.round_trip(&query_line(&dataset, k)));
        distinguishable |= want_a != want_b;

        let got_a = strip_latency(&cf.round_trip(&city_query_line(&dataset, k, "a")));
        let got_b = strip_latency(&cf.round_trip(&city_query_line(&dataset, k, "b")));
        assert_eq!(got_a, want_a, "query {k}: city a reached the wrong model");
        assert_eq!(got_b, want_b, "query {k}: city b reached the wrong model");

        let legacy = strip_latency(&cf.round_trip(&query_line(&dataset, k)));
        assert_eq!(legacy, want_a, "query {k}: default shard must be the first one");
    }
    assert!(
        distinguishable,
        "test models answered identically on all 8 queries — routing unproven"
    );
}

/// Routing errors are precise and attributed: an unknown city names
/// the fleet roster, a non-string `"city"` is rejected as malformed,
/// and post-routing failures land on the routed shard's error counter.
#[test]
fn unknown_and_malformed_cities_are_errors() {
    let (dataset, model_a, model_b) = two_city_fleet(257);
    let fleet = start_sharded_server(
        vec![("a".to_string(), model_a), ("b".to_string(), model_b)],
        dataset.clone(),
        ServeOptions::default(),
    );

    let mut client = Client::connect(&fleet.addr);
    let reply = client.round_trip(&city_query_line(&dataset, 0, "gotham"));
    assert!(reply.contains("unknown city `gotham`"), "{reply}");
    assert!(reply.contains("a, b"), "error must name the hosted shards: {reply}");

    let line = query_line(&dataset, 0);
    let reply = client.round_trip(&format!("{{\"city\":7,{}", &line[1..]));
    assert!(reply.contains("`city` must be a string"), "{reply}");

    // A routed request that then fails to parse is the shard's error.
    let reply = client.round_trip("{\"city\":\"b\"}");
    assert!(reply.contains("bad request"), "{reply}");
    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.shard.b.errors"), Some(&1));
    assert_eq!(stats.counters.get("serve.shard.a.errors"), Some(&0));
    // Pre-routing errors (unknown city, malformed key) belong to no
    // shard — only the server-wide counter.
    assert_eq!(stats.counters.get("serve.errors"), Some(&3));
}

/// Per-shard counters surface everywhere an operator looks: the stats
/// reply, the Prometheus exposition, and the shutdown summary.
#[test]
fn per_shard_counters_in_stats_prom_and_summary() {
    let (dataset, model_a, model_b) = two_city_fleet(263);
    let fleet = start_sharded_server(
        vec![("a".to_string(), model_a), ("b".to_string(), model_b)],
        dataset.clone(),
        ServeOptions { allow_shutdown: true, ..Default::default() },
    );

    let mut client = Client::connect(&fleet.addr);
    // 3 requests for a (one explicit, two via default fallback), 1 for b.
    client.round_trip(&city_query_line(&dataset, 0, "a"));
    client.round_trip(&query_line(&dataset, 1));
    client.round_trip(&query_line(&dataset, 2));
    client.round_trip(&city_query_line(&dataset, 3, "b"));

    let stats: StatsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"stats\"}")).expect("stats parses");
    assert_eq!(stats.counters.get("serve.shard.a.requests"), Some(&3));
    assert_eq!(stats.counters.get("serve.shard.b.requests"), Some(&1));
    assert_eq!(stats.counters.get("serve.requests"), Some(&4), "shards sum to the global count");

    let prom: MetricsReply =
        serde_json::from_str(&client.round_trip("{\"cmd\":\"metrics\"}")).expect("metrics parses");
    assert!(prom.metrics.contains("serve_shard_a_requests 3"), "{}", prom.metrics);
    assert!(prom.metrics.contains("serve_shard_b_requests 1"), "{}", prom.metrics);
    assert!(prom.metrics.contains("serve_shard_b_errors 0"), "{}", prom.metrics);

    let ack = client.round_trip("{\"cmd\":\"shutdown\"}");
    assert!(ack.contains("shutting down"), "{ack}");
    let summary = fleet.shutdown_summary();
    assert!(summary.contains("shards: a, b"), "{summary}");
    assert!(summary.contains("shard a: 3 ok, 0 error(s)"), "{summary}");
    assert!(summary.contains("shard b: 1 ok, 0 error(s)"), "{summary}");
}

/// Traced replies on a multi-shard server carry their shard label —
/// and `strip_trace` still reduces them to the untraced bytes, so the
/// byte-identity tooling spans the fleet. Single-shard servers keep
/// the exact pre-shard traced shape (no `"shard"` key).
#[test]
fn traced_replies_carry_the_shard_label_only_on_fleets() {
    let (dataset, model_a, model_b) = two_city_fleet(269);
    let saved_a = model_a.to_saved();
    let fleet = start_sharded_server(
        vec![("a".to_string(), model_a), ("b".to_string(), model_b)],
        dataset.clone(),
        ServeOptions::default(),
    );

    let mut client = Client::connect(&fleet.addr);
    let line = city_query_line(&dataset, 0, "b");
    let traced = client.round_trip(&format!("{{\"trace\":true,{}", &line[1..]));
    assert!(traced.contains("\"shard\":\"b\""), "{traced}");
    let untraced = client.round_trip(&line);
    assert_eq!(strip_latency(&strip_trace(&traced)), strip_latency(&untraced));

    let single =
        start_server(M2G4Rtp::from_saved(saved_a), dataset.clone(), ServeOptions::default());
    let mut sc = Client::connect(&single.addr);
    let line = query_line(&dataset, 0);
    let traced = sc.round_trip(&format!("{{\"trace\":true,{}", &line[1..]));
    assert!(traced.contains("\"trace_id\""), "{traced}");
    assert!(
        !traced.contains("\"shard\""),
        "single-shard replies must keep the old shape: {traced}"
    );
}
