//! End-to-end tests of per-request trace propagation: traced replies
//! carry a trace id and a five-stage latency breakdown that is finite,
//! non-negative and sums to no more than the reply's own `latency_ms`;
//! stripping the trace fields leaves bytes identical to the untraced
//! path; and a forced worker panic produces a flight-recorder JSONL
//! dump containing the panicking request's trace id.

mod common;

use std::time::Duration;

use common::{
    parse_trace, query_line, start_server, strip_latency, strip_trace, traced_query_line,
    trained_model, Client,
};
use rtp_cli::serve::ServeOptions;

/// Pipelines traced + untraced queries through one connection and
/// checks ids, stage arithmetic and byte identity.
fn check_traced_serving(opts: ServeOptions, seed: u64) {
    let (dataset, model) = trained_model(seed);
    let queries = 4usize;
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);

    let mut last_id = None;
    for k in 0..queries {
        // Untraced first: its reply must not mention tracing at all.
        let plain = client.round_trip(&query_line(&dataset, k));
        assert!(!plain.contains("trace_id"), "untraced reply leaked trace fields: {plain}");
        let traced = client.round_trip(&traced_query_line(&dataset, k));
        let (trace_id, stages) = parse_trace(&traced);

        // Pipelined requests on one connection get consecutive ids
        // (the untraced request in between consumed one).
        if let Some(prev) = last_id {
            assert_eq!(trace_id, prev + 2, "ids must be consecutive per connection");
        }
        last_id = Some(trace_id);

        // Stages are disjoint sub-intervals of the handle window, so
        // their sum is bounded by the reply's own latency.
        let v: serde::Value = serde_json::from_str(traced.trim()).expect("reply parses");
        let latency_ms = match v.get("latency_ms") {
            Some(serde::Value::Num(n)) => n.as_f64(),
            other => panic!("missing latency_ms: {other:?}"),
        };
        let latency_us = (latency_ms * 1000.0).round() as u64;
        let sum: u64 = stages.iter().sum();
        assert!(sum <= latency_us, "stage sum {sum} µs exceeds latency {latency_us} µs: {traced}");
        assert!(stages[2] > 0, "forward stage must be visible: {traced}");

        // Modulo latency and the trace fields, traced and untraced
        // replies to the same query are byte-identical.
        assert_eq!(
            strip_latency(&strip_trace(&traced)),
            strip_latency(&plain),
            "traced reply must differ only in trace fields"
        );
    }
    drop(client);
    server.shutdown_summary();
}

#[test]
fn traced_replies_unbatched() {
    check_traced_serving(ServeOptions { max_requests: 8, workers: 1, ..Default::default() }, 311);
}

#[test]
fn traced_replies_batched() {
    check_traced_serving(
        ServeOptions {
            max_requests: 8,
            workers: 2,
            batch_max: 4,
            batch_window: Duration::from_micros(200),
            ..Default::default()
        },
        312,
    );
}

#[test]
fn batched_trace_shows_queue_and_forward_split() {
    let (dataset, model) = trained_model(313);
    let opts = ServeOptions {
        max_requests: 2,
        workers: 1,
        batch_max: 4,
        batch_window: Duration::from_micros(200),
        ..Default::default()
    };
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);
    // First query misses the cache and goes through the engine: its
    // queue_wait (enqueue → engine dequeue) and forward (the batched
    // forward) are separately visible in the breakdown.
    let traced = client.round_trip(&traced_query_line(&dataset, 0));
    let (_, stages) = parse_trace(&traced);
    assert!(stages[2] > 0, "forward stage must be nonzero: {traced}");
    // queue_wait crosses a channel to another thread; the engine also
    // waited out part of the batch window before flushing a non-full
    // batch, which lands in batch_form.
    assert!(stages[0] + stages[1] > 0, "a batched request must show queue/batch time: {traced}");
    // Same line again: cache hit, served on the worker without the
    // engine — queue_wait, batch_form and demux collapse to zero.
    let traced = client.round_trip(&traced_query_line(&dataset, 0));
    let (_, stages) = parse_trace(&traced);
    assert_eq!(stages[0] + stages[1] + stages[3], 0, "cache hit crossed a thread: {traced}");
    drop(client);
    server.shutdown_summary();
}

#[test]
fn worker_panic_dumps_flight_recorder_with_trace_id() {
    let (dataset, model) = trained_model(314);
    let dump_path =
        std::env::temp_dir().join(format!("rtp-flight-panic-{}.jsonl", std::process::id()));
    let dump_s = dump_path.to_str().unwrap().to_string();
    let opts =
        ServeOptions { allow_shutdown: true, flight_dump: Some(dump_s), ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);

    let mut client = Client::connect(&server.addr);
    let traced = client.round_trip(&traced_query_line(&dataset, 0));
    let (trace_id, _) = parse_trace(&traced);
    // The panic command is the next request on the same connection, so
    // its trace id is the traced request's + 1.
    let reply = client.round_trip("{\"cmd\":\"panic\"}");
    assert!(reply.contains("internal error"), "{reply}");
    drop(client);

    let dump = std::fs::read_to_string(&dump_path).expect("flight dump written");
    std::fs::remove_file(&dump_path).ok();
    let panic_line = dump
        .lines()
        .find(|l| l.contains("\"kind\":\"panic\""))
        .unwrap_or_else(|| panic!("no panic event in dump:\n{dump}"));
    assert!(
        panic_line.contains(&format!("\"trace_id\":{}", trace_id + 1)),
        "panic event must carry the panicking request's trace id {}: {panic_line}",
        trace_id + 1
    );
    // The preceding successful request is part of the post-mortem.
    assert!(
        dump.lines().any(|l| {
            l.contains("\"kind\":\"request\"") && l.contains(&format!("\"trace_id\":{trace_id}"))
        }),
        "request history missing from dump:\n{dump}"
    );

    let mut client = Client::connect(&server.addr);
    client.round_trip("{\"cmd\":\"shutdown\"}");
    let summary = server.shutdown_summary();
    assert!(summary.contains("1 panic(s)"), "{summary}");
}

#[test]
fn dump_command_returns_flight_events_in_band() {
    let (dataset, model) = trained_model(315);
    let opts = ServeOptions { max_requests: 2, ..Default::default() };
    let server = start_server(model, dataset.clone(), opts);
    let mut client = Client::connect(&server.addr);
    let traced = client.round_trip(&traced_query_line(&dataset, 0));
    let (trace_id, _) = parse_trace(&traced);
    let reply = client.round_trip("{\"cmd\":\"dump\"}");
    let v: serde::Value = serde_json::from_str(reply.trim()).expect("dump reply parses");
    let Some(serde::Value::Array(events)) = v.get("events") else {
        panic!("dump reply has no events array: {reply}");
    };
    assert!(
        events.iter().any(|e| {
            matches!(e.get("trace_id"), Some(serde::Value::Num(n)) if n.as_u64() == Some(trace_id))
        }),
        "served request's trace id {trace_id} missing from dump reply: {reply}"
    );
    drop(client);
    server.shutdown_summary();
}
