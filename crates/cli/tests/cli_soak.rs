//! Idle-connection soak for the epoll front end, alone in its own test
//! binary: its assertions read the process-wide thread count from
//! `/proc/self/status`, which only holds still when no sibling test is
//! spawning servers in the same process.
//!
//! Sized off the soft `RLIMIT_NOFILE` cap so constrained CI runners
//! degrade gracefully instead of dying on EMFILE: each in-process
//! connection costs two descriptors (client end + server end), and a
//! margin is reserved for the harness itself.

mod common;

use common::{
    max_open_files, process_threads, query_line, start_server, strip_latency, trained_model, Client,
};
use rtp_cli::serve::ServeOptions;
use std::io::Read as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Idle sockets must cost zero threads and be reaped by the timer
/// wheel, while an active connection on the same server keeps its
/// latency and is never reaped as long as it keeps talking.
#[test]
fn idle_connections_cost_no_threads_and_are_reaped() {
    // Two fds per in-process connection, 256 spare for the harness,
    // capped at 1000 (the bench arm covers the full 1k+ story).
    let n_idle = ((max_open_files().saturating_sub(256)) / 2).clamp(64, 1000);

    let (dataset, model) = trained_model(241);
    let server = start_server(
        model,
        dataset.clone(),
        ServeOptions {
            allow_shutdown: true,
            workers: 2,
            idle_timeout: Some(Duration::from_secs(1)),
            ..Default::default()
        },
    );

    let mut active = Client::connect(&server.addr);
    let line = query_line(&dataset, 0);
    let want = strip_latency(&active.round_trip(&line));

    let threads_before = process_threads();
    let mut idle = Vec::with_capacity(n_idle);
    for i in 0..n_idle {
        let s = TcpStream::connect(&server.addr)
            .unwrap_or_else(|e| panic!("idle connect {i}/{n_idle}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        idle.push(s);
        // Opening a thousand sockets on a loaded 1-core box can take
        // longer than the idle timeout — keep the hot connection's
        // deadline re-armed while the herd assembles.
        if i % 100 == 99 {
            assert_eq!(strip_latency(&active.round_trip(&line)), want, "hot path during setup");
        }
    }
    assert_eq!(
        process_threads(),
        threads_before,
        "{n_idle} idle connections must not consume a single thread"
    );

    // The hot connection answers correctly while the wheel reaps the
    // idle ones around it — and its own activity keeps re-arming its
    // deadline, so it survives a multiple of the idle timeout.
    let reap_deadline = Instant::now() + Duration::from_secs(60);
    let mut probe = idle.pop().expect("at least one idle conn");
    // A short probe timeout keeps the loop hot: the active connection
    // must round-trip more often than the 1 s idle deadline, or the
    // wheel would (correctly!) reap it too.
    probe.set_read_timeout(Some(Duration::from_millis(200))).unwrap();
    let mut eof = [0u8; 1];
    loop {
        assert_eq!(strip_latency(&active.round_trip(&line)), want, "hot path degraded");
        match probe.read(&mut eof) {
            Ok(0) => break, // reaped: clean EOF from the reactor
            Ok(_) => panic!("idle socket received unsolicited bytes"),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("idle socket read failed: {e}"),
        }
        assert!(Instant::now() < reap_deadline, "idle connection never reaped");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Every other idle socket is reaped too (EOF, not RST: nothing was
    // ever written on them).
    for (i, mut s) in idle.into_iter().enumerate() {
        let mut buf = [0u8; 1];
        match s.read(&mut buf) {
            Ok(0) => {}
            other => panic!("idle socket {i} not cleanly reaped: {other:?}"),
        }
    }

    // The survivor still works after the massacre, and the summary's
    // timeout count owns up to every reaped socket.
    assert_eq!(strip_latency(&active.round_trip(&line)), want);
    let ack = active.round_trip("{\"cmd\":\"shutdown\"}");
    assert!(ack.contains("shutting down"), "{ack}");
    let summary = server.shutdown_summary();
    assert!(summary.contains(&format!("{n_idle} timeout(s)")), "summary:\n{summary}");
}
