//! The TCP inference server: the closest in-repo analog of the paper's
//! §VI online deployment (Fig. 7). Speaks newline-delimited JSON:
//! every request line is an [`rtp_sim::RtpQuery`], every response line
//! a [`ServeResponse`].
//!
//! # Concurrency model
//!
//! Two front ends feed one fixed pool of worker threads (`--workers
//! N`, `0` = all cores, the same std-thread scaffolding as
//! `rtp_tensor::parallel`):
//!
//! * **evented** (the default): one reactor thread multiplexes *every*
//!   client socket through a hand-rolled epoll readiness loop
//!   ([`crate::evented`]) — nonblocking accept, per-connection read
//!   buffers with partial-line preservation, idle reaping via a timer
//!   wheel — and hands connections with complete request lines to the
//!   pool. An idle connection costs an epoll registration, not a
//!   thread, so 10k open couriers are as cheap as 10.
//! * **threaded** (`--frontend threaded`): the legacy blocking
//!   acceptor that dispatches whole connections to the pool, one
//!   worker per live connection. Retained both as the fallback and as
//!   the in-process twin for byte-identity testing of the reactor.
//!
//! In both, each worker owns its **own** [`RtpService`] per shard —
//! one pooled no-grad tape per (worker, shard) lane — over shared
//! read-only `Arc<M2G4Rtp>`s, so inference never contends on a global
//! mutex and per-worker tape reuse cannot change numerics
//! (cleared-tape reuse is bit-identical to a fresh tape). Replies on
//! one connection keep request order under either front end: the
//! threaded path is sequential per connection, and the evented path
//! enforces a per-connection claim (at most one worker drains a
//! connection's line queue at a time).
//!
//! # Shard router (`--model [NAME=]PATH`, repeatable)
//!
//! `--model` may be given repeatedly as `NAME=PATH` pairs to serve a
//! fleet of per-city models from one process — the paper's §VI
//! deployment story. Each shard loads its own `Arc<M2G4Rtp>`, its own
//! inference-engine thread (when batching) and its own encoder cache.
//! Requests carry an optional `"city"` key naming the shard; requests
//! without one go to the **default shard** (the first `--model`), so
//! single-model clients are unaffected. An unknown `"city"` is an
//! error reply naming the hosted shards. Per-shard reply counters
//! (`serve.shard.<name>.requests` / `.errors`) land in the same
//! registry — and therefore in `{"cmd":"stats"}`, the Prometheus
//! exposition and `--metrics-file` — next to the server-wide counters.
//!
//! # Model hot-swap (`{"cmd":"reload"}`, SIGHUP)
//!
//! Each shard's model is behind a versioned `Arc`: a
//! `{"cmd":"reload","model":PATH[,"shard":NAME]}` control line loads
//! and validates a fresh SavedModel **off the hot path** (on the
//! worker that received the command), then performs a blue-green swap —
//! the shard's current `(version, Arc<M2G4Rtp>)` pair is replaced under
//! a mutex while every other worker keeps serving, and in-flight
//! requests finish on the weights they started with (their jobs carry
//! the old generation's `Arc`). Every ok prediction is tagged with the
//! `model_version` that produced it, so a client can watch the served
//! model advance. A server started with `--model` *paths* also installs
//! a SIGHUP handler: the signal re-reads every shard's original path
//! through the same swap (the classic config-reload idiom).
//!
//! Swap correctness around cached state:
//!
//! * encoder-cache entries are keyed by model version as well as
//!   courier + fingerprint; the swap drains the shard's cache (counted
//!   under `serve.cache.invalidations`), and a concurrent miss that
//!   raced the swap refuses to install its now-stale activations — no
//!   post-swap reply is ever computed from pre-swap encoder state;
//! * the inference engine batches only jobs of one model generation
//!   (a job from a newer generation closes the current batch and
//!   starts the next), and rebuilds its tape per generation;
//! * worker lanes rebuild their per-shard [`RtpService`] lazily on the
//!   first request that observes a newer version.
//!
//! A reload whose SavedModel mismatches the running shard (different
//! architecture dims, vocab sizes, missing pipeline, different weight
//! layout) is **rejected** with a structured error naming the first
//! mismatching field — the same loud-rejection policy as `--resume`
//! ([`m2g4rtp::SavedModel::validate_swap`]) — and counted under
//! `serve.reload.failures`; the running model is untouched. Successful
//! swaps count `serve.reload.count`, time themselves into
//! `serve.reload.duration_us`, and record a `reload` flight event.
//!
//! # Micro-batching & encoder cache (`--batch-max`, `--batch-window-us`)
//!
//! With `--batch-max N` (N > 1), workers stop running the encoders
//! themselves: each prediction request's graph is shipped to a single
//! **inference engine** thread, which collects jobs into a micro-batch
//! — waiting at most `--batch-window-us` after the first job, or until
//! `N` jobs are queued — runs **one** batched forward
//! ([`M2G4Rtp::predict_batch_encoded_into`]: per-sample rows stacked
//! through every encoder matmul), and demultiplexes replies to the
//! waiting workers over per-job channels. Stacking is bit-identical per
//! sample to the unbatched path (every batched op is row-local or runs
//! on a per-sample slice), so batching can change throughput but never
//! a reply byte.
//!
//! Each batched prediction also yields the sample's encoder activations,
//! which land in a per-courier **encoder cache** keyed by courier id and
//! fingerprinted by the full request line. A repeat query (same courier,
//! byte-identical line — i.e. identical route state) skips feature
//! extraction and the whole encoder stack: the worker replays the cached
//! activations through the decoders on its own tape
//! ([`M2G4Rtp::predict_encoded_into`]), again bit-identical to a cold
//! forward. Any change in the query line (an order served, the courier
//! moved, time advanced) misses the fingerprint and the fresh result
//! replaces the stale entry (`serve.cache.invalidations`).
//!
//! # Fault isolation & lifecycle
//!
//! * a per-connection I/O error (client reset, broken pipe) drops only
//!   that connection and increments `serve.conn_errors`;
//! * a panic inside request handling is caught (`catch_unwind` around
//!   [`handle_line`]), answers a best-effort error line, drops only
//!   that connection and increments `serve.panics`; the worker's tape
//!   mutex recovers by swapping in a fresh tape;
//! * a client idle longer than `--idle-timeout-secs` is reaped
//!   (`serve.timeouts`) — by the reactor's timer wheel on the evented
//!   front end, by a polling read timeout on the threaded one;
//! * an accepted connection that cannot be handed to the pool because
//!   the pool already drained (a shutdown race) is counted as
//!   `serve.dropped_accepts` and answered with a best-effort
//!   `shutting down` error line instead of vanishing silently;
//! * the self-connect poke that wakes a blocked front end at shutdown
//!   is structurally excluded from connection accounting (both front
//!   ends check the shutdown flag before dispatching an accepted
//!   socket), so `serve.connections` counts real clients only;
//! * shutdown is graceful: when `--max-requests` is reached or an
//!   in-band `{"cmd":"shutdown"}` arrives (only honoured with
//!   `--allow-shutdown`), the acceptor stops, in-flight requests
//!   complete, workers drain, and the telemetry summary is printed.
//!
//! # Telemetry
//!
//! Each server owns a private [`rtp_obs::Registry`] (so concurrent
//! servers in one process do not bleed into each other) recording:
//!
//! * `serve.requests` / `serve.errors` / `serve.stats` — reply
//!   counters (ok predictions, error replies, stats replies);
//! * `serve.unknown_cmds` — control lines whose `cmd` value is not a
//!   known command (counted here, **not** in `serve.errors`: a typo'd
//!   operator command is not a malformed client request);
//! * `serve.cache.hits` / `.misses` / `.invalidations` and the
//!   `serve.cache.hit_rate` gauge — encoder-cache effectiveness;
//! * `serve.batch_size` — jobs per batched forward histogram;
//! * `serve.connections` / `serve.conn_errors` / `serve.panics` /
//!   `serve.timeouts` / `serve.dropped_accepts` — connection
//!   lifecycle counters (real clients only; the shutdown poke is
//!   excluded by construction);
//! * `serve.shard.<name>.requests` / `serve.shard.<name>.errors` —
//!   per-shard reply counters, registered for every hosted shard;
//! * `serve.reload.count` / `.failures` and the
//!   `serve.reload.duration_us` histogram — hot-swap outcomes and
//!   load-validate-swap latency;
//! * `serve.trace_id_wraps` — how many times a long-lived connection
//!   exhausted a 2^20-request trace-id segment and rolled over into a
//!   fresh one (ids stay globally unique across the rollover);
//! * `serve.active_connections` — gauge of connections being handled;
//! * `serve.worker.<i>.requests` — replies written per worker;
//! * `serve.latency_us` — full-handle latency histogram. The timer
//!   starts before the request line is parsed and stops after the
//!   response body is serialized, and the **same** measurement becomes
//!   the response's `latency_ms` field, so the field and the histogram
//!   can never disagree;
//! * `serve.route_len` — orders-per-request histogram;
//! * `tensor.pool.hits` / `.misses` / `.hit_rate` — the inference
//!   tapes' buffer-pool stats summed across workers, refreshed after
//!   every prediction.
//!
//! An in-band `{"cmd":"stats"}` request line returns the registry
//! snapshot (merged with the process-global registry, which carries
//! the matmul-kernel counters) as one JSON line; on shutdown the
//! server prints served/error/connection counts and p50/p95/p99
//! latency.
//!
//! # Per-request tracing
//!
//! Every accepted connection mints a [`rtp_obs::TraceCtx`]; every
//! request line on it gets a u64 trace id (consecutive for pipelined
//! requests on one connection). Monotonic timestamps follow the
//! request through worker dispatch → batch-queue enqueue →
//! inference-engine flush → batched forward → demux → reply write, and
//! the resulting per-stage durations land in the
//! `serve.stage.{queue_wait,batch_form,forward,demux,write}_us`
//! histograms for **every** prediction (traced or not). A client that
//! sends `"trace": true` in its query additionally gets `trace_id` and
//! a `stages` breakdown echoed in the reply; with the trace fields
//! stripped, a traced reply is byte-identical to an untraced one.
//! Stages are disjoint sub-intervals of the handle window measured
//! with `saturating_duration_since`, so each duration is finite and
//! non-negative and their sum never exceeds `latency_ms`. The
//! breakdown's `write_us` covers reply construction (apply +
//! serialize); the `serve.stage.write_us` histogram additionally
//! includes the socket write, which a reply cannot observe about
//! itself.
//!
//! # Exporters
//!
//! `{"cmd":"metrics"}` returns the merged registry snapshot rendered
//! as Prometheus text exposition ([`rtp_obs::prom::render`]) inside a
//! one-line JSON envelope; `--metrics-file PATH` additionally writes
//! the same text to `PATH` every `--metrics-interval-secs S` (and once
//! at startup and shutdown) via `write_atomic`, so any scraper or
//! `watch cat` sees complete, valid exposition with zero deps.
//!
//! # Flight recorder
//!
//! The server enables [`rtp_obs::flight`]: request, error, span and
//! panic events (each carrying its trace id) go into fixed per-thread
//! rings. A worker or engine panic records a `panic` event and — with
//! `--flight-dump PATH` — dumps all rings as JSONL through
//! `write_atomic`, turning the catch_unwind sites into post-mortems;
//! `{"cmd":"dump"}` returns the same events in-band.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, SendError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use m2g4rtp::{EncodedQuery, M2G4Rtp, Prediction, SavedModel};

use crate::evented::{self, EvConn, EventSink};
use rtp_eval::service::{apply_prediction, RtpService};
use rtp_graph::MultiLevelGraph;
use rtp_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
use rtp_obs::{flight, StageBreakdown, TraceCtx};
use rtp_sim::{Dataset, RtpQuery};
use rtp_tensor::parallel::resolve_threads;
use rtp_tensor::Numerics;
use serde::{Deserialize, Serialize};

/// How often a blocked connection read wakes up to check the shutdown
/// flag and the idle deadline. Partial lines survive across polls (the
/// bytes stay in the `read_line` buffer).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One served prediction, mirroring the two application-layer products
/// (Intelligent Order Sorting and Minute-Level ETA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// Per-order ETA in minutes (aligned with the query's order index).
    pub eta_minutes: Vec<f32>,
    /// Server-side handling latency (parse → predict → serialize), ms.
    /// Identical to the sample recorded in the `serve.latency_us`
    /// histogram for this request.
    pub latency_ms: f64,
    /// Version of the shard model that produced this prediction
    /// (starts at 1; each successful hot-swap advances it by one).
    pub model_version: u64,
}

/// The serialized part of a response that the latency timer must cover;
/// `latency_ms` is spliced in afterwards (same field set as
/// [`ServeResponse`]).
#[derive(Debug, Serialize)]
struct ServeBody {
    sorted_orders: Vec<usize>,
    aoi_sequence: Vec<usize>,
    eta_minutes: Vec<f32>,
}

/// An error reply for malformed requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeError {
    /// What went wrong.
    pub error: String,
}

/// Known in-band control commands, for the unknown-command reply.
const KNOWN_CMDS: &str = "stats, metrics, dump, reload, shutdown, panic";

/// The reply to `{"cmd":"metrics"}`: the merged registry snapshot
/// rendered as Prometheus text exposition, in a one-line JSON envelope
/// so it rides the NDJSON protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Prometheus text exposition format (validates under
    /// [`rtp_obs::prom::validate`]).
    pub metrics: String,
}

/// Flattened percentile view of one histogram in a [`StatsReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Recorded samples.
    pub count: u64,
    /// Sum of raw values.
    pub sum: u64,
    /// Largest raw value.
    pub max: u64,
    /// Mean raw value.
    pub mean: f64,
    /// Quantized-exact percentiles (bucket floors, ≤1/16 resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramStats {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// The reply to `{"cmd":"stats"}`: a registry snapshot in NDJSON-
/// friendly form (one line, deserializable with the same vendored
/// serde the rest of the protocol uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name, flattened to percentiles.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl StatsReply {
    /// Flattens a merged registry snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        Self {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramStats::from_snapshot(h)))
                .collect(),
        }
    }
}

/// Which connection front end feeds the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontEnd {
    /// One epoll reactor thread multiplexes every socket
    /// ([`crate::evented`]); idle connections cost no threads.
    #[default]
    Evented,
    /// The legacy blocking acceptor: one pooled worker per live
    /// connection, polling reads. Kept as fallback and as the
    /// byte-identity twin for the reactor.
    Threaded,
}

impl std::fmt::Display for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrontEnd::Evented => "evented",
            FrontEnd::Threaded => "threaded",
        })
    }
}

/// Server configuration (`rtp serve` flags).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP port (0 = ephemeral).
    pub port: u16,
    /// Connection front end (`--frontend`): epoll reactor by default.
    pub frontend: FrontEnd,
    /// Total replies to send before shutting down (0 = forever).
    pub max_requests: usize,
    /// Worker-pool size (0 = all cores).
    pub workers: usize,
    /// Reap a connection after this long without a complete request
    /// line (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Honour in-band `{"cmd":"shutdown"}` (and the `{"cmd":"panic"}`
    /// fault-injection hook).
    pub allow_shutdown: bool,
    /// Micro-batch size cap. `<= 1` disables batching and the encoder
    /// cache entirely (the legacy per-worker path).
    pub batch_max: usize,
    /// How long the inference engine waits after a micro-batch's first
    /// job for more jobs to join it.
    pub batch_window: Duration,
    /// Numerics tier for the inference tapes (`--numerics`). Replies
    /// from non-default tiers are tagged with a `"numerics"` field so
    /// clients can tell approximate answers from bit-exact ones.
    pub numerics: Numerics,
    /// Write the merged registry as Prometheus text exposition to this
    /// path (atomically) every `metrics_interval`, plus once at startup
    /// and shutdown. `None` disables the writer.
    pub metrics_file: Option<String>,
    /// Snapshot period for `metrics_file` (zero = the 5 s default).
    pub metrics_interval: Duration,
    /// Dump the flight recorder as JSONL to this path when a worker or
    /// engine panic is caught. `None` keeps panics as counters only.
    pub flight_dump: Option<String>,
}

impl ServeOptions {
    /// Whether the batching engine (and with it the encoder cache) is
    /// active.
    fn batching(&self) -> bool {
        self.batch_max > 1
    }
}

/// The per-server metric handles (all on the server's own registry).
struct ServeMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    stats: Arc<Counter>,
    unknown_cmds: Arc<Counter>,
    connections: Arc<Counter>,
    conn_errors: Arc<Counter>,
    panics: Arc<Counter>,
    timeouts: Arc<Counter>,
    /// Accepted sockets the front end could not hand to the worker
    /// pool (drain race at shutdown): closed with a best-effort error
    /// line, never silently.
    dropped_accepts: Arc<Counter>,
    /// Trace-id segment rollovers across all connections (a connection
    /// pipelining more than 2^20 requests rolls into a fresh id
    /// segment instead of aliasing old ids).
    trace_id_wraps: Arc<Counter>,
    active_connections: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    route_len: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    cache_hit_rate: Arc<Gauge>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_hit_rate: Arc<Gauge>,
    /// Per-numerics-tier ok-prediction counters
    /// (`serve.requests.{exact,fast,quantized}`); all three are
    /// registered up front so the stats reply always carries the full
    /// tier breakdown.
    req_exact: Arc<Counter>,
    req_fast: Arc<Counter>,
    req_quantized: Arc<Counter>,
    /// Stage-latency histograms (`serve.stage.<name>_us`), indexed in
    /// [`StageBreakdown::NAMES`] order: queue_wait, batch_form,
    /// forward, demux, write. Recorded for every ok prediction.
    stages: [Arc<Histogram>; 5],
    /// Successful hot-swaps (`serve.reload.count`).
    reload_count: Arc<Counter>,
    /// Rejected or failed hot-swaps (`serve.reload.failures`); the
    /// running model is untouched on every one of these.
    reload_failures: Arc<Counter>,
    /// Load + validate + swap duration per successful reload
    /// (`serve.reload.duration_us`).
    reload_duration_us: Arc<Histogram>,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            stats: registry.counter("serve.stats"),
            unknown_cmds: registry.counter("serve.unknown_cmds"),
            connections: registry.counter("serve.connections"),
            conn_errors: registry.counter("serve.conn_errors"),
            panics: registry.counter("serve.panics"),
            timeouts: registry.counter("serve.timeouts"),
            dropped_accepts: registry.counter("serve.dropped_accepts"),
            trace_id_wraps: registry.counter("serve.trace_id_wraps"),
            active_connections: registry.gauge("serve.active_connections"),
            latency_us: registry.histogram("serve.latency_us"),
            route_len: registry.histogram("serve.route_len"),
            batch_size: registry.histogram("serve.batch_size"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_invalidations: registry.counter("serve.cache.invalidations"),
            cache_hit_rate: registry.gauge("serve.cache.hit_rate"),
            pool_hits: registry.gauge("tensor.pool.hits"),
            pool_misses: registry.gauge("tensor.pool.misses"),
            pool_hit_rate: registry.gauge("tensor.pool.hit_rate"),
            req_exact: registry.counter("serve.requests.exact"),
            req_fast: registry.counter("serve.requests.fast"),
            req_quantized: registry.counter("serve.requests.quantized"),
            stages: StageBreakdown::NAMES
                .map(|name| registry.histogram(&format!("serve.stage.{name}_us"))),
            reload_count: registry.counter("serve.reload.count"),
            reload_failures: registry.counter("serve.reload.failures"),
            reload_duration_us: registry.histogram("serve.reload.duration_us"),
        }
    }

    /// Records the four in-handler stages of one prediction (write is
    /// recorded separately, after the socket write it includes).
    fn record_stages(&self, s: &StageBreakdown) {
        self.stages[0].record(s.queue_wait_us);
        self.stages[1].record(s.batch_form_us);
        self.stages[2].record(s.forward_us);
        self.stages[3].record(s.demux_us);
    }
}

/// One resident entry of the per-courier encoder cache.
struct CacheEntry {
    /// The exact request line that produced this entry. Fingerprinting
    /// the whole line (rather than a digest of the route state) makes
    /// the invalidation rule trivially sound: *any* observable change —
    /// an order served, the courier moving, the clock advancing —
    /// changes the line, misses the cache, and replaces the entry.
    fingerprint: String,
    /// Model generation whose encoders produced `enc`. A lookup under
    /// a newer shard version must miss even on a byte-identical line:
    /// activations from swapped-out weights are never replayed.
    version: u64,
    /// The scaled multi-level graph (Feature Extraction Layer output).
    graph: MultiLevelGraph,
    /// The encoder activations to replay through the decoders.
    enc: EncodedQuery,
}

/// One unit of work for the inference engine: an already-built graph
/// plus the channel its prediction must come back on. If the engine
/// drops the sender without replying (batch forward panicked), the
/// waiting worker answers an internal-error line for just that request.
struct InferJob {
    graph: MultiLevelGraph,
    /// The model generation this job must run on. The engine batches
    /// only same-version jobs together and runs each batch on the
    /// job-carried model, so an in-flight request finishes on the
    /// weights it started with even if a swap lands mid-batch.
    version: u64,
    /// The generation's model (blue-green: the worker captured this
    /// `Arc` before the swap could drop it).
    model: Arc<M2G4Rtp>,
    /// Trace id of the request this job belongs to (flight-recorder
    /// attribution on an engine panic).
    trace_id: u64,
    /// When the owning worker enqueued the job (starts `queue_wait`).
    enqueued: Instant,
    reply: Sender<EngineReply>,
}

/// What the inference engine sends back per job: the prediction plus
/// the engine-side stage timings of this request's batch.
struct EngineReply {
    graph: MultiLevelGraph,
    prediction: Prediction,
    enc: EncodedQuery,
    /// Enqueue → engine dequeue of this job.
    queue_wait_us: u64,
    /// Dequeue → batch flush (waiting for the micro-batch to form).
    batch_form_us: u64,
    /// The batched forward.
    forward_us: u64,
    /// When the forward finished (starts `demux` on the worker side).
    finished: Instant,
}

/// One hosted model shard: its own read-only model, its own encoder
/// cache (batching only; per-shard because activations from different
/// models must never cross-pollinate) and its own reply counters.
/// Shard 0 is the **default shard**: requests without a `"city"` key
/// route to it, so a single-model server behaves exactly like the
/// pre-shard versions.
struct ShardState {
    name: String,
    /// The serving generation: `(version, model)` swapped as one unit
    /// under the mutex (blue-green — readers clone the `Arc` out and
    /// the old generation lives until its last in-flight request
    /// drops it).
    current: Mutex<(u64, Arc<M2G4Rtp>)>,
    /// Lock-free mirror of the current version for the staleness
    /// checks on the hot path (cache lookups, lane refresh). Stored
    /// *inside* the `current` critical section, so it never runs ahead
    /// of the model it describes.
    version: AtomicU64,
    /// The SavedModel path this shard was loaded from, when the caller
    /// had one (`rtp serve --model`); SIGHUP re-reads it through the
    /// same swap as the in-band `reload` verb.
    path: Option<String>,
    /// Per-courier encoder cache; `Some` iff batching is enabled.
    /// Concurrent misses for the same courier may both insert — that is
    /// a benign lost-update (same fingerprint + version ⇒ same bits),
    /// not an invalidation.
    cache: Option<Mutex<HashMap<usize, Arc<CacheEntry>>>>,
    /// `serve.shard.<name>.requests` — ok predictions served by this
    /// shard.
    requests: Arc<Counter>,
    /// `serve.shard.<name>.errors` — error replies attributed to this
    /// shard (routing resolved, prediction failed).
    errors: Arc<Counter>,
}

impl ShardState {
    fn new(spec: ShardSpec, registry: &Registry, batching: bool) -> Self {
        let ShardSpec { name, model, path } = spec;
        let requests = registry.counter(&format!("serve.shard.{name}.requests"));
        let errors = registry.counter(&format!("serve.shard.{name}.errors"));
        Self {
            name,
            current: Mutex::new((1, Arc::new(model))),
            version: AtomicU64::new(1),
            path,
            cache: batching.then(|| Mutex::new(HashMap::new())),
            requests,
            errors,
        }
    }

    /// The serving version, without touching the generation mutex.
    fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Clones out the current `(version, model)` pair as one unit.
    fn generation(&self) -> (u64, Arc<M2G4Rtp>) {
        let cur = self.current.lock().unwrap_or_else(|p| p.into_inner());
        (cur.0, Arc::clone(&cur.1))
    }
}

/// One model shard as handed to [`serve_sharded`]: a name, a loaded
/// model, and optionally the path it came from (which arms SIGHUP
/// reloads and path-less in-band reloads of the original file).
pub struct ShardSpec {
    /// Shard (city) name; requests route to it via their `"city"` key.
    pub name: String,
    /// The initial model generation (version 1).
    pub model: M2G4Rtp,
    /// Where `model` was loaded from, if anywhere.
    pub path: Option<String>,
}

impl ShardSpec {
    /// A shard with no backing file (in-process callers, tests).
    pub fn new(name: impl Into<String>, model: M2G4Rtp) -> Self {
        Self { name: name.into(), model, path: None }
    }

    /// A shard loaded from `path`; SIGHUP re-reads it.
    pub fn with_path(name: impl Into<String>, model: M2G4Rtp, path: impl Into<String>) -> Self {
        Self { name: name.into(), model, path: Some(path.into()) }
    }
}

/// State shared by the front end and every worker.
struct ServerShared {
    registry: Registry,
    metrics: ServeMetrics,
    /// Replies written so far (claim-based: a worker reserves a slot
    /// *before* answering, so exactly `max_requests` replies go out).
    served: AtomicUsize,
    /// Connections currently being handled (mirrored into the
    /// `serve.active_connections` gauge).
    active: AtomicI64,
    shutdown: AtomicBool,
    /// The listener's address, used to poke the blocking acceptor
    /// awake when shutdown is triggered from a worker.
    addr: SocketAddr,
    max_requests: usize,
    idle_timeout: Option<Duration>,
    allow_shutdown: bool,
    /// Tape buffer-pool totals summed across workers (each worker
    /// contributes deltas of its own service's stats).
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    /// The hosted model shards; index 0 is the default shard.
    shards: Vec<ShardState>,
    /// Where a caught panic dumps the flight recorder (`--flight-dump`).
    flight_dump: Option<String>,
}

impl ServerShared {
    fn new(
        registry: Registry,
        addr: SocketAddr,
        opts: &ServeOptions,
        shards: Vec<ShardState>,
    ) -> Self {
        let metrics = ServeMetrics::new(&registry);
        Self {
            registry,
            metrics,
            served: AtomicUsize::new(0),
            active: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            addr,
            max_requests: opts.max_requests,
            idle_timeout: opts.idle_timeout,
            allow_shutdown: opts.allow_shutdown,
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            shards,
            flight_dump: opts.flight_dump.clone(),
        }
    }

    /// The comma-separated shard-name list for routing-error messages.
    fn shard_names(&self) -> String {
        self.shards.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ")
    }

    /// Dumps the flight recorder to the `--flight-dump` path (no-op
    /// without one). Called from caught-panic sites, so the dump also
    /// flushes and fsyncs the span sink (S2: a `--log-json` file is
    /// complete at post-mortem time).
    fn dump_flight(&self) {
        if let Some(path) = &self.flight_dump {
            if let Err(e) = flight::dump_to_file(path) {
                eprintln!("flight dump to {path} failed: {e}");
            }
        }
    }

    /// Locks one shard's encoder cache (present iff batching is on),
    /// recovering from poisoning: cache entries are immutable once
    /// inserted (only whole-entry replacement), so a panicked holder
    /// cannot leave a half-written entry behind.
    fn lock_cache(
        &self,
        shard: usize,
    ) -> Option<std::sync::MutexGuard<'_, HashMap<usize, Arc<CacheEntry>>>> {
        self.shards[shard].cache.as_ref().map(|c| c.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Refreshes the `serve.cache.hit_rate` gauge from the counters.
    fn refresh_cache_rate(&self) {
        let h = self.metrics.cache_hits.get();
        let m = self.metrics.cache_misses.get();
        let total = h + m;
        self.metrics.cache_hit_rate.set(if total == 0 { 0.0 } else { h as f64 / total as f64 });
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and wakes the acceptor with a no-op
    /// connection so its blocking `accept` returns.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Reserves one reply slot. Returns `false` when the request budget
    /// is spent — the caller must close the connection unanswered. The
    /// claimer of the final slot triggers shutdown after replying.
    fn claim_reply(&self) -> bool {
        if self.max_requests == 0 {
            self.served.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        let n = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        if n > self.max_requests {
            self.served.fetch_sub(1, Ordering::SeqCst);
            self.trigger_shutdown();
            return false;
        }
        true
    }

    /// Called after a reply is written: the final budgeted reply shuts
    /// the server down.
    fn after_reply(&self) {
        if self.max_requests != 0 && self.served.load(Ordering::SeqCst) >= self.max_requests {
            self.trigger_shutdown();
        }
    }

    fn conn_started(&self) {
        self.metrics.connections.inc();
        let n = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.active_connections.set(n as f64);
    }

    fn conn_finished(&self) {
        let n = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.metrics.active_connections.set(n as f64);
    }

    /// Folds one worker's tape-pool delta (summed over its per-shard
    /// lanes) into the cross-worker totals and refreshes the gauges.
    /// `last` is the worker's previous reading; `saturating_sub`
    /// because tape poison-recovery (and a hot-swap lane rebuild)
    /// resets a lane's stats to zero.
    fn refresh_pool(&self, lanes: &[ShardLane], last: &Cell<(u64, u64)>) {
        let (mut hits, mut misses) = (0u64, 0u64);
        for lane in lanes {
            let (h, m) = lane.service.borrow().pool_stats();
            hits += h;
            misses += m;
        }
        let (lh, lm) = last.get();
        last.set((hits, misses));
        let h = self.pool_hits.fetch_add(hits.saturating_sub(lh), Ordering::Relaxed)
            + hits.saturating_sub(lh);
        let m = self.pool_misses.fetch_add(misses.saturating_sub(lm), Ordering::Relaxed)
            + misses.saturating_sub(lm);
        self.metrics.pool_hits.set(h as f64);
        self.metrics.pool_misses.set(m as f64);
        let total = h + m;
        self.metrics.pool_hit_rate.set(if total == 0 { 0.0 } else { h as f64 / total as f64 });
    }
}

/// One worker's private inference lane for one shard: its own
/// [`RtpService`] (pooled no-grad tape) over the shard's model, plus
/// the job channel into that shard's inference engine (batching only).
/// The service sits behind a `RefCell` so a hot-swap can rebuild it in
/// place; the lane is worker-thread-local, and every borrow drops
/// before the request's reply is written (so a caught panic cannot
/// leave a borrow flag set — guards unwind like any other local).
struct ShardLane {
    service: RefCell<RtpService>,
    /// Model generation the service was built over; compared against
    /// the shard's current version on every request.
    version: Cell<u64>,
    infer_tx: Option<Sender<InferJob>>,
}

/// One worker's view of the server: a private inference lane per shard
/// plus the shared state.
struct WorkerCtx<'a> {
    /// Indexed like `shared.shards`; lane 0 serves the default shard.
    lanes: Vec<ShardLane>,
    dataset: &'a Dataset,
    shared: &'a ServerShared,
    /// Numerics tier for lane (re)builds after a hot-swap.
    numerics: Numerics,
    /// Replies written by this worker (`serve.worker.<i>.requests`).
    replies: Arc<Counter>,
    /// Last `(hits, misses)` reading of this worker's tape pools,
    /// summed across lanes.
    pool_last: Cell<(u64, u64)>,
}

impl WorkerCtx<'_> {
    /// Builds one worker's lanes (a service per shard, each cloning
    /// that shard's engine sender).
    fn new<'a>(
        worker_id: usize,
        dataset: &'a Dataset,
        shared: &'a ServerShared,
        numerics: Numerics,
        job_txs: &[Option<Sender<InferJob>>],
    ) -> WorkerCtx<'a> {
        let lanes = shared
            .shards
            .iter()
            .zip(job_txs)
            .map(|(shard, tx)| {
                let (version, model) = shard.generation();
                ShardLane {
                    service: RefCell::new(RtpService::with_numerics(model, numerics)),
                    version: Cell::new(version),
                    infer_tx: tx.clone(),
                }
            })
            .collect();
        WorkerCtx {
            lanes,
            dataset,
            shared,
            numerics,
            replies: shared.registry.counter(&format!("serve.worker.{worker_id}.requests")),
            pool_last: Cell::new((0, 0)),
        }
    }

    /// Ensures this worker's lane for `shard_idx` serves the shard's
    /// current generation, rebuilding the lane's service after a
    /// hot-swap; returns the `(version, model)` pair the caller must
    /// predict with (and tag the reply with). The pair is captured
    /// atomically, so the tag always names the weights actually used —
    /// a swap landing a microsecond later leaves this request on the
    /// old generation, which is exactly blue-green semantics.
    fn refresh_lane(&self, shard_idx: usize) -> (u64, Arc<M2G4Rtp>) {
        let lane = &self.lanes[shard_idx];
        if lane.version.get() == self.shared.shards[shard_idx].version() {
            let model = Arc::clone(lane.service.borrow().model());
            return (lane.version.get(), model);
        }
        let (version, model) = self.shared.shards[shard_idx].generation();
        *lane.service.borrow_mut() = RtpService::with_numerics(Arc::clone(&model), self.numerics);
        lane.version.set(version);
        (version, model)
    }
}

/// One unit of worker-pool input, covering both front ends: a whole
/// connection to own until it closes (threaded), or an evented
/// connection whose queued lines are drained under its claim.
enum WorkItem {
    Conn(TcpStream, TraceCtx),
    Ev(Arc<EvConn>),
}

/// Hands an accepted connection to the worker pool. On a drain race —
/// the pool already exited and the channel is closed — the accepted
/// socket would otherwise vanish with no counter and no reply: count
/// it as `serve.dropped_accepts`, answer a best-effort error line, and
/// report `false` so the acceptor stops.
fn dispatch_accepted(tx: &Sender<WorkItem>, stream: TcpStream, shared: &ServerShared) -> bool {
    match tx.send(WorkItem::Conn(stream, TraceCtx::at_accept())) {
        Ok(()) => true,
        Err(SendError(item)) => {
            shared.metrics.dropped_accepts.inc();
            if let WorkItem::Conn(mut stream, _) = item {
                let _ = stream
                    .write_all(b"{\"error\":\"server shutting down: dropped before dispatch\"}\n");
            }
            false
        }
    }
}

/// The serve layer's hooks into the epoll reactor: lifecycle counting
/// plus the hand-off into the worker pool. Only real client
/// connections reach these callbacks — the reactor checks the shutdown
/// flag before registering an accepted socket, so the shutdown poke is
/// never counted and never mints a trace context, which is what lets
/// the exact-accounting tests assert `serve.connections == clients`.
struct EventedSink<'a> {
    shared: &'a ServerShared,
    tx: Sender<WorkItem>,
}

impl EventSink for EventedSink<'_> {
    fn shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    fn conn_opened(&self) {
        self.shared.conn_started();
    }

    fn conn_closed(&self) {
        self.shared.conn_finished();
    }

    fn conn_error(&self) {
        self.shared.metrics.conn_errors.inc();
    }

    fn conn_timeout(&self) {
        self.shared.metrics.timeouts.inc();
    }

    fn dropped_dispatch(&self) {
        self.shared.metrics.dropped_accepts.inc();
    }

    fn dispatch(&self, conn: Arc<EvConn>) -> bool {
        self.tx.send(WorkItem::Ev(conn)).is_ok()
    }
}

/// Binds a listener, prints `listening on <addr>` to `out`, and serves
/// a single (default) shard with a fixed worker pool until the request
/// budget is spent or an in-band shutdown arrives. Each connection may
/// pipeline many request lines. On exit, drains in-flight connections
/// and prints a telemetry summary.
pub fn serve(
    model: M2G4Rtp,
    dataset: Dataset,
    opts: ServeOptions,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    serve_sharded(vec![ShardSpec::new("default", model)], dataset, opts, out)
}

/// The multi-shard entry point behind repeatable `--model`: hosts one
/// model per [`ShardSpec`], routes request lines by their optional
/// `"city"` key (absent ⇒ the first shard), and gives every shard its
/// own inference engine and encoder cache. All shards share the worker
/// pool, the connection front end and the telemetry registry. When any
/// spec carries a path, SIGHUP re-reads every path-ful shard's file
/// through the hot-swap machinery.
pub fn serve_sharded(
    models: Vec<ShardSpec>,
    dataset: Dataset,
    opts: ServeOptions,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    assert!(!models.is_empty(), "serve_sharded needs at least one model shard");
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let workers = resolve_threads(opts.workers).max(1);
    writeln!(out, "listening on {addr}")?;
    writeln!(out, "workers: {workers}")?;
    out.flush()?;

    if models.len() > 1 {
        let names = models.iter().map(|s| s.name.as_str()).collect::<Vec<_>>().join(", ");
        writeln!(out, "shards: {names}")?;
        out.flush()?;
    }
    if opts.batching() {
        writeln!(
            out,
            "batching: max {} / window {} us",
            opts.batch_max,
            opts.batch_window.as_micros()
        )?;
        out.flush()?;
    }

    // The flight recorder stays on for the server's lifetime: request,
    // error, span and panic events accumulate in per-thread rings so a
    // caught panic (or {"cmd":"dump"}) has history to show.
    flight::set_enabled(true);

    let registry = Registry::new();
    let shards: Vec<ShardState> =
        models.into_iter().map(|spec| ShardState::new(spec, &registry, opts.batching())).collect();
    let shared = ServerShared::new(registry, addr, &opts, shards);

    // One job channel per shard into that shard's inference engine
    // (batching only). The original senders are dropped after the
    // workers clone theirs, so each engine's `recv` fails — and the
    // engine exits — exactly when the last worker has exited.
    let mut job_txs: Vec<Option<Sender<InferJob>>> = Vec::new();
    let mut job_rxs: Vec<Option<Receiver<InferJob>>> = Vec::new();
    for _ in &shared.shards {
        if opts.batching() {
            let (tx, rx) = channel::<InferJob>();
            job_txs.push(Some(tx));
            job_rxs.push(Some(rx));
        } else {
            job_txs.push(None);
            job_rxs.push(None);
        }
    }

    // Parked pipelining connections (see the worker-pool comment
    // below); lives outside the scope so scoped workers can borrow it.
    let overflow: Mutex<VecDeque<Arc<EvConn>>> = Mutex::new(VecDeque::new());
    let overflow = &overflow;
    let frontend_result = std::thread::scope(|scope| {
        for (shard, rx) in shared.shards.iter().zip(job_rxs) {
            let Some(rx) = rx else { continue };
            let shared = &shared;
            let window = opts.batch_window;
            let batch_max = opts.batch_max;
            let numerics = opts.numerics;
            scope.spawn(move || {
                run_inference_engine(shard, rx, window, batch_max, numerics, shared)
            });
        }

        // The worker pool: one channel of WorkItems serves both front
        // ends. std's Receiver is single-consumer; workers share it
        // behind a mutex, each holding it only for one bounded `recv`.
        //
        // Next to the channel sits the overflow queue: a pipelining
        // connection that exhausts its drain quantum is parked here
        // (claim and queued lines travelling with it) instead of
        // pinning its worker. Workers serve fresh channel work first —
        // an operator's `reload` or `stats` line must never wait tens
        // of seconds behind a busy pipeliner — and pick parked
        // connections back up whenever the channel goes quiet. Workers
        // hold no clone of `tx` (that would keep the channel open and
        // deadlock the drop-the-sender shutdown), which is exactly why
        // the park space is a plain deque and not the channel itself.
        let (tx, rx) = channel::<WorkItem>();
        let rx = Arc::new(Mutex::new(rx));
        for worker_id in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = &shared;
            let dataset = &dataset;
            let numerics = opts.numerics;
            // Each worker clones the per-shard engine senders, so the
            // originals can drop below and tie engine lifetime to the
            // workers'.
            let worker_job_txs: Vec<Option<Sender<InferJob>>> = job_txs.to_vec();
            scope.spawn(move || {
                let ctx = WorkerCtx::new(worker_id, dataset, shared, numerics, &worker_job_txs);
                enum Next {
                    Item(WorkItem),
                    Empty,
                    Closed,
                }
                let recv_next = |blocking: bool| match rx.lock() {
                    Ok(guard) if blocking => match guard.recv_timeout(POLL_INTERVAL) {
                        Ok(item) => Next::Item(item),
                        Err(RecvTimeoutError::Timeout) => Next::Empty,
                        Err(RecvTimeoutError::Disconnected) => Next::Closed,
                    },
                    Ok(guard) => match guard.try_recv() {
                        Ok(item) => Next::Item(item),
                        Err(TryRecvError::Empty) => Next::Empty,
                        Err(TryRecvError::Disconnected) => Next::Closed,
                    },
                    Err(_) => Next::Closed,
                };
                let run_item = |item: WorkItem| match item {
                    WorkItem::Conn(stream, trace) => {
                        shared.conn_started();
                        let result = handle_connection(&ctx, stream, trace);
                        shared.conn_finished();
                        if result.is_err() {
                            shared.metrics.conn_errors.inc();
                        }
                    }
                    WorkItem::Ev(conn) => drain_evented_conn(&ctx, &conn, overflow),
                };
                let next_parked = || overflow.lock().unwrap_or_else(|p| p.into_inner()).pop_front();
                loop {
                    // Fresh channel work first: new connections and
                    // operator lines take priority over parked
                    // pipeliners (whose clients already have a full
                    // quantum of replies to chew on).
                    match recv_next(false) {
                        Next::Item(item) => {
                            run_item(item);
                            continue;
                        }
                        Next::Closed => break,
                        Next::Empty => {}
                    }
                    // Channel quiet: give a parked connection its turn.
                    if let Some(conn) = next_parked() {
                        drain_evented_conn(&ctx, &conn, overflow);
                        continue;
                    }
                    // Idle: block until work arrives or the front end
                    // drops the sender (shutdown + queue drained). The
                    // timeout only re-checks the overflow queue, in
                    // case another worker parked a connection mid-wait.
                    match recv_next(true) {
                        Next::Item(item) => run_item(item),
                        Next::Closed => break,
                        Next::Empty => {}
                    }
                }
                // Channel closed: serve out parked connections before
                // exiting — their claims travelled here, so no other
                // dispatch path will ever pick them up.
                while let Some(conn) = next_parked() {
                    drain_evented_conn(&ctx, &conn, overflow);
                }
            });
        }
        drop(job_txs);

        // SIGHUP watcher: only armed when some shard knows its backing
        // file. The signal handler itself just bumps a counter; this
        // thread notices the bump and re-reads every path-ful shard
        // through the same swap path as the in-band `reload` verb.
        // Path-less servers (tests, in-process callers) never install
        // the handler, so SIGHUP keeps its default disposition there.
        if shared.shards.iter().any(|s| s.path.is_some()) {
            evented::install_sighup_handler();
            let shared = &shared;
            scope.spawn(move || {
                let mut seen = evented::sighup_count();
                while !shared.shutting_down() {
                    std::thread::sleep(POLL_INTERVAL);
                    let now = evented::sighup_count();
                    if now == seen {
                        continue;
                    }
                    seen = now;
                    for idx in 0..shared.shards.len() {
                        let shard = &shared.shards[idx];
                        let Some(path) = shard.path.clone() else { continue };
                        match reload_shard(shared, idx, &path, 0) {
                            Ok(version) => eprintln!(
                                "SIGHUP: shard {} reloaded from {path} (model_version {version})",
                                shard.name
                            ),
                            Err(e) => eprintln!("SIGHUP: shard {} reload failed: {e}", shard.name),
                        }
                    }
                }
            });
        }

        // Periodic Prometheus snapshot writer (--metrics-file). Sleeps
        // in POLL_INTERVAL slices so shutdown is honoured promptly; the
        // final (post-drain) snapshot is written by serve() itself
        // after the scope joins every worker.
        if let Some(path) = opts.metrics_file.clone() {
            let shared = &shared;
            let interval = if opts.metrics_interval.is_zero() {
                Duration::from_secs(5)
            } else {
                opts.metrics_interval
            };
            scope.spawn(move || loop {
                write_metrics_file(&path, shared);
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if shared.shutting_down() {
                        return;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            });
        }

        let result = match opts.frontend {
            FrontEnd::Evented => {
                // The reactor runs on this thread (where the blocking
                // acceptor used to live) and owns `tx` through the
                // sink; returning drops it, which drains the workers.
                let sink = EventedSink { shared: &shared, tx };
                evented::run(&listener, opts.idle_timeout, &sink)
            }
            FrontEnd::Threaded => {
                // Legacy acceptor: dispatch whole connections until
                // shutdown. The shutdown poke is consumed by the flag
                // check before dispatch, so it is never counted.
                for stream in listener.incoming() {
                    if shared.shutting_down() {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if !dispatch_accepted(&tx, s, &shared) {
                                break;
                            }
                        }
                        Err(_) => shared.metrics.conn_errors.inc(),
                    }
                }
                // Closing the channel lets idle workers exit; busy
                // workers finish their in-flight connections (drain).
                drop(tx);
                Ok(())
            }
        };
        // A reactor-fatal error must still release the snapshot-writer
        // thread (it polls the shutdown flag) so the scope can join.
        if result.is_err() {
            shared.shutdown.store(true, Ordering::SeqCst);
        }
        result
    });
    frontend_result?;

    // Graceful-shutdown durability (S2): everything traced so far is
    // flushed and fsynced, and the exported snapshot reflects the full
    // run including the final drained requests.
    rtp_obs::trace::flush();
    if let Some(path) = &opts.metrics_file {
        write_metrics_file(path, &shared);
    }

    let m = &shared.metrics;
    let served = shared.served.load(Ordering::SeqCst);
    writeln!(
        out,
        "served {served} request(s): {} ok, {} error(s), {} stats",
        m.requests.get(),
        m.errors.get(),
        m.stats.get()
    )?;
    if shared.shards.len() > 1 {
        for s in &shared.shards {
            writeln!(
                out,
                "shard {}: {} ok, {} error(s)",
                s.name,
                s.requests.get(),
                s.errors.get()
            )?;
        }
    }
    writeln!(
        out,
        "connections: {} handled, {} conn error(s), {} panic(s), {} timeout(s)",
        m.connections.get(),
        m.conn_errors.get(),
        m.panics.get(),
        m.timeouts.get()
    )?;
    if m.dropped_accepts.get() > 0 {
        writeln!(out, "dropped accepts: {}", m.dropped_accepts.get())?;
    }
    let snap = shared.registry.snapshot();
    let ms = |v: u64| v as f64 / 1000.0;
    if let Some(lat) = snap.histograms.get("serve.latency_us").filter(|l| l.count() > 0) {
        writeln!(
            out,
            "latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            ms(lat.percentile(0.50)),
            ms(lat.percentile(0.95)),
            ms(lat.percentile(0.99)),
            ms(lat.max())
        )?;
    }
    Ok(0)
}

/// The server registry merged with the process-global one (which
/// carries the matmul-kernel counters and training gauges) — the same
/// view `{"cmd":"stats"}`, `{"cmd":"metrics"}` and the snapshot writer
/// all export.
fn merged_snapshot(shared: &ServerShared) -> Snapshot {
    let mut snap = shared.registry.snapshot();
    snap.merge(&rtp_obs::metrics::global().snapshot());
    snap
}

/// Writes the merged snapshot to `path` as Prometheus text exposition,
/// atomically — a scraper never sees a half-written file.
fn write_metrics_file(path: &str, shared: &ServerShared) {
    let text = rtp_obs::prom::render(&merged_snapshot(shared));
    if let Err(e) = rtp_obs::fsio::write_atomic_str(std::path::Path::new(path), &text) {
        eprintln!("metrics snapshot to {path} failed: {e}");
    }
}

/// Hot-swaps one shard's model from a SavedModel file: load and parse
/// off the hot path, validate against the running generation with the
/// loud-rejection policy ([`SavedModel::validate_swap`]), then swap the
/// `(version, Arc)` pair and drain the shard's encoder cache so no
/// post-swap reply can replay pre-swap activations. Returns the new
/// version; on any error the running model is untouched and
/// `serve.reload.failures` counts the attempt.
fn reload_shard(
    shared: &ServerShared,
    shard_idx: usize,
    path: &str,
    trace_id: u64,
) -> Result<u64, String> {
    let shard = &shared.shards[shard_idx];
    let t0 = Instant::now();
    let loaded = (|| {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reload rejected: cannot read model file `{path}`: {e}"))?;
        let saved: SavedModel = serde_json::from_str(&text)
            .map_err(|e| format!("reload rejected: `{path}` is not a SavedModel: {e}"))?;
        // Validate against the running generation *before* the
        // panicking weight restore in from_saved can run.
        let (_, current) = shard.generation();
        saved
            .validate_swap(&current)
            .map_err(|e| format!("reload rejected for shard `{}`: {e}", shard.name))?;
        Ok::<Arc<M2G4Rtp>, String>(Arc::new(M2G4Rtp::from_saved(saved)))
    })();
    let model = match loaded {
        Ok(model) => model,
        Err(e) => {
            shared.metrics.reload_failures.inc();
            flight::record(flight::Kind::Reload, "serve.reload", trace_id, || {
                format!("shard {} reload failed: {e}", shard.name)
            });
            return Err(e);
        }
    };
    // The swap: version mirror updated inside the critical section so
    // a hot-path staleness check can never observe a version ahead of
    // the model it describes.
    let version = {
        let mut cur = shard.current.lock().unwrap_or_else(|p| p.into_inner());
        let version = cur.0 + 1;
        *cur = (version, model);
        shard.version.store(version, Ordering::SeqCst);
        version
    };
    // Drain the shard's encoder cache *after* the version advanced:
    // entries are version-keyed, so anything a racing miss re-inserts
    // under the old version is refused at insert time, and lookups
    // under the new version miss stale entries regardless.
    if let Some(cache) = &shard.cache {
        let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
        let stale = cache.len() as u64;
        cache.clear();
        drop(cache);
        if stale > 0 {
            shared.metrics.cache_invalidations.add(stale);
            shared.refresh_cache_rate();
        }
    }
    let took_us = t0.elapsed().as_micros() as u64;
    shared.metrics.reload_count.inc();
    shared.metrics.reload_duration_us.record(took_us);
    flight::record(flight::Kind::Reload, "serve.reload", trace_id, || {
        format!(
            "shard {} swapped to model_version {version} from {path} in {took_us} us",
            shard.name
        )
    });
    Ok(version)
}

/// One shard's inference engine: collects [`InferJob`]s into
/// micro-batches and runs one batched forward per batch on its own
/// pooled no-grad tape over the batch's model generation. With
/// multiple shards, one engine thread runs per shard — batches never
/// mix models, and after a hot-swap batches never mix *generations*
/// either: a job carrying a different version than the forming batch
/// closes the batch and leads the next one, each batch runs on the
/// exact `Arc` its jobs captured, and the engine's tape is rebuilt per
/// generation.
///
/// Batch formation: block for the first job, then keep accepting jobs
/// until `batch_max` are queued, `window` has elapsed since the first
/// job arrived, or a job of another generation shows up. A panic
/// inside the batch forward is caught — the tape is dropped (its pool
/// state is arbitrary mid-panic) and the batch's reply senders are
/// dropped, so each waiting worker answers an internal-error line for
/// its own request; the engine keeps serving.
///
/// Exits when every worker's job sender for this shard is gone.
fn run_inference_engine(
    shard: &ShardState,
    jobs: Receiver<InferJob>,
    window: Duration,
    batch_max: usize,
    numerics: Numerics,
    shared: &ServerShared,
) {
    // The engine's tape, tagged with the generation it was built for;
    // `None` after a caught panic or before the first batch.
    let mut tape: Option<(u64, rtp_tensor::Tape)> = None;
    // A job that arrived mid-batch but belongs to a newer generation:
    // it leads the next batch instead of joining this one.
    let mut carried: Option<InferJob> = None;
    loop {
        let first = match carried.take() {
            Some(job) => job,
            None => match jobs.recv() {
                Ok(job) => job,
                Err(_) => return,
            },
        };
        // Per-job dequeue times: job i's queue_wait ends (and its
        // batch_form begins) the moment the engine receives it.
        let mut recvs = vec![Instant::now()];
        let deadline = recvs[0] + window;
        let mut batch = vec![first];
        while batch.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => {
                    if job.version != batch[0].version {
                        carried = Some(job);
                        break;
                    }
                    batch.push(job);
                    recvs.push(Instant::now());
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        shared.metrics.batch_size.record(batch.len() as u64);
        let flushed = Instant::now();
        let model = Arc::clone(&batch[0].model);
        let version = batch[0].version;
        let mut run_tape = match tape.take() {
            Some((v, t)) if v == version => t,
            _ => model.inference_tape(numerics),
        };
        let graphs: Vec<&MultiLevelGraph> = batch.iter().map(|j| &j.graph).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            model.predict_batch_encoded_into(&mut run_tape, &graphs)
        }));
        drop(graphs);
        let finished = Instant::now();
        let forward_us = finished.saturating_duration_since(flushed).as_micros() as u64;
        match result {
            Ok(preds) => {
                tape = Some((version, run_tape));
                for ((job, recv), (pred, enc)) in batch.into_iter().zip(recvs).zip(preds) {
                    let InferJob { graph, enqueued, reply, .. } = job;
                    // A send error only means the worker gave up on the
                    // connection; nothing to do.
                    let _ = reply.send(EngineReply {
                        graph,
                        prediction: pred,
                        enc,
                        queue_wait_us: recv.saturating_duration_since(enqueued).as_micros() as u64,
                        batch_form_us: flushed.saturating_duration_since(recv).as_micros() as u64,
                        forward_us,
                        finished,
                    });
                }
            }
            Err(_) => {
                shared.metrics.panics.inc();
                let size = batch.len();
                for job in &batch {
                    flight::record(flight::Kind::Panic, "serve.engine", job.trace_id, || {
                        format!("batched forward panicked (batch of {size}, shard {})", shard.name)
                    });
                }
                shared.dump_flight();
                // The panicked tape's pool state is arbitrary: drop it
                // and rebuild lazily for the next batch. Dropping
                // `batch` drops every reply sender; each waiting worker
                // sees RecvError and answers an error line for its own
                // request only.
                drop(run_tape);
            }
        }
    }
}

/// Reads one request line, polling so the shutdown flag and the idle
/// deadline are honoured even while blocked. Partial lines accumulate
/// in `buf` across polls (and across an actual mid-line stall).
enum LineRead {
    /// A complete (or final unterminated) line is in the buffer.
    Line,
    /// Clean end of stream, idle reap, or shutdown — close quietly.
    Close,
}

fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shared: &ServerShared,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut last_progress = Instant::now();
    loop {
        let len_before = buf.len();
        match reader.read_line(buf) {
            Ok(0) => {
                // EOF; any bytes from an earlier partial read are a
                // final unterminated line.
                return Ok(if buf.is_empty() { LineRead::Close } else { LineRead::Line });
            }
            Ok(_) => return Ok(LineRead::Line),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.len() > len_before {
                    last_progress = Instant::now();
                }
                if shared.shutting_down() {
                    return Ok(LineRead::Close);
                }
                if let Some(idle) = shared.idle_timeout {
                    if last_progress.elapsed() >= idle {
                        shared.metrics.timeouts.inc();
                        return Ok(LineRead::Close);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one connection on a worker thread. Returns `Err` only for
/// real I/O failures (client reset, broken pipe) — the caller counts
/// those as `serve.conn_errors`; everything else (EOF, idle reap,
/// budget exhaustion, handler panic) closes the connection cleanly.
fn handle_connection(
    ctx: &WorkerCtx<'_>,
    stream: TcpStream,
    mut trace: TraceCtx,
) -> std::io::Result<()> {
    // The polling read timeout doubles as the shutdown-responsiveness
    // bound; `read_request_line` keeps partial lines across polls.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // NDJSON replies are small; without this, Nagle + delayed ACK adds
    // ~40 ms per round trip on a pipelining client.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        match read_request_line(&mut reader, &mut buf, ctx.shared)? {
            LineRead::Close => return Ok(()),
            LineRead::Line => {}
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        if !ctx.shared.claim_reply() {
            return Ok(()); // budget spent — close unanswered
        }
        let trace_id = next_trace_id(ctx.shared, &mut trace);
        // Fault isolation: a panic anywhere in parse/predict/serialize
        // must not unwind through the worker loop. The worker's tape
        // mutex is poison-recovered by RtpService on the next request.
        let reply = catch_unwind(AssertUnwindSafe(|| handle_line(ctx, line, trace_id)));
        match reply {
            Ok(Reply::Line(mut body, stages)) => {
                body.push('\n');
                // Count before the write lands: a client must never
                // observe a reply whose counters haven't settled (the
                // stats request relies on exact accounting).
                ctx.replies.inc();
                let wire_t0 = Instant::now();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                // The write-stage histogram covers serialization plus
                // the socket write; the echoed breakdown stops at
                // serialization (it is part of the written bytes).
                if let Some(ser_us) = stages {
                    let wire_us = wire_t0.elapsed().as_micros() as u64;
                    ctx.shared.metrics.stages[4].record(ser_us + wire_us);
                }
                ctx.shared.after_reply();
            }
            Ok(Reply::ShutdownAck(mut body)) => {
                body.push('\n');
                ctx.replies.inc();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                ctx.shared.trigger_shutdown();
                return Ok(());
            }
            Err(_) => {
                ctx.shared.metrics.panics.inc();
                flight::record(flight::Kind::Panic, "serve.worker", trace_id, || {
                    format!("request handler panicked on line of {} byte(s)", line.len())
                });
                ctx.shared.dump_flight();
                let mut err = serde_json::to_string(&ServeError {
                    error: "internal error: request handler panicked; connection closed".into(),
                })
                .expect("serialise error");
                err.push('\n');
                // Best effort — the client may already be gone.
                let _ = writer.write_all(err.as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

/// Mints the next trace id on a connection, surfacing a sequence
/// rollover (a fresh globally-unique id segment after 2^20 requests)
/// as `serve.trace_id_wraps`.
fn next_trace_id(shared: &ServerShared, trace: &mut TraceCtx) -> u64 {
    let before = trace.rollovers();
    let id = trace.next_request();
    if trace.rollovers() > before {
        shared.metrics.trace_id_wraps.inc();
    }
    id
}

/// Lines served per claim before a still-busy connection is parked on
/// the overflow queue. A closed-loop pipelining client can land its
/// next line faster than the worker's post-reply `pop_line`, so an
/// unbounded drain pins the worker to one connection for as long as
/// the client keeps winning that race — with a small pool every other
/// queued connection starves, most visibly an operator's `reload`
/// line (observed waiting ~20 s behind four busy bench clients).
const DRAIN_QUANTUM: usize = 8;

/// Drains one evented connection's queued request lines under its
/// claim (the reactor dispatched it because its queue went non-empty;
/// no other worker touches it until the claim is released by the final
/// `pop_line` or kept through [`EvConn::yield_claim`] at the end of a
/// quantum). Replies are written directly to the shared nonblocking
/// socket; a close is signalled back to the reactor via the dead flag
/// plus socket shutdown, never by dropping the fd out from under it.
fn drain_evented_conn(
    ctx: &WorkerCtx<'_>,
    conn: &Arc<EvConn>,
    overflow: &Mutex<VecDeque<Arc<EvConn>>>,
) {
    let mut served = 0usize;
    while let Some(line) = conn.pop_line() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !ctx.shared.claim_reply() {
            conn.close(); // budget spent — close unanswered
            return;
        }
        let trace_id = {
            let mut trace = conn.trace.lock().unwrap_or_else(|p| p.into_inner());
            next_trace_id(ctx.shared, &mut trace)
        };
        // Fault isolation: a panic anywhere in parse/predict/serialize
        // must not unwind through the worker loop (the lane's tape
        // mutex is poison-recovered by RtpService on the next request).
        let reply = catch_unwind(AssertUnwindSafe(|| handle_line(ctx, line, trace_id)));
        match reply {
            Ok(Reply::Line(mut body, stages)) => {
                body.push('\n');
                // Count before the write lands: a client must never
                // observe a reply whose counters haven't settled.
                ctx.replies.inc();
                let wire_t0 = Instant::now();
                if conn.write_reply(body.as_bytes()).is_err() {
                    ctx.shared.metrics.conn_errors.inc();
                    conn.close();
                    ctx.shared.after_reply();
                    return;
                }
                if let Some(ser_us) = stages {
                    let wire_us = wire_t0.elapsed().as_micros() as u64;
                    ctx.shared.metrics.stages[4].record(ser_us + wire_us);
                }
                ctx.shared.after_reply();
            }
            Ok(Reply::ShutdownAck(mut body)) => {
                body.push('\n');
                ctx.replies.inc();
                let _ = conn.write_reply(body.as_bytes());
                conn.close();
                ctx.shared.trigger_shutdown();
                return;
            }
            Err(_) => {
                ctx.shared.metrics.panics.inc();
                flight::record(flight::Kind::Panic, "serve.worker", trace_id, || {
                    format!("request handler panicked on line of {} byte(s)", line.len())
                });
                ctx.shared.dump_flight();
                let mut err = serde_json::to_string(&ServeError {
                    error: "internal error: request handler panicked; connection closed".into(),
                })
                .expect("serialise error");
                err.push('\n');
                // Best effort — the client may already be gone.
                let _ = conn.write_reply(err.as_bytes());
                conn.close();
                return;
            }
        }
        served += 1;
        if served == DRAIN_QUANTUM {
            if conn.yield_claim() {
                // Still busy: park it (the claim and any queued lines
                // travel with the connection) and take other work first.
                overflow.lock().unwrap_or_else(|p| p.into_inner()).push_back(Arc::clone(conn));
            }
            return;
        }
    }
}

/// A reply line, plus whether it also requests server shutdown. An ok
/// prediction carries `Some(serialization_us)` so the connection loop
/// can fold the socket write into the `serve.stage.write_us` sample.
enum Reply {
    Line(String, Option<u64>),
    ShutdownAck(String),
}

/// Produces the reply for one request line, recording telemetry.
fn handle_line(ctx: &WorkerCtx<'_>, line: &str, trace_id: u64) -> Reply {
    let shared = ctx.shared;
    let metrics = &shared.metrics;
    let err_line = |msg: String| {
        metrics.errors.inc();
        flight::record(flight::Kind::Error, "serve.error", trace_id, || msg.clone());
        Reply::Line(
            serde_json::to_string(&ServeError { error: msg }).expect("serialise error"),
            None,
        )
    };
    let t0 = Instant::now();
    // Parse once, classify structurally: any object carrying a `cmd`
    // key is a control request — full stop. This closes the old
    // misclassification hole where an unknown `{"cmd":"…"}` value (or a
    // line shaped like both a command and a query) fell through to the
    // prediction/parse-error path and came back as `bad request`.
    let value = match serde_json::from_str::<serde::Value>(line) {
        Ok(v) => v,
        Err(e) => return err_line(format!("bad request: {e}")),
    };
    if let Some(cmd) = value.get("cmd") {
        // Unknown commands get their own named reply and counter:
        // a typo'd operator command is not a malformed client request,
        // so it must not pollute `serve.errors`.
        let unknown_cmd = |msg: String| {
            metrics.unknown_cmds.inc();
            Reply::Line(
                serde_json::to_string(&ServeError { error: msg }).expect("serialise error"),
                None,
            )
        };
        return match cmd.as_str() {
            Some("stats") => {
                metrics.stats.inc();
                shared.refresh_pool(&ctx.lanes, &ctx.pool_last);
                // The global registry carries process-wide metrics
                // (matmul kernel counters, training gauges); merging
                // demonstrates snapshot associativity in anger.
                let snap = merged_snapshot(shared);
                Reply::Line(
                    serde_json::to_string(&StatsReply::from_snapshot(&snap))
                        .expect("serialise stats"),
                    None,
                )
            }
            Some("metrics") => {
                metrics.stats.inc();
                shared.refresh_pool(&ctx.lanes, &ctx.pool_last);
                let text = rtp_obs::prom::render(&merged_snapshot(shared));
                Reply::Line(
                    serde_json::to_string(&MetricsReply { metrics: text })
                        .expect("serialise metrics"),
                    None,
                )
            }
            Some("dump") => {
                metrics.stats.inc();
                // The flight events carry their own JSON (obs stays
                // zero-dep, so they don't derive the vendored serde);
                // join them into one {"events":[...]} line.
                let mut body = String::from("{\"events\":[");
                for (i, event) in flight::snapshot().iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&event.to_json_line());
                }
                body.push_str("]}");
                Reply::Line(body, None)
            }
            Some("reload") => {
                let Some(path) = value.get("model").and_then(|v| v.as_str()) else {
                    return err_line(
                        "reload needs a `model` key naming a SavedModel path".to_string(),
                    );
                };
                let shard_idx = match value.get("shard") {
                    None => 0,
                    Some(serde::Value::Str(name)) => {
                        match shared.shards.iter().position(|s| s.name == *name) {
                            Some(i) => i,
                            None => {
                                return err_line(format!(
                                    "unknown shard `{name}`: this server hosts {}",
                                    shared.shard_names()
                                ))
                            }
                        }
                    }
                    Some(_) => {
                        return err_line("bad request: `shard` must be a string shard name".into())
                    }
                };
                match reload_shard(shared, shard_idx, path, trace_id) {
                    Ok(version) => {
                        // A reload ack is an operator reply, like stats.
                        metrics.stats.inc();
                        Reply::Line(
                            format!(
                                "{{\"reloaded\":\"{}\",\"model_version\":{version}}}",
                                shared.shards[shard_idx].name
                            ),
                            None,
                        )
                    }
                    Err(e) => err_line(e),
                }
            }
            Some("shutdown") if shared.allow_shutdown => {
                metrics.stats.inc();
                Reply::ShutdownAck(
                    "{\"ok\":\"shutting down: draining in-flight connections\"}".to_string(),
                )
            }
            Some("shutdown") => {
                err_line("shutdown disabled: start the server with --allow-shutdown".into())
            }
            // Fault-injection hook for the isolation tests; rides the
            // same opt-in flag as shutdown.
            Some("panic") if shared.allow_shutdown => panic!("induced panic via control command"),
            Some(other) => {
                unknown_cmd(format!("unknown command `{other}`: known commands are {KNOWN_CMDS}"))
            }
            None => unknown_cmd(format!(
                "unknown command: `cmd` must be a string naming one of {KNOWN_CMDS}"
            )),
        };
    }
    // Shard routing: an optional `"city"` key names the model shard;
    // absent means the default shard (index 0), so legacy single-model
    // clients see the exact pre-shard behaviour. Routing resolves
    // before query parsing so an unknown city is reported as such even
    // if the rest of the line is also malformed.
    let shard_idx = match value.get("city") {
        None => 0,
        Some(serde::Value::Str(name)) => match shared.shards.iter().position(|s| s.name == *name) {
            Some(i) => i,
            None => {
                return err_line(format!(
                    "unknown city `{name}`: this server hosts {}",
                    shared.shard_names()
                ))
            }
        },
        Some(_) => return err_line("bad request: `city` must be a string shard name".into()),
    };
    let shard = &shared.shards[shard_idx];
    // Post-routing errors are attributed to the shard as well as the
    // server-wide counter.
    let shard_err = |msg: String| {
        shard.errors.inc();
        err_line(msg)
    };
    match RtpQuery::from_value(&value) {
        Err(e) => shard_err(format!("bad request: {e}")),
        Ok(query) if query.orders.is_empty() => shard_err("bad request: empty order set".into()),
        Ok(query) => {
            // A wrong courier must be an error, not a silent
            // courier-0 prediction served as success.
            let Some(courier) = ctx.dataset.couriers.get(query.courier_id) else {
                return shard_err(format!(
                    "unknown courier_id {} (dataset has {} couriers)",
                    query.courier_id,
                    ctx.dataset.couriers.len()
                ));
            };
            let (prediction, mut stages, model_version) =
                match predict_query(ctx, shard_idx, line, courier, &query, trace_id) {
                    Ok(p) => p,
                    Err(e) => return shard_err(e),
                };
            let pred_done = Instant::now();
            let app = match apply_prediction(&query, &prediction) {
                Ok(app) => app,
                Err(e) => return shard_err(format!("internal error: {e}")),
            };
            let body = serde_json::to_string(&ServeBody {
                eta_minutes: app.etas.iter().map(|e| e.eta_minutes).collect(),
                sorted_orders: app.sorted_orders,
                aoi_sequence: app.aoi_sequence,
            })
            .expect("serialise response");
            // The write stage (as echoed) is reply construction: apply
            // + serialize. The socket write is folded into the
            // histogram sample by the connection loop afterwards.
            let ser_us = pred_done.elapsed().as_micros() as u64;
            stages.write_us = ser_us;
            // The full handle — parse, predict, serialize — measured
            // once: the histogram sample and the latency_ms field are
            // the same number by construction. Every stage is a
            // disjoint sub-interval of this window, so the breakdown
            // sums to ≤ latency_us.
            let latency_us = (t0.elapsed().as_micros() as u64).max(1);
            metrics.latency_us.record(latency_us);
            metrics.route_len.record(query.orders.len() as u64);
            metrics.requests.inc();
            shard.requests.inc();
            metrics.record_stages(&stages);
            let numerics = ctx.lanes[shard_idx].service.borrow().numerics();
            match numerics {
                Numerics::Exact => metrics.req_exact.inc(),
                Numerics::Fast => metrics.req_fast.inc(),
                Numerics::Quantized => metrics.req_quantized.inc(),
            }
            flight::record(flight::Kind::Request, "serve.request", trace_id, || {
                format!(
                    "courier={} orders={} shard={} latency_us={latency_us}",
                    query.courier_id,
                    query.orders.len(),
                    shard.name
                )
            });
            shared.refresh_pool(&ctx.lanes, &ctx.pool_last);
            let latency_ms = latency_us as f64 / 1000.0;
            // A client that sent "trace": true gets the id and the
            // stage breakdown echoed (plus the serving shard on a
            // multi-shard server); otherwise the reply bytes are
            // exactly the untraced shape.
            let traced = matches!(value.get("trace"), Some(serde::Value::Bool(true)));
            let trace_tag = if traced {
                let shard_tag = if shared.shards.len() > 1 {
                    format!(",\"shard\":\"{}\"", shard.name)
                } else {
                    String::new()
                };
                format!(",\"trace_id\":{trace_id}{shard_tag},\"stages\":{}", stages.to_json())
            } else {
                String::new()
            };
            // Splice latency and the serving model version into the
            // serialized body ({"a":.. -> {"latency_ms":X,
            // "model_version":V,"a":..): field order is free in JSON.
            // Non-default numerics tiers also tag the reply so a client
            // can tell approximate answers apart.
            match numerics {
                Numerics::Exact => Reply::Line(
                    format!(
                        "{{\"latency_ms\":{latency_ms},\"model_version\":{model_version}\
                         {trace_tag},{}",
                        &body[1..]
                    ),
                    Some(ser_us),
                ),
                tier => Reply::Line(
                    format!(
                        "{{\"latency_ms\":{latency_ms},\"model_version\":{model_version},\
                         \"numerics\":\"{tier}\"{trace_tag},{}",
                        &body[1..]
                    ),
                    Some(ser_us),
                ),
            }
        }
    }
}

/// The Inference (+ Feature Extraction) Layer for one query, routed by
/// serve mode:
///
/// * batching off — the worker's own lane end to end (graph build +
///   full forward on its pooled tape);
/// * batching on, cache hit (same courier, byte-identical line) — the
///   worker replays the cached encoder activations through the
///   decoders on its own tape; no graph build, no encoder forward;
/// * batching on, cache miss — the worker builds the graph, ships it
///   to the inference engine, blocks on its reply channel, and installs
///   the returned activations in the cache (replacing a stale entry
///   counts as `serve.cache.invalidations`).
///
/// All three routes produce bit-identical predictions; see the module
/// docs.
///
/// Alongside the prediction, returns the request's [`StageBreakdown`]
/// with everything but `write_us` filled in: the single-thread routes
/// (unbatched, cache hit) have `queue_wait == batch_form == demux == 0`
/// and `forward` covering the local forward; the batched route carries
/// the engine-stamped queue/batch/forward durations plus the demux
/// latency back to this worker.
fn predict_query(
    ctx: &WorkerCtx<'_>,
    shard_idx: usize,
    line: &str,
    courier: &rtp_sim::Courier,
    query: &RtpQuery,
    trace_id: u64,
) -> Result<(Prediction, StageBreakdown, u64), String> {
    let shared = ctx.shared;
    let metrics = &shared.metrics;
    // Rebuild this worker's lane first if a hot-swap advanced the
    // shard; `version`/`model` are the generation every byte of this
    // reply is computed from (and tagged with).
    let (version, model) = ctx.refresh_lane(shard_idx);
    let lane = &ctx.lanes[shard_idx];
    let mut stages = StageBreakdown::default();
    let Some(infer_tx) = &lane.infer_tx else {
        let service = lane.service.borrow();
        let graph = service.build_graph(&ctx.dataset.city, courier, query);
        let t0 = Instant::now();
        let prediction = service.predict(&graph);
        stages.forward_us = t0.elapsed().as_micros() as u64;
        return Ok((prediction, stages, version));
    };
    // A cache entry is valid only when both the request line *and* the
    // model generation match: a byte-identical line after a swap must
    // miss, or the reply would replay swapped-out encoder activations.
    let cached = shared
        .lock_cache(shard_idx)
        .expect("batching implies a cache")
        .get(&query.courier_id)
        .filter(|e| e.fingerprint == line && e.version == version)
        .cloned();
    if let Some(entry) = cached {
        metrics.cache_hits.inc();
        shared.refresh_cache_rate();
        let t0 = Instant::now();
        let prediction = lane.service.borrow().predict_encoded(&entry.graph, &entry.enc);
        stages.forward_us = t0.elapsed().as_micros() as u64;
        return Ok((prediction, stages, version));
    }
    metrics.cache_misses.inc();
    shared.refresh_cache_rate();
    let graph = lane.service.borrow().build_graph(&ctx.dataset.city, courier, query);
    let (reply_tx, reply_rx) = channel();
    infer_tx
        .send(InferJob {
            graph,
            version,
            model,
            trace_id,
            enqueued: Instant::now(),
            reply: reply_tx,
        })
        .map_err(|_| "internal error: inference engine unavailable".to_string())?;
    let engine_reply = reply_rx
        .recv()
        .map_err(|_| "internal error: batched inference failed for this request".to_string())?;
    let EngineReply { graph, prediction, enc, queue_wait_us, batch_form_us, forward_us, finished } =
        engine_reply;
    stages.queue_wait_us = queue_wait_us;
    stages.batch_form_us = batch_form_us;
    stages.forward_us = forward_us;
    stages.demux_us = finished.elapsed().as_micros() as u64;
    // Install the activations — unless a swap advanced the shard while
    // this request was in flight, in which case they are already stale
    // and must not land (a later lookup filters on version anyway, but
    // refusing the insert keeps the cache free of dead weight).
    if shared.shards[shard_idx].version() == version {
        let entry = Arc::new(CacheEntry { fingerprint: line.to_string(), version, graph, enc });
        let mut cache = shared.lock_cache(shard_idx).expect("batching implies a cache");
        if let Some(old) = cache.insert(query.courier_id, entry) {
            // Same-fingerprint same-version replacement is a
            // concurrent-miss race, not a route-state change.
            if old.fingerprint != line || old.version != version {
                metrics.cache_invalidations.inc();
            }
        }
    }
    Ok((prediction, stages, version))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_shared() -> (TcpListener, ServerShared) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shared = ServerShared::new(Registry::new(), addr, &ServeOptions::default(), Vec::new());
        (listener, shared)
    }

    #[test]
    fn drain_race_counts_dropped_accepts_and_answers_best_effort() {
        let (listener, shared) = bare_shared();
        let addr = shared.addr;
        // A channel whose receiver is already gone models the worker
        // pool having drained between accept and dispatch.
        let (tx, rx) = channel::<WorkItem>();
        drop(rx);
        let mut client = TcpStream::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        assert!(!dispatch_accepted(&tx, accepted, &shared), "drain race must stop the acceptor");
        assert_eq!(shared.metrics.dropped_accepts.get(), 1, "dropped accept must be counted");
        assert_eq!(shared.metrics.connections.get(), 0, "never dispatched, never a connection");
        // The client gets a best-effort explanation, then EOF.
        let mut reply = String::new();
        use std::io::Read as _;
        client.read_to_string(&mut reply).expect("read reply");
        assert!(reply.contains("shutting down"), "best-effort error line, got: {reply:?}");
    }

    #[test]
    fn evented_dispatch_drain_race_counts_dropped_accepts() {
        let (listener, shared) = bare_shared();
        let addr = shared.addr;
        let (tx, rx) = channel::<WorkItem>();
        drop(rx);
        let sink = EventedSink { shared: &shared, tx };
        let _client = TcpStream::connect(addr).expect("connect");
        let (accepted, _) = listener.accept().expect("accept");
        let conn = Arc::new(EvConn::for_test(accepted));
        assert!(!sink.dispatch(Arc::clone(&conn)), "drained pool refuses dispatch");
        // The reactor's queue_lines reacts to a failed dispatch by
        // counting and closing; mirror that protocol here.
        sink.dropped_dispatch();
        conn.close();
        assert_eq!(shared.metrics.dropped_accepts.get(), 1);
        assert!(conn.is_dead());
    }

    #[test]
    fn trace_id_wrap_rolls_to_fresh_segment_and_counts() {
        let (_listener, shared) = bare_shared();
        let mut trace = TraceCtx::at_accept();
        let first = next_trace_id(&shared, &mut trace);
        // Exhaust the remainder of the segment: a segment spans seq
        // 1..=2^20-1, so after `first` there are 2^20 - 2 ids left.
        let seq_span = 1u64 << rtp_obs::SEQ_BITS;
        let mut last = first;
        for _ in 2..seq_span {
            last = next_trace_id(&shared, &mut trace);
        }
        assert_eq!(shared.metrics.trace_id_wraps.get(), 0, "still inside the first segment");
        assert_eq!(last, first + seq_span - 2, "consecutive ids within the segment");
        let rolled = next_trace_id(&shared, &mut trace);
        assert_eq!(shared.metrics.trace_id_wraps.get(), 1, "rollover must be surfaced");
        assert_ne!(rolled, first, "request 2^20+1 must not alias request 1");
        assert!(rolled >> rtp_obs::SEQ_BITS > first >> rtp_obs::SEQ_BITS, "fresh segment");
    }
}
