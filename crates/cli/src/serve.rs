//! The TCP inference server: the closest in-repo analog of the paper's
//! §VI online deployment (Fig. 7). Speaks newline-delimited JSON:
//! every request line is an [`rtp_sim::RtpQuery`], every response line
//! a [`ServeResponse`].
//!
//! # Concurrency model
//!
//! A fixed pool of worker threads (`--workers N`, `0` = all cores, the
//! same std-thread scaffolding as `rtp_tensor::parallel`) accepts many
//! simultaneous connections. The acceptor thread hands each connection
//! to the pool over an mpsc channel; each worker owns its **own**
//! [`RtpService`] — one pooled no-grad tape per worker — over one
//! shared read-only `Arc<M2G4Rtp>`, so inference never contends on a
//! global mutex and per-worker tape reuse cannot change numerics
//! (cleared-tape reuse is bit-identical to a fresh tape).
//!
//! # Fault isolation & lifecycle
//!
//! * a per-connection I/O error (client reset, broken pipe) drops only
//!   that connection and increments `serve.conn_errors`;
//! * a panic inside request handling is caught (`catch_unwind` around
//!   [`handle_line`]), answers a best-effort error line, drops only
//!   that connection and increments `serve.panics`; the worker's tape
//!   mutex recovers by swapping in a fresh tape;
//! * a client idle longer than `--idle-timeout-secs` is reaped
//!   (`serve.timeouts`), via a polling read timeout on the socket;
//! * shutdown is graceful: when `--max-requests` is reached or an
//!   in-band `{"cmd":"shutdown"}` arrives (only honoured with
//!   `--allow-shutdown`), the acceptor stops, in-flight requests
//!   complete, workers drain, and the telemetry summary is printed.
//!
//! # Telemetry
//!
//! Each server owns a private [`rtp_obs::Registry`] (so concurrent
//! servers in one process do not bleed into each other) recording:
//!
//! * `serve.requests` / `serve.errors` / `serve.stats` — reply
//!   counters (ok predictions, error replies, stats replies);
//! * `serve.connections` / `serve.conn_errors` / `serve.panics` /
//!   `serve.timeouts` — connection lifecycle counters;
//! * `serve.active_connections` — gauge of connections being handled;
//! * `serve.worker.<i>.requests` — replies written per worker;
//! * `serve.latency_us` — full-handle latency histogram. The timer
//!   starts before the request line is parsed and stops after the
//!   response body is serialized, and the **same** measurement becomes
//!   the response's `latency_ms` field, so the field and the histogram
//!   can never disagree;
//! * `serve.route_len` — orders-per-request histogram;
//! * `tensor.pool.hits` / `.misses` / `.hit_rate` — the inference
//!   tapes' buffer-pool stats summed across workers, refreshed after
//!   every prediction.
//!
//! An in-band `{"cmd":"stats"}` request line returns the registry
//! snapshot (merged with the process-global registry, which carries
//! the matmul-kernel counters) as one JSON line; on shutdown the
//! server prints served/error/connection counts and p50/p95/p99
//! latency.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use m2g4rtp::M2G4Rtp;
use rtp_eval::service::RtpService;
use rtp_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
use rtp_sim::{Dataset, RtpQuery};
use rtp_tensor::parallel::resolve_threads;
use serde::{Deserialize, Serialize};

/// How often a blocked connection read wakes up to check the shutdown
/// flag and the idle deadline. Partial lines survive across polls (the
/// bytes stay in the `read_line` buffer).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One served prediction, mirroring the two application-layer products
/// (Intelligent Order Sorting and Minute-Level ETA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// Per-order ETA in minutes (aligned with the query's order index).
    pub eta_minutes: Vec<f32>,
    /// Server-side handling latency (parse → predict → serialize), ms.
    /// Identical to the sample recorded in the `serve.latency_us`
    /// histogram for this request.
    pub latency_ms: f64,
}

/// The serialized part of a response that the latency timer must cover;
/// `latency_ms` is spliced in afterwards (same field set as
/// [`ServeResponse`]).
#[derive(Debug, Serialize)]
struct ServeBody {
    sorted_orders: Vec<usize>,
    aoi_sequence: Vec<usize>,
    eta_minutes: Vec<f32>,
}

/// An error reply for malformed requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeError {
    /// What went wrong.
    pub error: String,
}

/// An in-band control request (`{"cmd":"stats"}`, `{"cmd":"shutdown"}`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ControlCmd {
    cmd: String,
}

/// Flattened percentile view of one histogram in a [`StatsReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Recorded samples.
    pub count: u64,
    /// Sum of raw values.
    pub sum: u64,
    /// Largest raw value.
    pub max: u64,
    /// Mean raw value.
    pub mean: f64,
    /// Quantized-exact percentiles (bucket floors, ≤1/16 resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramStats {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// The reply to `{"cmd":"stats"}`: a registry snapshot in NDJSON-
/// friendly form (one line, deserializable with the same vendored
/// serde the rest of the protocol uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name, flattened to percentiles.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl StatsReply {
    /// Flattens a merged registry snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        Self {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramStats::from_snapshot(h)))
                .collect(),
        }
    }
}

/// Server configuration (`rtp serve` flags).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP port (0 = ephemeral).
    pub port: u16,
    /// Total replies to send before shutting down (0 = forever).
    pub max_requests: usize,
    /// Worker-pool size (0 = all cores).
    pub workers: usize,
    /// Reap a connection after this long without a complete request
    /// line (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Honour in-band `{"cmd":"shutdown"}` (and the `{"cmd":"panic"}`
    /// fault-injection hook).
    pub allow_shutdown: bool,
}

/// The per-server metric handles (all on the server's own registry).
struct ServeMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    stats: Arc<Counter>,
    connections: Arc<Counter>,
    conn_errors: Arc<Counter>,
    panics: Arc<Counter>,
    timeouts: Arc<Counter>,
    active_connections: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    route_len: Arc<Histogram>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_hit_rate: Arc<Gauge>,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            stats: registry.counter("serve.stats"),
            connections: registry.counter("serve.connections"),
            conn_errors: registry.counter("serve.conn_errors"),
            panics: registry.counter("serve.panics"),
            timeouts: registry.counter("serve.timeouts"),
            active_connections: registry.gauge("serve.active_connections"),
            latency_us: registry.histogram("serve.latency_us"),
            route_len: registry.histogram("serve.route_len"),
            pool_hits: registry.gauge("tensor.pool.hits"),
            pool_misses: registry.gauge("tensor.pool.misses"),
            pool_hit_rate: registry.gauge("tensor.pool.hit_rate"),
        }
    }
}

/// State shared by the acceptor and every worker.
struct ServerShared {
    registry: Registry,
    metrics: ServeMetrics,
    /// Replies written so far (claim-based: a worker reserves a slot
    /// *before* answering, so exactly `max_requests` replies go out).
    served: AtomicUsize,
    /// Connections currently being handled (mirrored into the
    /// `serve.active_connections` gauge).
    active: AtomicI64,
    shutdown: AtomicBool,
    /// The listener's address, used to poke the blocking acceptor
    /// awake when shutdown is triggered from a worker.
    addr: SocketAddr,
    max_requests: usize,
    idle_timeout: Option<Duration>,
    allow_shutdown: bool,
    /// Tape buffer-pool totals summed across workers (each worker
    /// contributes deltas of its own service's stats).
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
}

impl ServerShared {
    fn new(registry: Registry, addr: SocketAddr, opts: &ServeOptions) -> Self {
        let metrics = ServeMetrics::new(&registry);
        Self {
            registry,
            metrics,
            served: AtomicUsize::new(0),
            active: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            addr,
            max_requests: opts.max_requests,
            idle_timeout: opts.idle_timeout,
            allow_shutdown: opts.allow_shutdown,
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and wakes the acceptor with a no-op
    /// connection so its blocking `accept` returns.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Reserves one reply slot. Returns `false` when the request budget
    /// is spent — the caller must close the connection unanswered. The
    /// claimer of the final slot triggers shutdown after replying.
    fn claim_reply(&self) -> bool {
        if self.max_requests == 0 {
            self.served.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        let n = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        if n > self.max_requests {
            self.served.fetch_sub(1, Ordering::SeqCst);
            self.trigger_shutdown();
            return false;
        }
        true
    }

    /// Called after a reply is written: the final budgeted reply shuts
    /// the server down.
    fn after_reply(&self) {
        if self.max_requests != 0 && self.served.load(Ordering::SeqCst) >= self.max_requests {
            self.trigger_shutdown();
        }
    }

    fn conn_started(&self) {
        self.metrics.connections.inc();
        let n = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.active_connections.set(n as f64);
    }

    fn conn_finished(&self) {
        let n = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.metrics.active_connections.set(n as f64);
    }

    /// Folds one worker's tape-pool delta into the cross-worker totals
    /// and refreshes the gauges. `last` is the worker's previous
    /// reading; `saturating_sub` because tape poison-recovery resets a
    /// worker's stats to zero.
    fn refresh_pool(&self, service: &RtpService, last: &Cell<(u64, u64)>) {
        let (hits, misses) = service.pool_stats();
        let (lh, lm) = last.get();
        last.set((hits, misses));
        let h = self.pool_hits.fetch_add(hits.saturating_sub(lh), Ordering::Relaxed)
            + hits.saturating_sub(lh);
        let m = self.pool_misses.fetch_add(misses.saturating_sub(lm), Ordering::Relaxed)
            + misses.saturating_sub(lm);
        self.metrics.pool_hits.set(h as f64);
        self.metrics.pool_misses.set(m as f64);
        let total = h + m;
        self.metrics.pool_hit_rate.set(if total == 0 { 0.0 } else { h as f64 / total as f64 });
    }
}

/// One worker's view of the server: its private inference lane plus
/// the shared state.
struct WorkerCtx<'a> {
    service: RtpService,
    dataset: &'a Dataset,
    shared: &'a ServerShared,
    /// Replies written by this worker (`serve.worker.<i>.requests`).
    replies: Arc<Counter>,
    /// Last `(hits, misses)` reading of this worker's tape pool.
    pool_last: Cell<(u64, u64)>,
}

/// Binds a listener, prints `listening on <addr>` to `out`, and serves
/// with a fixed worker pool until the request budget is spent or an
/// in-band shutdown arrives. Each connection may pipeline many request
/// lines. On exit, drains in-flight connections and prints a telemetry
/// summary (request/error/connection counts, latency percentiles).
pub fn serve(
    model: M2G4Rtp,
    dataset: Dataset,
    opts: ServeOptions,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let workers = resolve_threads(opts.workers).max(1);
    writeln!(out, "listening on {addr}")?;
    writeln!(out, "workers: {workers}")?;
    out.flush()?;

    let model = Arc::new(model);
    let shared = ServerShared::new(Registry::new(), addr, &opts);
    let (tx, rx) = channel::<TcpStream>();
    // std's Receiver is single-consumer; workers share it behind a
    // mutex, each holding it only for one blocking `recv`.
    let rx = Arc::new(Mutex::new(rx));

    std::thread::scope(|scope| {
        for worker_id in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = &shared;
            let dataset = &dataset;
            let service = RtpService::shared(Arc::clone(&model));
            scope.spawn(move || {
                let ctx = WorkerCtx {
                    service,
                    dataset,
                    shared,
                    replies: shared.registry.counter(&format!("serve.worker.{worker_id}.requests")),
                    pool_last: Cell::new((0, 0)),
                };
                loop {
                    // Blocks until a connection arrives or the acceptor
                    // drops the sender (shutdown + queue drained).
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    let Ok(stream) = next else { break };
                    shared.conn_started();
                    let result = handle_connection(&ctx, stream);
                    shared.conn_finished();
                    if result.is_err() {
                        shared.metrics.conn_errors.inc();
                    }
                }
            });
        }

        // Acceptor: dispatch until shutdown. The shutdown poke is
        // itself a connection, consumed by the flag check.
        for stream in listener.incoming() {
            if shared.shutting_down() {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
                Err(_) => shared.metrics.conn_errors.inc(),
            }
        }
        // Closing the channel lets idle workers exit; busy workers
        // finish their in-flight connections first (drain).
        drop(tx);
    });

    let m = &shared.metrics;
    let served = shared.served.load(Ordering::SeqCst);
    writeln!(
        out,
        "served {served} request(s): {} ok, {} error(s), {} stats",
        m.requests.get(),
        m.errors.get(),
        m.stats.get()
    )?;
    writeln!(
        out,
        "connections: {} handled, {} conn error(s), {} panic(s), {} timeout(s)",
        m.connections.get(),
        m.conn_errors.get(),
        m.panics.get(),
        m.timeouts.get()
    )?;
    let snap = shared.registry.snapshot();
    let ms = |v: u64| v as f64 / 1000.0;
    if let Some(lat) = snap.histograms.get("serve.latency_us").filter(|l| l.count() > 0) {
        writeln!(
            out,
            "latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            ms(lat.percentile(0.50)),
            ms(lat.percentile(0.95)),
            ms(lat.percentile(0.99)),
            ms(lat.max())
        )?;
    }
    Ok(0)
}

/// Reads one request line, polling so the shutdown flag and the idle
/// deadline are honoured even while blocked. Partial lines accumulate
/// in `buf` across polls (and across an actual mid-line stall).
enum LineRead {
    /// A complete (or final unterminated) line is in the buffer.
    Line,
    /// Clean end of stream, idle reap, or shutdown — close quietly.
    Close,
}

fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shared: &ServerShared,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut last_progress = Instant::now();
    loop {
        let len_before = buf.len();
        match reader.read_line(buf) {
            Ok(0) => {
                // EOF; any bytes from an earlier partial read are a
                // final unterminated line.
                return Ok(if buf.is_empty() { LineRead::Close } else { LineRead::Line });
            }
            Ok(_) => return Ok(LineRead::Line),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.len() > len_before {
                    last_progress = Instant::now();
                }
                if shared.shutting_down() {
                    return Ok(LineRead::Close);
                }
                if let Some(idle) = shared.idle_timeout {
                    if last_progress.elapsed() >= idle {
                        shared.metrics.timeouts.inc();
                        return Ok(LineRead::Close);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one connection on a worker thread. Returns `Err` only for
/// real I/O failures (client reset, broken pipe) — the caller counts
/// those as `serve.conn_errors`; everything else (EOF, idle reap,
/// budget exhaustion, handler panic) closes the connection cleanly.
fn handle_connection(ctx: &WorkerCtx<'_>, stream: TcpStream) -> std::io::Result<()> {
    // The polling read timeout doubles as the shutdown-responsiveness
    // bound; `read_request_line` keeps partial lines across polls.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // NDJSON replies are small; without this, Nagle + delayed ACK adds
    // ~40 ms per round trip on a pipelining client.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        match read_request_line(&mut reader, &mut buf, ctx.shared)? {
            LineRead::Close => return Ok(()),
            LineRead::Line => {}
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        if !ctx.shared.claim_reply() {
            return Ok(()); // budget spent — close unanswered
        }
        // Fault isolation: a panic anywhere in parse/predict/serialize
        // must not unwind through the worker loop. The worker's tape
        // mutex is poison-recovered by RtpService on the next request.
        let reply = catch_unwind(AssertUnwindSafe(|| handle_line(ctx, line)));
        match reply {
            Ok(Reply::Line(mut body)) => {
                body.push('\n');
                // Count before the write lands: a client must never
                // observe a reply whose counters haven't settled (the
                // stats request relies on exact accounting).
                ctx.replies.inc();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                ctx.shared.after_reply();
            }
            Ok(Reply::ShutdownAck(mut body)) => {
                body.push('\n');
                ctx.replies.inc();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                ctx.shared.trigger_shutdown();
                return Ok(());
            }
            Err(_) => {
                ctx.shared.metrics.panics.inc();
                let mut err = serde_json::to_string(&ServeError {
                    error: "internal error: request handler panicked; connection closed".into(),
                })
                .expect("serialise error");
                err.push('\n');
                // Best effort — the client may already be gone.
                let _ = writer.write_all(err.as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

/// A reply line, plus whether it also requests server shutdown.
enum Reply {
    Line(String),
    ShutdownAck(String),
}

/// Produces the reply for one request line, recording telemetry.
fn handle_line(ctx: &WorkerCtx<'_>, line: &str) -> Reply {
    let shared = ctx.shared;
    let metrics = &shared.metrics;
    let err_line = |msg: String| {
        metrics.errors.inc();
        Reply::Line(serde_json::to_string(&ServeError { error: msg }).expect("serialise error"))
    };
    let t0 = Instant::now();
    // Control plane: `{"cmd":...}` (an RtpQuery has no `cmd` key).
    if let Ok(ctl) = serde_json::from_str::<ControlCmd>(line) {
        return match ctl.cmd.as_str() {
            "stats" => {
                metrics.stats.inc();
                shared.refresh_pool(&ctx.service, &ctx.pool_last);
                let mut snap = shared.registry.snapshot();
                // The global registry carries process-wide metrics
                // (matmul kernel counters, training gauges); merging
                // demonstrates snapshot associativity in anger.
                snap.merge(&rtp_obs::metrics::global().snapshot());
                Reply::Line(
                    serde_json::to_string(&StatsReply::from_snapshot(&snap))
                        .expect("serialise stats"),
                )
            }
            "shutdown" if shared.allow_shutdown => {
                metrics.stats.inc();
                Reply::ShutdownAck(
                    "{\"ok\":\"shutting down: draining in-flight connections\"}".to_string(),
                )
            }
            "shutdown" => {
                err_line("shutdown disabled: start the server with --allow-shutdown".into())
            }
            // Fault-injection hook for the isolation tests; rides the
            // same opt-in flag as shutdown.
            "panic" if shared.allow_shutdown => panic!("induced panic via control command"),
            other => err_line(format!("unknown cmd `{other}`")),
        };
    }
    match serde_json::from_str::<RtpQuery>(line) {
        Err(e) => err_line(format!("bad request: {e}")),
        Ok(query) if query.orders.is_empty() => err_line("bad request: empty order set".into()),
        Ok(query) => {
            // A wrong courier must be an error, not a silent
            // courier-0 prediction served as success.
            let Some(courier) = ctx.dataset.couriers.get(query.courier_id) else {
                return err_line(format!(
                    "unknown courier_id {} (dataset has {} couriers)",
                    query.courier_id,
                    ctx.dataset.couriers.len()
                ));
            };
            let resp = ctx.service.handle(&ctx.dataset.city, courier, &query);
            let body = serde_json::to_string(&ServeBody {
                sorted_orders: resp.sorted_orders,
                aoi_sequence: resp.aoi_sequence,
                eta_minutes: resp.etas.iter().map(|e| e.eta_minutes).collect(),
            })
            .expect("serialise response");
            // The full handle — parse, predict, serialize — measured
            // once: the histogram sample and the latency_ms field are
            // the same number by construction.
            let latency_us = (t0.elapsed().as_micros() as u64).max(1);
            metrics.latency_us.record(latency_us);
            metrics.route_len.record(query.orders.len() as u64);
            metrics.requests.inc();
            shared.refresh_pool(&ctx.service, &ctx.pool_last);
            let latency_ms = latency_us as f64 / 1000.0;
            // Splice latency into the serialized body ({"a":.. ->
            // {"latency_ms":X,"a":..): field order is free in JSON.
            Reply::Line(format!("{{\"latency_ms\":{latency_ms},{}", &body[1..]))
        }
    }
}
