//! The TCP inference server: the closest in-repo analog of the paper's
//! §VI online deployment (Fig. 7). Speaks newline-delimited JSON:
//! every request line is an [`rtp_sim::RtpQuery`], every response line
//! a [`ServeResponse`].
//!
//! Inference runs through [`RtpService`]'s pooled no-grad tape: the
//! forward pass records no gradients or op payloads, and after the
//! first request every tensor buffer comes from the tape's free-list
//! pool, so steady-state serving is allocation-free in the hot loop.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use m2g4rtp::M2G4Rtp;
use rtp_eval::service::RtpService;
use rtp_sim::{Dataset, RtpQuery};
use serde::{Deserialize, Serialize};

/// One served prediction, mirroring the two application-layer products
/// (Intelligent Order Sorting and Minute-Level ETA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// Per-order ETA in minutes (aligned with the query's order index).
    pub eta_minutes: Vec<f32>,
    /// Server-side handling latency, ms.
    pub latency_ms: f64,
}

/// An error reply for malformed requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeError {
    /// What went wrong.
    pub error: String,
}

/// Binds a listener, prints `listening on <addr>` to `out`, and serves
/// until `max_requests` requests have been answered (0 = forever).
/// Each connection may pipeline many request lines.
pub fn serve(
    model: M2G4Rtp,
    dataset: Dataset,
    port: u16,
    max_requests: usize,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    writeln!(out, "listening on {}", listener.local_addr()?)?;
    out.flush()?;
    let service = RtpService::new(model);
    let mut served = 0usize;
    for stream in listener.incoming() {
        let stream = stream?;
        served +=
            handle_connection(&service, &dataset, stream, max_requests.saturating_sub(served))?;
        if max_requests != 0 && served >= max_requests {
            break;
        }
    }
    writeln!(out, "served {served} request(s)")?;
    Ok(0)
}

/// Handles one connection; returns the number of requests answered.
fn handle_connection(
    service: &RtpService,
    dataset: &Dataset,
    stream: TcpStream,
    budget: usize,
) -> std::io::Result<usize> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut served = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match serde_json::from_str::<RtpQuery>(&line) {
            Err(e) => serde_json::to_string(&ServeError { error: format!("bad request: {e}") })
                .expect("serialise error"),
            Ok(query) if query.orders.is_empty() => {
                serde_json::to_string(&ServeError { error: "bad request: empty order set".into() })
                    .expect("serialise error")
            }
            Ok(query) => {
                let courier =
                    dataset.couriers.get(query.courier_id).unwrap_or(&dataset.couriers[0]);
                let resp = service.handle(&dataset.city, courier, &query);
                let eta_minutes = {
                    // service returns ETAs per order index already
                    resp.etas.iter().map(|e| e.eta_minutes).collect()
                };
                serde_json::to_string(&ServeResponse {
                    sorted_orders: resp.sorted_orders,
                    aoi_sequence: resp.aoi_sequence,
                    eta_minutes,
                    latency_ms: resp.latency_ms,
                })
                .expect("serialise response")
            }
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
        if budget != 0 && served >= budget {
            break;
        }
    }
    Ok(served)
}
