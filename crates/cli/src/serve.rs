//! The TCP inference server: the closest in-repo analog of the paper's
//! §VI online deployment (Fig. 7). Speaks newline-delimited JSON:
//! every request line is an [`rtp_sim::RtpQuery`], every response line
//! a [`ServeResponse`].
//!
//! # Concurrency model
//!
//! A fixed pool of worker threads (`--workers N`, `0` = all cores, the
//! same std-thread scaffolding as `rtp_tensor::parallel`) accepts many
//! simultaneous connections. The acceptor thread hands each connection
//! to the pool over an mpsc channel; each worker owns its **own**
//! [`RtpService`] — one pooled no-grad tape per worker — over one
//! shared read-only `Arc<M2G4Rtp>`, so inference never contends on a
//! global mutex and per-worker tape reuse cannot change numerics
//! (cleared-tape reuse is bit-identical to a fresh tape).
//!
//! # Micro-batching & encoder cache (`--batch-max`, `--batch-window-us`)
//!
//! With `--batch-max N` (N > 1), workers stop running the encoders
//! themselves: each prediction request's graph is shipped to a single
//! **inference engine** thread, which collects jobs into a micro-batch
//! — waiting at most `--batch-window-us` after the first job, or until
//! `N` jobs are queued — runs **one** batched forward
//! ([`M2G4Rtp::predict_batch_encoded_into`]: per-sample rows stacked
//! through every encoder matmul), and demultiplexes replies to the
//! waiting workers over per-job channels. Stacking is bit-identical per
//! sample to the unbatched path (every batched op is row-local or runs
//! on a per-sample slice), so batching can change throughput but never
//! a reply byte.
//!
//! Each batched prediction also yields the sample's encoder activations,
//! which land in a per-courier **encoder cache** keyed by courier id and
//! fingerprinted by the full request line. A repeat query (same courier,
//! byte-identical line — i.e. identical route state) skips feature
//! extraction and the whole encoder stack: the worker replays the cached
//! activations through the decoders on its own tape
//! ([`M2G4Rtp::predict_encoded_into`]), again bit-identical to a cold
//! forward. Any change in the query line (an order served, the courier
//! moved, time advanced) misses the fingerprint and the fresh result
//! replaces the stale entry (`serve.cache.invalidations`).
//!
//! # Fault isolation & lifecycle
//!
//! * a per-connection I/O error (client reset, broken pipe) drops only
//!   that connection and increments `serve.conn_errors`;
//! * a panic inside request handling is caught (`catch_unwind` around
//!   [`handle_line`]), answers a best-effort error line, drops only
//!   that connection and increments `serve.panics`; the worker's tape
//!   mutex recovers by swapping in a fresh tape;
//! * a client idle longer than `--idle-timeout-secs` is reaped
//!   (`serve.timeouts`), via a polling read timeout on the socket;
//! * shutdown is graceful: when `--max-requests` is reached or an
//!   in-band `{"cmd":"shutdown"}` arrives (only honoured with
//!   `--allow-shutdown`), the acceptor stops, in-flight requests
//!   complete, workers drain, and the telemetry summary is printed.
//!
//! # Telemetry
//!
//! Each server owns a private [`rtp_obs::Registry`] (so concurrent
//! servers in one process do not bleed into each other) recording:
//!
//! * `serve.requests` / `serve.errors` / `serve.stats` — reply
//!   counters (ok predictions, error replies, stats replies);
//! * `serve.unknown_cmds` — control lines whose `cmd` value is not a
//!   known command (counted here, **not** in `serve.errors`: a typo'd
//!   operator command is not a malformed client request);
//! * `serve.cache.hits` / `.misses` / `.invalidations` and the
//!   `serve.cache.hit_rate` gauge — encoder-cache effectiveness;
//! * `serve.batch_size` — jobs per batched forward histogram;
//! * `serve.connections` / `serve.conn_errors` / `serve.panics` /
//!   `serve.timeouts` — connection lifecycle counters;
//! * `serve.active_connections` — gauge of connections being handled;
//! * `serve.worker.<i>.requests` — replies written per worker;
//! * `serve.latency_us` — full-handle latency histogram. The timer
//!   starts before the request line is parsed and stops after the
//!   response body is serialized, and the **same** measurement becomes
//!   the response's `latency_ms` field, so the field and the histogram
//!   can never disagree;
//! * `serve.route_len` — orders-per-request histogram;
//! * `tensor.pool.hits` / `.misses` / `.hit_rate` — the inference
//!   tapes' buffer-pool stats summed across workers, refreshed after
//!   every prediction.
//!
//! An in-band `{"cmd":"stats"}` request line returns the registry
//! snapshot (merged with the process-global registry, which carries
//! the matmul-kernel counters) as one JSON line; on shutdown the
//! server prints served/error/connection counts and p50/p95/p99
//! latency.
//!
//! # Per-request tracing
//!
//! Every accepted connection mints a [`rtp_obs::TraceCtx`]; every
//! request line on it gets a u64 trace id (consecutive for pipelined
//! requests on one connection). Monotonic timestamps follow the
//! request through worker dispatch → batch-queue enqueue →
//! inference-engine flush → batched forward → demux → reply write, and
//! the resulting per-stage durations land in the
//! `serve.stage.{queue_wait,batch_form,forward,demux,write}_us`
//! histograms for **every** prediction (traced or not). A client that
//! sends `"trace": true` in its query additionally gets `trace_id` and
//! a `stages` breakdown echoed in the reply; with the trace fields
//! stripped, a traced reply is byte-identical to an untraced one.
//! Stages are disjoint sub-intervals of the handle window measured
//! with `saturating_duration_since`, so each duration is finite and
//! non-negative and their sum never exceeds `latency_ms`. The
//! breakdown's `write_us` covers reply construction (apply +
//! serialize); the `serve.stage.write_us` histogram additionally
//! includes the socket write, which a reply cannot observe about
//! itself.
//!
//! # Exporters
//!
//! `{"cmd":"metrics"}` returns the merged registry snapshot rendered
//! as Prometheus text exposition ([`rtp_obs::prom::render`]) inside a
//! one-line JSON envelope; `--metrics-file PATH` additionally writes
//! the same text to `PATH` every `--metrics-interval-secs S` (and once
//! at startup and shutdown) via `write_atomic`, so any scraper or
//! `watch cat` sees complete, valid exposition with zero deps.
//!
//! # Flight recorder
//!
//! The server enables [`rtp_obs::flight`]: request, error, span and
//! panic events (each carrying its trace id) go into fixed per-thread
//! rings. A worker or engine panic records a `panic` event and — with
//! `--flight-dump PATH` — dumps all rings as JSONL through
//! `write_atomic`, turning the catch_unwind sites into post-mortems;
//! `{"cmd":"dump"}` returns the same events in-band.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use m2g4rtp::{EncodedQuery, M2G4Rtp, Prediction};
use rtp_eval::service::{apply_prediction, RtpService};
use rtp_graph::MultiLevelGraph;
use rtp_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
use rtp_obs::{flight, StageBreakdown, TraceCtx};
use rtp_sim::{Dataset, RtpQuery};
use rtp_tensor::parallel::resolve_threads;
use rtp_tensor::Numerics;
use serde::{Deserialize, Serialize};

/// How often a blocked connection read wakes up to check the shutdown
/// flag and the idle deadline. Partial lines survive across polls (the
/// bytes stay in the `read_line` buffer).
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// One served prediction, mirroring the two application-layer products
/// (Intelligent Order Sorting and Minute-Level ETA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// Per-order ETA in minutes (aligned with the query's order index).
    pub eta_minutes: Vec<f32>,
    /// Server-side handling latency (parse → predict → serialize), ms.
    /// Identical to the sample recorded in the `serve.latency_us`
    /// histogram for this request.
    pub latency_ms: f64,
}

/// The serialized part of a response that the latency timer must cover;
/// `latency_ms` is spliced in afterwards (same field set as
/// [`ServeResponse`]).
#[derive(Debug, Serialize)]
struct ServeBody {
    sorted_orders: Vec<usize>,
    aoi_sequence: Vec<usize>,
    eta_minutes: Vec<f32>,
}

/// An error reply for malformed requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeError {
    /// What went wrong.
    pub error: String,
}

/// Known in-band control commands, for the unknown-command reply.
const KNOWN_CMDS: &str = "stats, metrics, dump, shutdown, panic";

/// The reply to `{"cmd":"metrics"}`: the merged registry snapshot
/// rendered as Prometheus text exposition, in a one-line JSON envelope
/// so it rides the NDJSON protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsReply {
    /// Prometheus text exposition format (validates under
    /// [`rtp_obs::prom::validate`]).
    pub metrics: String,
}

/// Flattened percentile view of one histogram in a [`StatsReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Recorded samples.
    pub count: u64,
    /// Sum of raw values.
    pub sum: u64,
    /// Largest raw value.
    pub max: u64,
    /// Mean raw value.
    pub mean: f64,
    /// Quantized-exact percentiles (bucket floors, ≤1/16 resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramStats {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// The reply to `{"cmd":"stats"}`: a registry snapshot in NDJSON-
/// friendly form (one line, deserializable with the same vendored
/// serde the rest of the protocol uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name, flattened to percentiles.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl StatsReply {
    /// Flattens a merged registry snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        Self {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramStats::from_snapshot(h)))
                .collect(),
        }
    }
}

/// Server configuration (`rtp serve` flags).
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// TCP port (0 = ephemeral).
    pub port: u16,
    /// Total replies to send before shutting down (0 = forever).
    pub max_requests: usize,
    /// Worker-pool size (0 = all cores).
    pub workers: usize,
    /// Reap a connection after this long without a complete request
    /// line (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Honour in-band `{"cmd":"shutdown"}` (and the `{"cmd":"panic"}`
    /// fault-injection hook).
    pub allow_shutdown: bool,
    /// Micro-batch size cap. `<= 1` disables batching and the encoder
    /// cache entirely (the legacy per-worker path).
    pub batch_max: usize,
    /// How long the inference engine waits after a micro-batch's first
    /// job for more jobs to join it.
    pub batch_window: Duration,
    /// Numerics tier for the inference tapes (`--numerics`). Replies
    /// from non-default tiers are tagged with a `"numerics"` field so
    /// clients can tell approximate answers from bit-exact ones.
    pub numerics: Numerics,
    /// Write the merged registry as Prometheus text exposition to this
    /// path (atomically) every `metrics_interval`, plus once at startup
    /// and shutdown. `None` disables the writer.
    pub metrics_file: Option<String>,
    /// Snapshot period for `metrics_file` (zero = the 5 s default).
    pub metrics_interval: Duration,
    /// Dump the flight recorder as JSONL to this path when a worker or
    /// engine panic is caught. `None` keeps panics as counters only.
    pub flight_dump: Option<String>,
}

impl ServeOptions {
    /// Whether the batching engine (and with it the encoder cache) is
    /// active.
    fn batching(&self) -> bool {
        self.batch_max > 1
    }
}

/// The per-server metric handles (all on the server's own registry).
struct ServeMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    stats: Arc<Counter>,
    unknown_cmds: Arc<Counter>,
    connections: Arc<Counter>,
    conn_errors: Arc<Counter>,
    panics: Arc<Counter>,
    timeouts: Arc<Counter>,
    active_connections: Arc<Gauge>,
    latency_us: Arc<Histogram>,
    route_len: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    cache_hit_rate: Arc<Gauge>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_hit_rate: Arc<Gauge>,
    /// Per-numerics-tier ok-prediction counters
    /// (`serve.requests.{exact,fast,quantized}`); all three are
    /// registered up front so the stats reply always carries the full
    /// tier breakdown.
    req_exact: Arc<Counter>,
    req_fast: Arc<Counter>,
    req_quantized: Arc<Counter>,
    /// Stage-latency histograms (`serve.stage.<name>_us`), indexed in
    /// [`StageBreakdown::NAMES`] order: queue_wait, batch_form,
    /// forward, demux, write. Recorded for every ok prediction.
    stages: [Arc<Histogram>; 5],
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            stats: registry.counter("serve.stats"),
            unknown_cmds: registry.counter("serve.unknown_cmds"),
            connections: registry.counter("serve.connections"),
            conn_errors: registry.counter("serve.conn_errors"),
            panics: registry.counter("serve.panics"),
            timeouts: registry.counter("serve.timeouts"),
            active_connections: registry.gauge("serve.active_connections"),
            latency_us: registry.histogram("serve.latency_us"),
            route_len: registry.histogram("serve.route_len"),
            batch_size: registry.histogram("serve.batch_size"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_invalidations: registry.counter("serve.cache.invalidations"),
            cache_hit_rate: registry.gauge("serve.cache.hit_rate"),
            pool_hits: registry.gauge("tensor.pool.hits"),
            pool_misses: registry.gauge("tensor.pool.misses"),
            pool_hit_rate: registry.gauge("tensor.pool.hit_rate"),
            req_exact: registry.counter("serve.requests.exact"),
            req_fast: registry.counter("serve.requests.fast"),
            req_quantized: registry.counter("serve.requests.quantized"),
            stages: StageBreakdown::NAMES
                .map(|name| registry.histogram(&format!("serve.stage.{name}_us"))),
        }
    }

    /// Records the four in-handler stages of one prediction (write is
    /// recorded separately, after the socket write it includes).
    fn record_stages(&self, s: &StageBreakdown) {
        self.stages[0].record(s.queue_wait_us);
        self.stages[1].record(s.batch_form_us);
        self.stages[2].record(s.forward_us);
        self.stages[3].record(s.demux_us);
    }
}

/// One resident entry of the per-courier encoder cache.
struct CacheEntry {
    /// The exact request line that produced this entry. Fingerprinting
    /// the whole line (rather than a digest of the route state) makes
    /// the invalidation rule trivially sound: *any* observable change —
    /// an order served, the courier moving, the clock advancing —
    /// changes the line, misses the cache, and replaces the entry.
    fingerprint: String,
    /// The scaled multi-level graph (Feature Extraction Layer output).
    graph: MultiLevelGraph,
    /// The encoder activations to replay through the decoders.
    enc: EncodedQuery,
}

/// One unit of work for the inference engine: an already-built graph
/// plus the channel its prediction must come back on. If the engine
/// drops the sender without replying (batch forward panicked), the
/// waiting worker answers an internal-error line for just that request.
struct InferJob {
    graph: MultiLevelGraph,
    /// Trace id of the request this job belongs to (flight-recorder
    /// attribution on an engine panic).
    trace_id: u64,
    /// When the owning worker enqueued the job (starts `queue_wait`).
    enqueued: Instant,
    reply: Sender<EngineReply>,
}

/// What the inference engine sends back per job: the prediction plus
/// the engine-side stage timings of this request's batch.
struct EngineReply {
    graph: MultiLevelGraph,
    prediction: Prediction,
    enc: EncodedQuery,
    /// Enqueue → engine dequeue of this job.
    queue_wait_us: u64,
    /// Dequeue → batch flush (waiting for the micro-batch to form).
    batch_form_us: u64,
    /// The batched forward.
    forward_us: u64,
    /// When the forward finished (starts `demux` on the worker side).
    finished: Instant,
}

/// State shared by the acceptor and every worker.
struct ServerShared {
    registry: Registry,
    metrics: ServeMetrics,
    /// Replies written so far (claim-based: a worker reserves a slot
    /// *before* answering, so exactly `max_requests` replies go out).
    served: AtomicUsize,
    /// Connections currently being handled (mirrored into the
    /// `serve.active_connections` gauge).
    active: AtomicI64,
    shutdown: AtomicBool,
    /// The listener's address, used to poke the blocking acceptor
    /// awake when shutdown is triggered from a worker.
    addr: SocketAddr,
    max_requests: usize,
    idle_timeout: Option<Duration>,
    allow_shutdown: bool,
    /// Tape buffer-pool totals summed across workers (each worker
    /// contributes deltas of its own service's stats).
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    /// Per-courier encoder cache; `Some` iff batching is enabled.
    /// Concurrent misses for the same courier may both insert — that is
    /// a benign lost-update (same fingerprint ⇒ same bits), not an
    /// invalidation.
    cache: Option<Mutex<HashMap<usize, Arc<CacheEntry>>>>,
    /// Where a caught panic dumps the flight recorder (`--flight-dump`).
    flight_dump: Option<String>,
}

impl ServerShared {
    fn new(registry: Registry, addr: SocketAddr, opts: &ServeOptions) -> Self {
        let metrics = ServeMetrics::new(&registry);
        Self {
            registry,
            metrics,
            served: AtomicUsize::new(0),
            active: AtomicI64::new(0),
            shutdown: AtomicBool::new(false),
            addr,
            max_requests: opts.max_requests,
            idle_timeout: opts.idle_timeout,
            allow_shutdown: opts.allow_shutdown,
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            cache: opts.batching().then(|| Mutex::new(HashMap::new())),
            flight_dump: opts.flight_dump.clone(),
        }
    }

    /// Dumps the flight recorder to the `--flight-dump` path (no-op
    /// without one). Called from caught-panic sites, so the dump also
    /// flushes and fsyncs the span sink (S2: a `--log-json` file is
    /// complete at post-mortem time).
    fn dump_flight(&self) {
        if let Some(path) = &self.flight_dump {
            if let Err(e) = flight::dump_to_file(path) {
                eprintln!("flight dump to {path} failed: {e}");
            }
        }
    }

    /// Locks the encoder cache (present iff batching is on), recovering
    /// from poisoning: cache entries are immutable once inserted (only
    /// whole-entry replacement), so a panicked holder cannot leave a
    /// half-written entry behind.
    fn lock_cache(&self) -> Option<std::sync::MutexGuard<'_, HashMap<usize, Arc<CacheEntry>>>> {
        self.cache.as_ref().map(|c| c.lock().unwrap_or_else(|p| p.into_inner()))
    }

    /// Refreshes the `serve.cache.hit_rate` gauge from the counters.
    fn refresh_cache_rate(&self) {
        let h = self.metrics.cache_hits.get();
        let m = self.metrics.cache_misses.get();
        let total = h + m;
        self.metrics.cache_hit_rate.set(if total == 0 { 0.0 } else { h as f64 / total as f64 });
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the shutdown flag and wakes the acceptor with a no-op
    /// connection so its blocking `accept` returns.
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Reserves one reply slot. Returns `false` when the request budget
    /// is spent — the caller must close the connection unanswered. The
    /// claimer of the final slot triggers shutdown after replying.
    fn claim_reply(&self) -> bool {
        if self.max_requests == 0 {
            self.served.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        let n = self.served.fetch_add(1, Ordering::SeqCst) + 1;
        if n > self.max_requests {
            self.served.fetch_sub(1, Ordering::SeqCst);
            self.trigger_shutdown();
            return false;
        }
        true
    }

    /// Called after a reply is written: the final budgeted reply shuts
    /// the server down.
    fn after_reply(&self) {
        if self.max_requests != 0 && self.served.load(Ordering::SeqCst) >= self.max_requests {
            self.trigger_shutdown();
        }
    }

    fn conn_started(&self) {
        self.metrics.connections.inc();
        let n = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.active_connections.set(n as f64);
    }

    fn conn_finished(&self) {
        let n = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.metrics.active_connections.set(n as f64);
    }

    /// Folds one worker's tape-pool delta into the cross-worker totals
    /// and refreshes the gauges. `last` is the worker's previous
    /// reading; `saturating_sub` because tape poison-recovery resets a
    /// worker's stats to zero.
    fn refresh_pool(&self, service: &RtpService, last: &Cell<(u64, u64)>) {
        let (hits, misses) = service.pool_stats();
        let (lh, lm) = last.get();
        last.set((hits, misses));
        let h = self.pool_hits.fetch_add(hits.saturating_sub(lh), Ordering::Relaxed)
            + hits.saturating_sub(lh);
        let m = self.pool_misses.fetch_add(misses.saturating_sub(lm), Ordering::Relaxed)
            + misses.saturating_sub(lm);
        self.metrics.pool_hits.set(h as f64);
        self.metrics.pool_misses.set(m as f64);
        let total = h + m;
        self.metrics.pool_hit_rate.set(if total == 0 { 0.0 } else { h as f64 / total as f64 });
    }
}

/// One worker's view of the server: its private inference lane plus
/// the shared state.
struct WorkerCtx<'a> {
    service: RtpService,
    dataset: &'a Dataset,
    shared: &'a ServerShared,
    /// Replies written by this worker (`serve.worker.<i>.requests`).
    replies: Arc<Counter>,
    /// Last `(hits, misses)` reading of this worker's tape pool.
    pool_last: Cell<(u64, u64)>,
    /// Job channel into the inference engine; `Some` iff batching is
    /// enabled.
    infer_tx: Option<Sender<InferJob>>,
}

/// Binds a listener, prints `listening on <addr>` to `out`, and serves
/// with a fixed worker pool until the request budget is spent or an
/// in-band shutdown arrives. Each connection may pipeline many request
/// lines. On exit, drains in-flight connections and prints a telemetry
/// summary (request/error/connection counts, latency percentiles).
pub fn serve(
    model: M2G4Rtp,
    dataset: Dataset,
    opts: ServeOptions,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let workers = resolve_threads(opts.workers).max(1);
    writeln!(out, "listening on {addr}")?;
    writeln!(out, "workers: {workers}")?;
    out.flush()?;

    if opts.batching() {
        writeln!(
            out,
            "batching: max {} / window {} us",
            opts.batch_max,
            opts.batch_window.as_micros()
        )?;
        out.flush()?;
    }

    // The flight recorder stays on for the server's lifetime: request,
    // error, span and panic events accumulate in per-thread rings so a
    // caught panic (or {"cmd":"dump"}) has history to show.
    flight::set_enabled(true);

    let model = Arc::new(model);
    let shared = ServerShared::new(Registry::new(), addr, &opts);
    let (tx, rx) = channel::<(TcpStream, TraceCtx)>();
    // std's Receiver is single-consumer; workers share it behind a
    // mutex, each holding it only for one blocking `recv`.
    let rx = Arc::new(Mutex::new(rx));
    // Job channel into the inference engine (batching only). The
    // original sender is dropped after the workers clone theirs, so the
    // engine's `recv` fails — and the engine exits — exactly when the
    // last worker has exited.
    let (job_tx, job_rx) = channel::<InferJob>();
    let job_tx = opts.batching().then_some(job_tx);

    std::thread::scope(|scope| {
        if opts.batching() {
            let shared = &shared;
            let model = Arc::clone(&model);
            let window = opts.batch_window;
            let batch_max = opts.batch_max;
            let numerics = opts.numerics;
            scope.spawn(move || {
                run_inference_engine(&model, job_rx, window, batch_max, numerics, shared)
            });
        } else {
            drop(job_rx);
        }
        for worker_id in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = &shared;
            let dataset = &dataset;
            let service = RtpService::with_numerics(Arc::clone(&model), opts.numerics);
            let infer_tx = job_tx.clone();
            scope.spawn(move || {
                let ctx = WorkerCtx {
                    service,
                    dataset,
                    shared,
                    replies: shared.registry.counter(&format!("serve.worker.{worker_id}.requests")),
                    pool_last: Cell::new((0, 0)),
                    infer_tx,
                };
                loop {
                    // Blocks until a connection arrives or the acceptor
                    // drops the sender (shutdown + queue drained).
                    let next = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    let Ok((stream, trace)) = next else { break };
                    shared.conn_started();
                    let result = handle_connection(&ctx, stream, trace);
                    shared.conn_finished();
                    if result.is_err() {
                        shared.metrics.conn_errors.inc();
                    }
                }
            });
        }
        // Workers hold their own clones; dropping the original ties the
        // engine's lifetime to the workers'.
        drop(job_tx);

        // Periodic Prometheus snapshot writer (--metrics-file). Sleeps
        // in POLL_INTERVAL slices so shutdown is honoured promptly; the
        // final (post-drain) snapshot is written by serve() itself
        // after the scope joins every worker.
        if let Some(path) = opts.metrics_file.clone() {
            let shared = &shared;
            let interval = if opts.metrics_interval.is_zero() {
                Duration::from_secs(5)
            } else {
                opts.metrics_interval
            };
            scope.spawn(move || loop {
                write_metrics_file(&path, shared);
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if shared.shutting_down() {
                        return;
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            });
        }

        // Acceptor: dispatch until shutdown. The shutdown poke is
        // itself a connection, consumed by the flag check. Every
        // accepted connection gets its trace context here, so trace
        // ids cover the full dispatch path including queueing for a
        // worker.
        for stream in listener.incoming() {
            if shared.shutting_down() {
                break;
            }
            match stream {
                Ok(s) => {
                    if tx.send((s, TraceCtx::at_accept())).is_err() {
                        break;
                    }
                }
                Err(_) => shared.metrics.conn_errors.inc(),
            }
        }
        // Closing the channel lets idle workers exit; busy workers
        // finish their in-flight connections first (drain).
        drop(tx);
    });

    // Graceful-shutdown durability (S2): everything traced so far is
    // flushed and fsynced, and the exported snapshot reflects the full
    // run including the final drained requests.
    rtp_obs::trace::flush();
    if let Some(path) = &opts.metrics_file {
        write_metrics_file(path, &shared);
    }

    let m = &shared.metrics;
    let served = shared.served.load(Ordering::SeqCst);
    writeln!(
        out,
        "served {served} request(s): {} ok, {} error(s), {} stats",
        m.requests.get(),
        m.errors.get(),
        m.stats.get()
    )?;
    writeln!(
        out,
        "connections: {} handled, {} conn error(s), {} panic(s), {} timeout(s)",
        m.connections.get(),
        m.conn_errors.get(),
        m.panics.get(),
        m.timeouts.get()
    )?;
    let snap = shared.registry.snapshot();
    let ms = |v: u64| v as f64 / 1000.0;
    if let Some(lat) = snap.histograms.get("serve.latency_us").filter(|l| l.count() > 0) {
        writeln!(
            out,
            "latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            ms(lat.percentile(0.50)),
            ms(lat.percentile(0.95)),
            ms(lat.percentile(0.99)),
            ms(lat.max())
        )?;
    }
    Ok(0)
}

/// The server registry merged with the process-global one (which
/// carries the matmul-kernel counters and training gauges) — the same
/// view `{"cmd":"stats"}`, `{"cmd":"metrics"}` and the snapshot writer
/// all export.
fn merged_snapshot(shared: &ServerShared) -> Snapshot {
    let mut snap = shared.registry.snapshot();
    snap.merge(&rtp_obs::metrics::global().snapshot());
    snap
}

/// Writes the merged snapshot to `path` as Prometheus text exposition,
/// atomically — a scraper never sees a half-written file.
fn write_metrics_file(path: &str, shared: &ServerShared) {
    let text = rtp_obs::prom::render(&merged_snapshot(shared));
    if let Err(e) = rtp_obs::fsio::write_atomic_str(std::path::Path::new(path), &text) {
        eprintln!("metrics snapshot to {path} failed: {e}");
    }
}

/// The inference engine: collects [`InferJob`]s into micro-batches and
/// runs one batched forward per batch on its own pooled no-grad tape.
///
/// Batch formation: block for the first job, then keep accepting jobs
/// until `batch_max` are queued or `window` has elapsed since the first
/// job arrived. A panic inside the batch forward is caught — the tape
/// is replaced (its pool state is arbitrary mid-panic) and the batch's
/// reply senders are dropped, so each waiting worker answers an
/// internal-error line for its own request; the engine keeps serving.
///
/// Exits when every worker's job sender is gone.
fn run_inference_engine(
    model: &M2G4Rtp,
    jobs: std::sync::mpsc::Receiver<InferJob>,
    window: Duration,
    batch_max: usize,
    numerics: Numerics,
    shared: &ServerShared,
) {
    let mut tape = model.inference_tape(numerics);
    while let Ok(first) = jobs.recv() {
        // Per-job dequeue times: job i's queue_wait ends (and its
        // batch_form begins) the moment the engine receives it.
        let mut recvs = vec![Instant::now()];
        let deadline = recvs[0] + window;
        let mut batch = vec![first];
        while batch.len() < batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match jobs.recv_timeout(deadline - now) {
                Ok(job) => {
                    batch.push(job);
                    recvs.push(Instant::now());
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        shared.metrics.batch_size.record(batch.len() as u64);
        let flushed = Instant::now();
        let graphs: Vec<&MultiLevelGraph> = batch.iter().map(|j| &j.graph).collect();
        let result =
            catch_unwind(AssertUnwindSafe(|| model.predict_batch_encoded_into(&mut tape, &graphs)));
        drop(graphs);
        let finished = Instant::now();
        let forward_us = finished.saturating_duration_since(flushed).as_micros() as u64;
        match result {
            Ok(preds) => {
                for ((job, recv), (pred, enc)) in batch.into_iter().zip(recvs).zip(preds) {
                    let InferJob { graph, trace_id: _, enqueued, reply } = job;
                    // A send error only means the worker gave up on the
                    // connection; nothing to do.
                    let _ = reply.send(EngineReply {
                        graph,
                        prediction: pred,
                        enc,
                        queue_wait_us: recv.saturating_duration_since(enqueued).as_micros() as u64,
                        batch_form_us: flushed.saturating_duration_since(recv).as_micros() as u64,
                        forward_us,
                        finished,
                    });
                }
            }
            Err(_) => {
                shared.metrics.panics.inc();
                let size = batch.len();
                for job in &batch {
                    flight::record(flight::Kind::Panic, "serve.engine", job.trace_id, || {
                        format!("batched forward panicked (batch of {size})")
                    });
                }
                shared.dump_flight();
                tape = model.inference_tape(numerics);
                // Dropping `batch` drops every reply sender; each
                // waiting worker sees RecvError and answers an error
                // line for its own request only.
            }
        }
    }
}

/// Reads one request line, polling so the shutdown flag and the idle
/// deadline are honoured even while blocked. Partial lines accumulate
/// in `buf` across polls (and across an actual mid-line stall).
enum LineRead {
    /// A complete (or final unterminated) line is in the buffer.
    Line,
    /// Clean end of stream, idle reap, or shutdown — close quietly.
    Close,
}

fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shared: &ServerShared,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut last_progress = Instant::now();
    loop {
        let len_before = buf.len();
        match reader.read_line(buf) {
            Ok(0) => {
                // EOF; any bytes from an earlier partial read are a
                // final unterminated line.
                return Ok(if buf.is_empty() { LineRead::Close } else { LineRead::Line });
            }
            Ok(_) => return Ok(LineRead::Line),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if buf.len() > len_before {
                    last_progress = Instant::now();
                }
                if shared.shutting_down() {
                    return Ok(LineRead::Close);
                }
                if let Some(idle) = shared.idle_timeout {
                    if last_progress.elapsed() >= idle {
                        shared.metrics.timeouts.inc();
                        return Ok(LineRead::Close);
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Handles one connection on a worker thread. Returns `Err` only for
/// real I/O failures (client reset, broken pipe) — the caller counts
/// those as `serve.conn_errors`; everything else (EOF, idle reap,
/// budget exhaustion, handler panic) closes the connection cleanly.
fn handle_connection(
    ctx: &WorkerCtx<'_>,
    stream: TcpStream,
    mut trace: TraceCtx,
) -> std::io::Result<()> {
    // The polling read timeout doubles as the shutdown-responsiveness
    // bound; `read_request_line` keeps partial lines across polls.
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    // NDJSON replies are small; without this, Nagle + delayed ACK adds
    // ~40 ms per round trip on a pipelining client.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        match read_request_line(&mut reader, &mut buf, ctx.shared)? {
            LineRead::Close => return Ok(()),
            LineRead::Line => {}
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        if !ctx.shared.claim_reply() {
            return Ok(()); // budget spent — close unanswered
        }
        let trace_id = trace.next_request();
        // Fault isolation: a panic anywhere in parse/predict/serialize
        // must not unwind through the worker loop. The worker's tape
        // mutex is poison-recovered by RtpService on the next request.
        let reply = catch_unwind(AssertUnwindSafe(|| handle_line(ctx, line, trace_id)));
        match reply {
            Ok(Reply::Line(mut body, stages)) => {
                body.push('\n');
                // Count before the write lands: a client must never
                // observe a reply whose counters haven't settled (the
                // stats request relies on exact accounting).
                ctx.replies.inc();
                let wire_t0 = Instant::now();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                // The write-stage histogram covers serialization plus
                // the socket write; the echoed breakdown stops at
                // serialization (it is part of the written bytes).
                if let Some(ser_us) = stages {
                    let wire_us = wire_t0.elapsed().as_micros() as u64;
                    ctx.shared.metrics.stages[4].record(ser_us + wire_us);
                }
                ctx.shared.after_reply();
            }
            Ok(Reply::ShutdownAck(mut body)) => {
                body.push('\n');
                ctx.replies.inc();
                writer.write_all(body.as_bytes())?;
                writer.flush()?;
                ctx.shared.trigger_shutdown();
                return Ok(());
            }
            Err(_) => {
                ctx.shared.metrics.panics.inc();
                flight::record(flight::Kind::Panic, "serve.worker", trace_id, || {
                    format!("request handler panicked on line of {} byte(s)", line.len())
                });
                ctx.shared.dump_flight();
                let mut err = serde_json::to_string(&ServeError {
                    error: "internal error: request handler panicked; connection closed".into(),
                })
                .expect("serialise error");
                err.push('\n');
                // Best effort — the client may already be gone.
                let _ = writer.write_all(err.as_bytes());
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

/// A reply line, plus whether it also requests server shutdown. An ok
/// prediction carries `Some(serialization_us)` so the connection loop
/// can fold the socket write into the `serve.stage.write_us` sample.
enum Reply {
    Line(String, Option<u64>),
    ShutdownAck(String),
}

/// Produces the reply for one request line, recording telemetry.
fn handle_line(ctx: &WorkerCtx<'_>, line: &str, trace_id: u64) -> Reply {
    let shared = ctx.shared;
    let metrics = &shared.metrics;
    let err_line = |msg: String| {
        metrics.errors.inc();
        flight::record(flight::Kind::Error, "serve.error", trace_id, || msg.clone());
        Reply::Line(
            serde_json::to_string(&ServeError { error: msg }).expect("serialise error"),
            None,
        )
    };
    let t0 = Instant::now();
    // Parse once, classify structurally: any object carrying a `cmd`
    // key is a control request — full stop. This closes the old
    // misclassification hole where an unknown `{"cmd":"…"}` value (or a
    // line shaped like both a command and a query) fell through to the
    // prediction/parse-error path and came back as `bad request`.
    let value = match serde_json::from_str::<serde::Value>(line) {
        Ok(v) => v,
        Err(e) => return err_line(format!("bad request: {e}")),
    };
    if let Some(cmd) = value.get("cmd") {
        // Unknown commands get their own named reply and counter:
        // a typo'd operator command is not a malformed client request,
        // so it must not pollute `serve.errors`.
        let unknown_cmd = |msg: String| {
            metrics.unknown_cmds.inc();
            Reply::Line(
                serde_json::to_string(&ServeError { error: msg }).expect("serialise error"),
                None,
            )
        };
        return match cmd.as_str() {
            Some("stats") => {
                metrics.stats.inc();
                shared.refresh_pool(&ctx.service, &ctx.pool_last);
                // The global registry carries process-wide metrics
                // (matmul kernel counters, training gauges); merging
                // demonstrates snapshot associativity in anger.
                let snap = merged_snapshot(shared);
                Reply::Line(
                    serde_json::to_string(&StatsReply::from_snapshot(&snap))
                        .expect("serialise stats"),
                    None,
                )
            }
            Some("metrics") => {
                metrics.stats.inc();
                shared.refresh_pool(&ctx.service, &ctx.pool_last);
                let text = rtp_obs::prom::render(&merged_snapshot(shared));
                Reply::Line(
                    serde_json::to_string(&MetricsReply { metrics: text })
                        .expect("serialise metrics"),
                    None,
                )
            }
            Some("dump") => {
                metrics.stats.inc();
                // The flight events carry their own JSON (obs stays
                // zero-dep, so they don't derive the vendored serde);
                // join them into one {"events":[...]} line.
                let mut body = String::from("{\"events\":[");
                for (i, event) in flight::snapshot().iter().enumerate() {
                    if i > 0 {
                        body.push(',');
                    }
                    body.push_str(&event.to_json_line());
                }
                body.push_str("]}");
                Reply::Line(body, None)
            }
            Some("shutdown") if shared.allow_shutdown => {
                metrics.stats.inc();
                Reply::ShutdownAck(
                    "{\"ok\":\"shutting down: draining in-flight connections\"}".to_string(),
                )
            }
            Some("shutdown") => {
                err_line("shutdown disabled: start the server with --allow-shutdown".into())
            }
            // Fault-injection hook for the isolation tests; rides the
            // same opt-in flag as shutdown.
            Some("panic") if shared.allow_shutdown => panic!("induced panic via control command"),
            Some(other) => {
                unknown_cmd(format!("unknown command `{other}`: known commands are {KNOWN_CMDS}"))
            }
            None => unknown_cmd(format!(
                "unknown command: `cmd` must be a string naming one of {KNOWN_CMDS}"
            )),
        };
    }
    match RtpQuery::from_value(&value) {
        Err(e) => err_line(format!("bad request: {e}")),
        Ok(query) if query.orders.is_empty() => err_line("bad request: empty order set".into()),
        Ok(query) => {
            // A wrong courier must be an error, not a silent
            // courier-0 prediction served as success.
            let Some(courier) = ctx.dataset.couriers.get(query.courier_id) else {
                return err_line(format!(
                    "unknown courier_id {} (dataset has {} couriers)",
                    query.courier_id,
                    ctx.dataset.couriers.len()
                ));
            };
            let (prediction, mut stages) = match predict_query(ctx, line, courier, &query, trace_id)
            {
                Ok(p) => p,
                Err(e) => return err_line(e),
            };
            let pred_done = Instant::now();
            let app = match apply_prediction(&query, &prediction) {
                Ok(app) => app,
                Err(e) => return err_line(format!("internal error: {e}")),
            };
            let body = serde_json::to_string(&ServeBody {
                eta_minutes: app.etas.iter().map(|e| e.eta_minutes).collect(),
                sorted_orders: app.sorted_orders,
                aoi_sequence: app.aoi_sequence,
            })
            .expect("serialise response");
            // The write stage (as echoed) is reply construction: apply
            // + serialize. The socket write is folded into the
            // histogram sample by the connection loop afterwards.
            let ser_us = pred_done.elapsed().as_micros() as u64;
            stages.write_us = ser_us;
            // The full handle — parse, predict, serialize — measured
            // once: the histogram sample and the latency_ms field are
            // the same number by construction. Every stage is a
            // disjoint sub-interval of this window, so the breakdown
            // sums to ≤ latency_us.
            let latency_us = (t0.elapsed().as_micros() as u64).max(1);
            metrics.latency_us.record(latency_us);
            metrics.route_len.record(query.orders.len() as u64);
            metrics.requests.inc();
            metrics.record_stages(&stages);
            match ctx.service.numerics() {
                Numerics::Exact => metrics.req_exact.inc(),
                Numerics::Fast => metrics.req_fast.inc(),
                Numerics::Quantized => metrics.req_quantized.inc(),
            }
            flight::record(flight::Kind::Request, "serve.request", trace_id, || {
                format!(
                    "courier={} orders={} latency_us={latency_us}",
                    query.courier_id,
                    query.orders.len()
                )
            });
            shared.refresh_pool(&ctx.service, &ctx.pool_last);
            let latency_ms = latency_us as f64 / 1000.0;
            // A client that sent "trace": true gets the id and the
            // stage breakdown echoed; otherwise the reply bytes are
            // exactly the untraced shape.
            let traced = matches!(value.get("trace"), Some(serde::Value::Bool(true)));
            let trace_tag = if traced {
                format!(",\"trace_id\":{trace_id},\"stages\":{}", stages.to_json())
            } else {
                String::new()
            };
            // Splice latency into the serialized body ({"a":.. ->
            // {"latency_ms":X,"a":..): field order is free in JSON.
            // Non-default numerics tiers also tag the reply so a client
            // can tell approximate answers apart; the default tier
            // keeps the exact reply shape of earlier versions.
            match ctx.service.numerics() {
                Numerics::Exact => Reply::Line(
                    format!("{{\"latency_ms\":{latency_ms}{trace_tag},{}", &body[1..]),
                    Some(ser_us),
                ),
                tier => Reply::Line(
                    format!(
                        "{{\"latency_ms\":{latency_ms},\"numerics\":\"{tier}\"{trace_tag},{}",
                        &body[1..]
                    ),
                    Some(ser_us),
                ),
            }
        }
    }
}

/// The Inference (+ Feature Extraction) Layer for one query, routed by
/// serve mode:
///
/// * batching off — the worker's own lane end to end (graph build +
///   full forward on its pooled tape);
/// * batching on, cache hit (same courier, byte-identical line) — the
///   worker replays the cached encoder activations through the
///   decoders on its own tape; no graph build, no encoder forward;
/// * batching on, cache miss — the worker builds the graph, ships it
///   to the inference engine, blocks on its reply channel, and installs
///   the returned activations in the cache (replacing a stale entry
///   counts as `serve.cache.invalidations`).
///
/// All three routes produce bit-identical predictions; see the module
/// docs.
///
/// Alongside the prediction, returns the request's [`StageBreakdown`]
/// with everything but `write_us` filled in: the single-thread routes
/// (unbatched, cache hit) have `queue_wait == batch_form == demux == 0`
/// and `forward` covering the local forward; the batched route carries
/// the engine-stamped queue/batch/forward durations plus the demux
/// latency back to this worker.
fn predict_query(
    ctx: &WorkerCtx<'_>,
    line: &str,
    courier: &rtp_sim::Courier,
    query: &RtpQuery,
    trace_id: u64,
) -> Result<(Prediction, StageBreakdown), String> {
    let shared = ctx.shared;
    let metrics = &shared.metrics;
    let mut stages = StageBreakdown::default();
    let Some(infer_tx) = &ctx.infer_tx else {
        let graph = ctx.service.build_graph(&ctx.dataset.city, courier, query);
        let t0 = Instant::now();
        let prediction = ctx.service.predict(&graph);
        stages.forward_us = t0.elapsed().as_micros() as u64;
        return Ok((prediction, stages));
    };
    let cached = shared
        .lock_cache()
        .expect("batching implies a cache")
        .get(&query.courier_id)
        .filter(|e| e.fingerprint == line)
        .cloned();
    if let Some(entry) = cached {
        metrics.cache_hits.inc();
        shared.refresh_cache_rate();
        let t0 = Instant::now();
        let prediction = ctx.service.predict_encoded(&entry.graph, &entry.enc);
        stages.forward_us = t0.elapsed().as_micros() as u64;
        return Ok((prediction, stages));
    }
    metrics.cache_misses.inc();
    shared.refresh_cache_rate();
    let graph = ctx.service.build_graph(&ctx.dataset.city, courier, query);
    let (reply_tx, reply_rx) = channel();
    infer_tx
        .send(InferJob { graph, trace_id, enqueued: Instant::now(), reply: reply_tx })
        .map_err(|_| "internal error: inference engine unavailable".to_string())?;
    let engine_reply = reply_rx
        .recv()
        .map_err(|_| "internal error: batched inference failed for this request".to_string())?;
    let EngineReply { graph, prediction, enc, queue_wait_us, batch_form_us, forward_us, finished } =
        engine_reply;
    stages.queue_wait_us = queue_wait_us;
    stages.batch_form_us = batch_form_us;
    stages.forward_us = forward_us;
    stages.demux_us = finished.elapsed().as_micros() as u64;
    let entry = Arc::new(CacheEntry { fingerprint: line.to_string(), graph, enc });
    let mut cache = shared.lock_cache().expect("batching implies a cache");
    if let Some(old) = cache.insert(query.courier_id, entry) {
        // Same-fingerprint replacement is a concurrent-miss race, not
        // a route-state change.
        if old.fingerprint != line {
            metrics.cache_invalidations.inc();
        }
    }
    Ok((prediction, stages))
}
