//! The TCP inference server: the closest in-repo analog of the paper's
//! §VI online deployment (Fig. 7). Speaks newline-delimited JSON:
//! every request line is an [`rtp_sim::RtpQuery`], every response line
//! a [`ServeResponse`].
//!
//! Inference runs through [`RtpService`]'s pooled no-grad tape: the
//! forward pass records no gradients or op payloads, and after the
//! first request every tensor buffer comes from the tape's free-list
//! pool, so steady-state serving is allocation-free in the hot loop.
//!
//! # Telemetry
//!
//! Each server owns a private [`rtp_obs::Registry`] (so concurrent
//! servers in one process do not bleed into each other) recording:
//!
//! * `serve.requests` / `serve.errors` / `serve.stats` — counters;
//! * `serve.latency_us` — full-handle latency histogram. The timer
//!   starts before the request line is parsed and stops after the
//!   response body is serialized, and the **same** measurement becomes
//!   the response's `latency_ms` field, so the field and the histogram
//!   can never disagree;
//! * `serve.route_len` — orders-per-request histogram;
//! * `tensor.pool.hits` / `.misses` / `.hit_rate` — the inference
//!   tape's buffer-pool stats, refreshed after every prediction.
//!
//! An in-band `{"cmd":"stats"}` request line returns the registry
//! snapshot (merged with the process-global registry, which carries
//! the matmul-kernel counters) as one JSON line; on shutdown the
//! server prints served/error counts and p50/p95/p99 latency.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Instant;

use m2g4rtp::M2G4Rtp;
use rtp_eval::service::RtpService;
use rtp_obs::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
use rtp_sim::{Dataset, RtpQuery};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One served prediction, mirroring the two application-layer products
/// (Intelligent Order Sorting and Minute-Level ETA).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// Per-order ETA in minutes (aligned with the query's order index).
    pub eta_minutes: Vec<f32>,
    /// Server-side handling latency (parse → predict → serialize), ms.
    /// Identical to the sample recorded in the `serve.latency_us`
    /// histogram for this request.
    pub latency_ms: f64,
}

/// The serialized part of a response that the latency timer must cover;
/// `latency_ms` is spliced in afterwards (same field set as
/// [`ServeResponse`]).
#[derive(Debug, Serialize)]
struct ServeBody {
    sorted_orders: Vec<usize>,
    aoi_sequence: Vec<usize>,
    eta_minutes: Vec<f32>,
}

/// An error reply for malformed requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeError {
    /// What went wrong.
    pub error: String,
}

/// An in-band control request (`{"cmd":"stats"}`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ControlCmd {
    cmd: String,
}

/// Flattened percentile view of one histogram in a [`StatsReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramStats {
    /// Recorded samples.
    pub count: u64,
    /// Sum of raw values.
    pub sum: u64,
    /// Largest raw value.
    pub max: u64,
    /// Mean raw value.
    pub mean: f64,
    /// Quantized-exact percentiles (bucket floors, ≤1/16 resolution).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramStats {
    fn from_snapshot(h: &HistogramSnapshot) -> Self {
        Self {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50),
            p90: h.percentile(0.90),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// The reply to `{"cmd":"stats"}`: a registry snapshot in NDJSON-
/// friendly form (one line, deserializable with the same vendored
/// serde the rest of the protocol uses).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReply {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name, flattened to percentiles.
    pub histograms: BTreeMap<String, HistogramStats>,
}

impl StatsReply {
    /// Flattens a merged registry snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        Self {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramStats::from_snapshot(h)))
                .collect(),
        }
    }
}

/// The per-server metric handles (all on the server's own registry).
struct ServeMetrics {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    stats: Arc<Counter>,
    latency_us: Arc<Histogram>,
    route_len: Arc<Histogram>,
    pool_hits: Arc<Gauge>,
    pool_misses: Arc<Gauge>,
    pool_hit_rate: Arc<Gauge>,
}

impl ServeMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            stats: registry.counter("serve.stats"),
            latency_us: registry.histogram("serve.latency_us"),
            route_len: registry.histogram("serve.route_len"),
            pool_hits: registry.gauge("tensor.pool.hits"),
            pool_misses: registry.gauge("tensor.pool.misses"),
            pool_hit_rate: registry.gauge("tensor.pool.hit_rate"),
        }
    }

    fn refresh_pool(&self, service: &RtpService) {
        let (hits, misses) = service.pool_stats();
        self.pool_hits.set(hits as f64);
        self.pool_misses.set(misses as f64);
        let total = hits + misses;
        self.pool_hit_rate.set(if total == 0 { 0.0 } else { hits as f64 / total as f64 });
    }
}

/// Binds a listener, prints `listening on <addr>` to `out`, and serves
/// until `max_requests` requests have been answered (0 = forever).
/// Each connection may pipeline many request lines. On exit prints a
/// telemetry summary (request/error counts, latency percentiles).
pub fn serve(
    model: M2G4Rtp,
    dataset: Dataset,
    port: u16,
    max_requests: usize,
    out: &mut dyn Write,
) -> std::io::Result<i32> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    writeln!(out, "listening on {}", listener.local_addr()?)?;
    out.flush()?;
    let service = RtpService::new(model);
    let registry = Registry::new();
    let metrics = ServeMetrics::new(&registry);
    let mut served = 0usize;
    for stream in listener.incoming() {
        let stream = stream?;
        served += handle_connection(
            &service,
            &dataset,
            stream,
            max_requests.saturating_sub(served),
            &metrics,
            &registry,
        )?;
        if max_requests != 0 && served >= max_requests {
            break;
        }
    }
    let snap = registry.snapshot();
    let lat = snap.histograms.get("serve.latency_us");
    let ms = |v: u64| v as f64 / 1000.0;
    writeln!(
        out,
        "served {served} request(s): {} ok, {} error(s), {} stats",
        metrics.requests.get(),
        metrics.errors.get(),
        metrics.stats.get()
    )?;
    if let Some(lat) = lat.filter(|l| l.count() > 0) {
        writeln!(
            out,
            "latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
            ms(lat.percentile(0.50)),
            ms(lat.percentile(0.95)),
            ms(lat.percentile(0.99)),
            ms(lat.max())
        )?;
    }
    Ok(0)
}

/// Handles one connection; returns the number of requests answered.
fn handle_connection(
    service: &RtpService,
    dataset: &Dataset,
    stream: TcpStream,
    budget: usize,
    metrics: &ServeMetrics,
    registry: &Registry,
) -> std::io::Result<usize> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut served = 0usize;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(service, dataset, &line, metrics, registry);
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        served += 1;
        if budget != 0 && served >= budget {
            break;
        }
    }
    Ok(served)
}

/// Produces the reply line for one request line, recording telemetry.
fn handle_line(
    service: &RtpService,
    dataset: &Dataset,
    line: &str,
    metrics: &ServeMetrics,
    registry: &Registry,
) -> String {
    let t0 = Instant::now();
    // Control plane: `{"cmd":"stats"}` (an RtpQuery has no `cmd` key).
    if let Ok(ctl) = serde_json::from_str::<ControlCmd>(line) {
        return if ctl.cmd == "stats" {
            metrics.stats.inc();
            metrics.refresh_pool(service);
            let mut snap = registry.snapshot();
            // The global registry carries process-wide metrics (matmul
            // kernel counters, training gauges); merging demonstrates
            // snapshot associativity in anger.
            snap.merge(&rtp_obs::metrics::global().snapshot());
            serde_json::to_string(&StatsReply::from_snapshot(&snap)).expect("serialise stats")
        } else {
            metrics.errors.inc();
            serde_json::to_string(&ServeError { error: format!("unknown cmd `{}`", ctl.cmd) })
                .expect("serialise error")
        };
    }
    match serde_json::from_str::<RtpQuery>(line) {
        Err(e) => {
            metrics.errors.inc();
            serde_json::to_string(&ServeError { error: format!("bad request: {e}") })
                .expect("serialise error")
        }
        Ok(query) if query.orders.is_empty() => {
            metrics.errors.inc();
            serde_json::to_string(&ServeError { error: "bad request: empty order set".into() })
                .expect("serialise error")
        }
        Ok(query) => {
            let courier = dataset.couriers.get(query.courier_id).unwrap_or(&dataset.couriers[0]);
            let resp = service.handle(&dataset.city, courier, &query);
            let body = serde_json::to_string(&ServeBody {
                sorted_orders: resp.sorted_orders,
                aoi_sequence: resp.aoi_sequence,
                eta_minutes: resp.etas.iter().map(|e| e.eta_minutes).collect(),
            })
            .expect("serialise response");
            // The full handle — parse, predict, serialize — measured
            // once: the histogram sample and the latency_ms field are
            // the same number by construction.
            let latency_us = (t0.elapsed().as_micros() as u64).max(1);
            metrics.latency_us.record(latency_us);
            metrics.route_len.record(query.orders.len() as u64);
            metrics.requests.inc();
            metrics.refresh_pool(service);
            let latency_ms = latency_us as f64 / 1000.0;
            // Splice latency into the serialized body ({"a":.. ->
            // {"latency_ms":X,"a":..): field order is free in JSON.
            format!("{{\"latency_ms\":{latency_ms},{}", &body[1..])
        }
    }
}
