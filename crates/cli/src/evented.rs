//! Evented (epoll) connection front end for the serve stack: one
//! reactor thread multiplexes every client socket through a raw,
//! hand-rolled `epoll` readiness loop — no `libc` crate, no new deps,
//! the same vendoring policy as the rest of the workspace — and hands
//! complete NDJSON request lines to the existing worker pool.
//!
//! # Why a readiness loop
//!
//! The thread-per-connection front end spends a worker thread (and a
//! 50 ms polling read timeout) per open connection, which caps the
//! server at "workers" concurrent clients and burns wakeups while they
//! idle. Here the reactor owns *all* sockets: an idle connection costs
//! one `epoll` registration and a ~100-byte [`EvConn`] — no thread, no
//! timer churn — so thousands of open-but-quiet couriers are free, and
//! the worker pool only ever sees connections that have a complete
//! request line ready.
//!
//! # Architecture
//!
//! * **Epoll** ([`Epoll`]): level-triggered `EPOLLIN | EPOLLRDHUP` on
//!   the nonblocking listener and every accepted socket, via direct
//!   `extern "C"` declarations of `epoll_create1` / `epoll_ctl` /
//!   `epoll_wait`.
//! * **Line assembly** ([`LineBuffer`]): per-connection byte buffers
//!   that survive partial reads — a client may dribble one request
//!   byte-per-write across many readiness events and the line is
//!   assembled exactly once, with UTF-8 validated per completed line
//!   (matching the blocking front end's `read_line` semantics).
//! * **Dispatch** ([`EvConn`]): completed lines are queued on the
//!   connection; the *first* line to land on an unclaimed connection
//!   sends the connection handle to the worker pool, and the claiming
//!   worker drains the queue in FIFO order before releasing its claim.
//!   One worker per connection at a time ⇒ pipelined replies keep
//!   their request order, which is what the byte-identity tests pin.
//! * **Idle reaping** ([`TimerWheel`]): a hashed timer wheel with lazy
//!   cancellation. Activity never touches the wheel (it only bumps the
//!   connection's atomic last-activity stamp); when a deadline fires
//!   the reactor re-checks the stamp and either reaps the connection
//!   (`EventSink::conn_timeout`) or reschedules it from its true idle
//!   start. `epoll_wait`'s timeout is the wheel's next due tick — with
//!   no timers armed the reactor blocks indefinitely and is woken only
//!   by readiness (or the shutdown poke).
//!
//! The reactor itself never parses JSON and never writes replies:
//! workers write directly to the (shared, nonblocking) socket and close
//! it by marking the connection dead + `shutdown(2)`, which surfaces as
//! a readiness event back on the reactor for deregistration — a
//! single-owner cleanup protocol with no fd ownership transfer.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rtp_obs::TraceCtx;

// ---------------------------------------------------------------------------
// Raw epoll bindings (x86-64 / aarch64 Linux ABI, no libc crate)
// ---------------------------------------------------------------------------

/// `struct epoll_event` exactly as the kernel ABI lays it out on
/// x86-64: packed, 12 bytes, `data` carrying our connection token.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLLIN: u32 = 0x001;
const EPOLLRDHUP: u32 = 0x2000;

/// Thin RAII wrapper over an epoll instance. All registrations are
/// level-triggered `EPOLLIN | EPOLLRDHUP` with a caller-chosen `u64`
/// token: level triggering means a socket with unread bytes re-fires
/// on the next `wait`, so the reactor may stop reading a hot
/// connection early (fairness) without losing data.
struct Epoll {
    epfd: i32,
}

impl Epoll {
    fn new() -> std::io::Result<Self> {
        // SAFETY: plain syscall wrapper; no pointers involved.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self { epfd })
    }

    fn add(&self, fd: RawFd, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent { events: EPOLLIN | EPOLLRDHUP, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn del(&self, fd: RawFd) {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `add`; a failed DEL (fd already closed) is
        // harmless — the kernel removed the registration with the fd.
        unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
    }

    /// Blocks until readiness or `timeout` (None = forever), appending
    /// `(token, events)` pairs to `out`. EINTR retries internally.
    fn wait(&self, out: &mut Vec<(u64, u32)>, timeout: Option<Duration>) -> std::io::Result<()> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 0.4 ms residue does not busy-spin.
            Some(t) => t.as_millis().min(i32::MAX as u128) as i32 + i32::from(!t.is_zero()),
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; 128];
        loop {
            // SAFETY: `buf` is a valid, writable array of maxevents
            // entries for the duration of the call.
            let n =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                out.push((ev.data, ev.events));
            }
            return Ok(());
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: epfd is a valid fd owned by this wrapper.
        unsafe { close(self.epfd) };
    }
}

// ---------------------------------------------------------------------------
// SIGHUP (model-reload signal), same no-libc vendoring policy as epoll
// ---------------------------------------------------------------------------

const SIGHUP: i32 = 1;

/// Process-wide count of SIGHUPs received since the handler was
/// installed. The serve layer polls this and reloads `--model` paths
/// when it advances — the handler itself never touches server state.
static SIGHUP_COUNT: AtomicU64 = AtomicU64::new(0);

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Async-signal-safe handler: a single lock-free counter bump. All
/// actual reload work happens on a normal thread that watches
/// [`sighup_count`].
extern "C" fn sighup_handler(_signum: i32) {
    SIGHUP_COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Installs the SIGHUP handler once per process (idempotent). Without
/// this, SIGHUP keeps its default disposition and terminates the
/// process — so it is only installed when a server actually has model
/// paths to re-read.
pub fn install_sighup_handler() {
    static INSTALLED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    INSTALLED.get_or_init(|| {
        // SAFETY: `sighup_handler` is async-signal-safe (one relaxed
        // atomic add, no allocation, no locks), and `signal` replacing
        // the default disposition is the documented use of the call.
        unsafe { signal(SIGHUP, sighup_handler as *const () as usize) };
    });
}

/// SIGHUPs observed so far (0 until [`install_sighup_handler`] runs
/// and a signal arrives).
pub fn sighup_count() -> u64 {
    SIGHUP_COUNT.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Wheel slot count; deadlines further out than `SLOTS` ticks hash onto
/// a slot they share with nearer deadlines and are skipped (not fired)
/// until their own tick comes up.
const WHEEL_SLOTS: u64 = 64;

/// A hashed timer wheel over coarse ticks. `schedule` is O(1);
/// `expired` advances the cursor one slot per elapsed tick and drains
/// only entries whose deadline tick has actually passed. There is no
/// `cancel`: the serve layer reschedules or drops tokens when they
/// fire (lazy cancellation), which keeps activity — the hot path — off
/// the wheel entirely.
pub struct TimerWheel {
    slots: Vec<Vec<(u64, u64)>>,
    tick: Duration,
    origin: Instant,
    /// Next tick index to drain.
    cursor: u64,
    /// Armed entries across all slots.
    len: usize,
}

impl TimerWheel {
    /// Creates a wheel with the given tick granularity, anchored at
    /// `now`.
    pub fn new(tick: Duration, now: Instant) -> Self {
        let tick = tick.max(Duration::from_millis(1));
        Self { slots: vec![Vec::new(); WHEEL_SLOTS as usize], tick, origin: now, cursor: 0, len: 0 }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        (at.saturating_duration_since(self.origin).as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Arms `token` to fire on the first tick boundary at or after its
    /// deadline (rounding up: a timer never fires early, and fires at
    /// most one tick late).
    pub fn schedule(&mut self, token: u64, deadline: Instant) {
        // Round up, and never schedule into an already-drained tick:
        // late entries go off on the next drain instead of being
        // silently orphaned behind the cursor.
        let t = (self.tick_of(deadline) + 1).max(self.cursor);
        self.slots[(t % WHEEL_SLOTS) as usize].push((token, t));
        self.len += 1;
    }

    /// How long `epoll_wait` may block before the next armed deadline
    /// is due; `None` when nothing is armed.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        // Earliest possible due time is the end of the cursor tick;
        // scanning for the true minimum would be O(len) per loop
        // iteration for no gain — a spurious wakeup just drains zero
        // entries and re-blocks. The tick index is a u64 (past
        // `u32::MAX` after ~50 days at the 1 ms floor), so the offset
        // is computed in nanoseconds rather than `Duration * u32`,
        // which would wrap the index and send wakeups into the past.
        let due_ns = (self.cursor as u128 + 1) * self.tick.as_nanos();
        let elapsed_ns = now.saturating_duration_since(self.origin).as_nanos();
        let remaining = due_ns.saturating_sub(elapsed_ns).min(u64::MAX as u128) as u64;
        Some(Duration::from_nanos(remaining))
    }

    /// Advances through every tick up to `now` and returns the tokens
    /// whose deadlines passed, in firing order.
    pub fn expired(&mut self, now: Instant) -> Vec<u64> {
        let now_tick = self.tick_of(now);
        if self.len == 0 {
            // Fast-forward an idle wheel so a long quiet period does
            // not cost one loop iteration per elapsed tick.
            self.cursor = self.cursor.max(now_tick);
            return Vec::new();
        }
        let mut due = Vec::new();
        while self.cursor <= now_tick {
            let slot = (self.cursor % WHEEL_SLOTS) as usize;
            self.slots[slot].retain(|&(token, deadline_tick)| {
                if deadline_tick <= now_tick {
                    due.push(token);
                    false
                } else {
                    true // a later round of this slot
                }
            });
            self.cursor += 1;
        }
        self.len -= due.len();
        due
    }

    /// Number of armed entries.
    pub fn armed(&self) -> usize {
        self.len
    }
}

// ---------------------------------------------------------------------------
// Per-connection line assembly
// ---------------------------------------------------------------------------

/// Accumulates raw socket bytes and yields complete `\n`-terminated
/// lines; a partial trailing line survives until more bytes (or EOF)
/// arrive. UTF-8 is validated per completed line so the error maps to
/// exactly one connection, like the blocking front end's `read_line`.
#[derive(Default)]
pub struct LineBuffer {
    partial: Vec<u8>,
}

impl LineBuffer {
    /// Feeds one chunk of socket bytes; returns every line completed by
    /// it (without the terminator). `Err` means a completed line was
    /// not valid UTF-8 — an I/O-class error for the caller to count.
    pub fn push(&mut self, bytes: &[u8]) -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        let mut rest = bytes;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            self.partial.extend_from_slice(head);
            rest = &tail[1..];
            let raw = std::mem::take(&mut self.partial);
            let line = String::from_utf8(raw).map_err(|_| {
                std::io::Error::new(ErrorKind::InvalidData, "request line is not valid UTF-8")
            })?;
            lines.push(line);
        }
        self.partial.extend_from_slice(rest);
        Ok(lines)
    }

    /// Flushes the trailing unterminated line at EOF, if any.
    pub fn take_partial(&mut self) -> std::io::Result<Option<String>> {
        if self.partial.is_empty() {
            return Ok(None);
        }
        let raw = std::mem::take(&mut self.partial);
        String::from_utf8(raw).map(Some).map_err(|_| {
            std::io::Error::new(ErrorKind::InvalidData, "request line is not valid UTF-8")
        })
    }

    /// Bytes buffered toward an incomplete line.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// The queue side of a connection: completed request lines awaiting a
/// worker, plus the claim that serializes workers per connection.
#[derive(Default)]
struct ConnQueue {
    lines: VecDeque<String>,
    /// A worker is currently draining this queue; new lines must not
    /// dispatch a second one (reply order!).
    claimed: bool,
}

/// One evented connection, shared between the reactor (reads, timers)
/// and at most one worker at a time (line handling, reply writes).
pub struct EvConn {
    stream: TcpStream,
    /// Per-connection trace context; the claiming worker mints request
    /// ids from it, so pipelined ids stay consecutive.
    pub trace: Mutex<TraceCtx>,
    q: Mutex<ConnQueue>,
    /// Set by a worker to close the connection (budget spent, write
    /// failure, panic, shutdown ack). The reactor treats subsequent
    /// readiness on a dead connection as plain cleanup, not an error.
    dead: AtomicBool,
    /// Microseconds since the reactor's origin instant of the last
    /// read or reply write — the idle-reaping stamp.
    last_activity_us: AtomicU64,
    origin: Instant,
}

impl EvConn {
    fn new(stream: TcpStream, trace: TraceCtx, origin: Instant) -> Self {
        let now_us = origin.elapsed().as_micros() as u64;
        Self {
            stream,
            trace: Mutex::new(trace),
            q: Mutex::new(ConnQueue::default()),
            dead: AtomicBool::new(false),
            last_activity_us: AtomicU64::new(now_us),
            origin,
        }
    }

    /// Test-only constructor for the serve layer's unit tests (the
    /// reactor is the sole production construction site).
    #[cfg(test)]
    pub(crate) fn for_test(stream: TcpStream) -> Self {
        Self::new(stream, TraceCtx::at_accept(), Instant::now())
    }

    fn lock_q(&self) -> MutexGuard<'_, ConnQueue> {
        self.q.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Queues completed lines; returns `true` iff the caller must
    /// dispatch this connection to the worker pool (it was unclaimed).
    fn push_lines(&self, lines: Vec<String>) -> bool {
        let mut q = self.lock_q();
        if self.is_dead() {
            return false;
        }
        q.lines.extend(lines);
        if q.claimed || q.lines.is_empty() {
            false
        } else {
            q.claimed = true;
            true
        }
    }

    /// Pops the next queued line for the claiming worker; releases the
    /// claim and returns `None` when the queue is empty (or the
    /// connection died). The pop and the release are one critical
    /// section, so a line pushed concurrently either lands in this
    /// drain or re-dispatches the connection — never neither.
    pub fn pop_line(&self) -> Option<String> {
        let mut q = self.lock_q();
        if self.is_dead() {
            q.lines.clear();
            q.claimed = false;
            return None;
        }
        match q.lines.pop_front() {
            Some(line) => Some(line),
            None => {
                q.claimed = false;
                None
            }
        }
    }

    /// End-of-quantum check for a claiming worker: if queued lines
    /// remain, the claim is *kept* and `true` is returned — the caller
    /// must hand the connection (claim and all) back to the worker
    /// pool's queue. Otherwise the claim is released and `false` comes
    /// back, exactly like a drained [`EvConn::pop_line`]. One critical
    /// section, so a line pushed concurrently either stays for the
    /// re-dispatched drain or re-dispatches the connection itself —
    /// never neither.
    pub fn yield_claim(&self) -> bool {
        let mut q = self.lock_q();
        if self.is_dead() {
            q.lines.clear();
            q.claimed = false;
            return false;
        }
        if q.lines.is_empty() {
            q.claimed = false;
            false
        } else {
            true
        }
    }

    /// Writes one reply, riding out `WouldBlock` on the nonblocking
    /// socket (replies are small; the retry loop only spins when the
    /// client stops draining its receive window).
    pub fn write_reply(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut written = 0;
        while written < bytes.len() {
            match (&self.stream).write(&bytes[written..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => written += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.touch();
        Ok(())
    }

    /// Marks the connection dead and shuts the socket down; the
    /// resulting readiness event makes the reactor deregister it. Safe
    /// to call from either side, idempotent.
    pub fn close(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Bumps the idle stamp to now.
    pub fn touch(&self) {
        self.last_activity_us.store(self.origin.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// Lazy-cancellation verdict when this connection's idle deadline
    /// fires: `Some(new_deadline)` to rearm (claimed, queued work, or
    /// activity since the deadline was scheduled), `None` to reap.
    fn idle_verdict(&self, idle: Duration, now: Instant) -> Option<Instant> {
        {
            let q = self.lock_q();
            if q.claimed || !q.lines.is_empty() {
                return Some(now + idle);
            }
        }
        let last =
            self.origin + Duration::from_micros(self.last_activity_us.load(Ordering::Relaxed));
        if now.saturating_duration_since(last) >= idle {
            None
        } else {
            Some(last + idle)
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

/// What the reactor needs from the serve layer: lifecycle accounting
/// and the hand-off into the worker pool. All counting of *client*
/// connections happens through this trait, which is what makes the
/// shutdown poke structurally invisible — the reactor checks the
/// shutdown flag before accepting, so the poke is never accepted,
/// never counted, and never mints a trace context.
pub trait EventSink: Sync {
    /// Observed (or flipped elsewhere) shutdown flag.
    fn shutting_down(&self) -> bool;
    /// A real client connection was accepted and registered.
    fn conn_opened(&self);
    /// A registered connection was deregistered (EOF, error, reap, or
    /// server shutdown with the connection still open).
    fn conn_closed(&self);
    /// A read-side I/O failure on a live connection.
    fn conn_error(&self);
    /// An idle connection was reaped by the timer wheel.
    fn conn_timeout(&self);
    /// An accepted connection could not be handed to the worker pool
    /// (pool already drained); the socket is closed unanswered.
    fn dropped_dispatch(&self);
    /// Hands a connection with queued lines to the worker pool.
    /// Returns `false` when the pool is gone.
    fn dispatch(&self, conn: Arc<EvConn>) -> bool;
}

/// Reactor-side state for one registered connection.
struct ConnIo {
    conn: Arc<EvConn>,
    lb: LineBuffer,
}

/// Reactor tick granularity: the timer wheel's resolution (idle reaps
/// land within one tick after the deadline) and the fairness cap
/// period. Chosen to match the old front end's polling interval so
/// test timing envelopes carry over.
const TICK: Duration = Duration::from_millis(50);

/// Per-readiness-event read budget before yielding back to the loop
/// (level triggering re-fires the socket if bytes remain), so one
/// firehose client cannot starve the rest of a wait batch.
const READ_CHUNKS_PER_EVENT: usize = 16;

const LISTENER_TOKEN: u64 = 0;

/// Runs the evented accept/read loop until shutdown. Blocks the
/// calling thread (the serve front end runs it where the blocking
/// acceptor used to live). Returns `Err` only for reactor-fatal
/// conditions (epoll itself failing), never for per-connection trouble.
pub fn run(
    listener: &TcpListener,
    idle_timeout: Option<Duration>,
    sink: &dyn EventSink,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), LISTENER_TOKEN)?;

    let origin = Instant::now();
    let mut wheel = TimerWheel::new(TICK, origin);
    let mut conns: HashMap<u64, ConnIo> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut events: Vec<(u64, u32)> = Vec::new();

    'reactor: loop {
        if sink.shutting_down() {
            break;
        }
        let timeout = wheel.next_wakeup(Instant::now());
        epoll.wait(&mut events, timeout)?;
        if sink.shutting_down() {
            break;
        }
        for &(token, _ev) in &events {
            if token == LISTENER_TOKEN {
                if accept_ready(
                    listener,
                    &epoll,
                    &mut conns,
                    &mut next_token,
                    &mut wheel,
                    idle_timeout,
                    origin,
                    sink,
                ) {
                    break 'reactor;
                }
            } else {
                read_ready(token, &epoll, &mut conns, sink);
            }
        }
        let now = Instant::now();
        for token in wheel.expired(now) {
            let Some(io) = conns.get(&token) else { continue };
            if io.conn.is_dead() {
                // A dead connection's readiness event is already on its
                // way; cleanup happens there.
                continue;
            }
            match io.conn.idle_verdict(idle_timeout.unwrap_or(TICK), now) {
                Some(deadline) => wheel.schedule(token, deadline),
                None => {
                    sink.conn_timeout();
                    remove_conn(token, &epoll, &mut conns, sink);
                }
            }
        }
    }

    // Shutdown: deregister every remaining connection. Workers may
    // still hold claims and finish writing in-flight replies — the
    // socket stays open until the last Arc drops.
    let tokens: Vec<u64> = conns.keys().copied().collect();
    for token in tokens {
        remove_conn(token, &epoll, &mut conns, sink);
    }
    Ok(())
}

/// Accepts until `WouldBlock`. Returns `true` when shutdown was
/// observed mid-accept (the poke path): the pending socket — which is
/// the poke itself, or a client racing the shutdown — is dropped
/// without being counted or dispatched.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, ConnIo>,
    next_token: &mut u64,
    wheel: &mut TimerWheel,
    idle_timeout: Option<Duration>,
    origin: Instant,
    sink: &dyn EventSink,
) -> bool {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if sink.shutting_down() {
                    return true;
                }
                if stream.set_nonblocking(true).is_err() {
                    sink.conn_error();
                    continue;
                }
                // NDJSON replies are small; without this, Nagle +
                // delayed ACK adds ~40 ms per pipelined round trip.
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                let fd = stream.as_raw_fd();
                let conn = Arc::new(EvConn::new(stream, TraceCtx::at_accept(), origin));
                if epoll.add(fd, token).is_err() {
                    sink.conn_error();
                    continue;
                }
                sink.conn_opened();
                if let Some(idle) = idle_timeout {
                    wheel.schedule(token, Instant::now() + idle);
                }
                conns.insert(token, ConnIo { conn, lb: LineBuffer::default() });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                sink.conn_error();
                return false;
            }
        }
    }
}

/// Drains readable bytes from one connection (bounded per event),
/// assembling lines and dispatching the connection to the pool when
/// its queue goes non-empty.
fn read_ready(token: u64, epoll: &Epoll, conns: &mut HashMap<u64, ConnIo>, sink: &dyn EventSink) {
    let Some(io) = conns.get_mut(&token) else { return };
    if io.conn.is_dead() {
        // Worker-initiated close: the shutdown(2) woke us for cleanup.
        remove_conn(token, epoll, conns, sink);
        return;
    }
    let mut chunk = [0u8; 4096];
    for _ in 0..READ_CHUNKS_PER_EVENT {
        match (&io.conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF: flush a final unterminated line, then retire.
                match io.lb.take_partial() {
                    Ok(Some(line)) => queue_lines(io, vec![line], sink),
                    Ok(None) => {}
                    Err(_) => sink.conn_error(),
                }
                remove_conn(token, epoll, conns, sink);
                return;
            }
            Ok(n) => {
                io.conn.touch();
                match io.lb.push(&chunk[..n]) {
                    Ok(lines) => {
                        if !lines.is_empty() {
                            queue_lines(io, lines, sink);
                            if io.conn.is_dead() {
                                remove_conn(token, epoll, conns, sink);
                                return;
                            }
                        }
                    }
                    Err(_) => {
                        sink.conn_error();
                        io.conn.close();
                        remove_conn(token, epoll, conns, sink);
                        return;
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                // Client reset mid-stream: a real I/O failure unless a
                // worker already retired the connection.
                if !io.conn.is_dead() {
                    sink.conn_error();
                }
                remove_conn(token, epoll, conns, sink);
                return;
            }
        }
    }
    // Budget exhausted with bytes possibly left: level-triggered epoll
    // re-fires this socket on the next wait.
}

/// Pushes lines onto the connection and dispatches it if it just
/// became claimed. A failed dispatch (worker pool drained mid-run)
/// closes the connection unanswered and counts `dropped_dispatch`.
fn queue_lines(io: &ConnIo, lines: Vec<String>, sink: &dyn EventSink) {
    if io.conn.push_lines(lines) && !sink.dispatch(Arc::clone(&io.conn)) {
        sink.dropped_dispatch();
        io.conn.close();
    }
}

/// Deregisters and drops the reactor's handle on a connection.
fn remove_conn(token: u64, epoll: &Epoll, conns: &mut HashMap<u64, ConnIo>, sink: &dyn EventSink) {
    if let Some(io) = conns.remove(&token) {
        epoll.del(io.conn.stream.as_raw_fd());
        sink.conn_closed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_buffer_assembles_dribbled_bytes_and_preserves_partials() {
        let mut lb = LineBuffer::default();
        let payload = b"{\"a\":1}\n";
        // One byte per push: no line until the terminator lands.
        for &b in &payload[..payload.len() - 1] {
            assert!(lb.push(&[b]).unwrap().is_empty(), "no line before the terminator");
        }
        assert_eq!(lb.pending(), payload.len() - 1);
        let lines = lb.push(b"\n").unwrap();
        assert_eq!(lines, vec!["{\"a\":1}".to_string()]);
        assert_eq!(lb.pending(), 0);

        // Many lines in one chunk, with a trailing partial.
        let lines = lb.push(b"one\ntwo\nthr").unwrap();
        assert_eq!(lines, vec!["one".to_string(), "two".to_string()]);
        assert_eq!(lb.pending(), 3);
        let lines = lb.push(b"ee\n").unwrap();
        assert_eq!(lines, vec!["three".to_string()]);

        // EOF flush of an unterminated final line.
        assert!(lb.push(b"tail").unwrap().is_empty());
        assert_eq!(lb.take_partial().unwrap(), Some("tail".to_string()));
        assert_eq!(lb.take_partial().unwrap(), None);
    }

    #[test]
    fn line_buffer_rejects_invalid_utf8_only_on_completed_lines() {
        let mut lb = LineBuffer::default();
        // An invalid byte is harmless while the line is still partial…
        assert!(lb.push(&[0xFF]).unwrap().is_empty());
        // …and an error the moment the line completes.
        assert!(lb.push(b"\n").is_err());
        // The buffer recovers for the next line.
        assert_eq!(lb.push(b"ok\n").unwrap(), vec!["ok".to_string()]);
    }

    #[test]
    fn timer_wheel_fires_in_order_and_honours_far_deadlines() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(10);
        let mut wheel = TimerWheel::new(tick, t0);
        wheel.schedule(1, t0 + Duration::from_millis(25));
        wheel.schedule(2, t0 + Duration::from_millis(5));
        // A deadline more than WHEEL_SLOTS ticks out shares a slot with
        // nearer entries but must not fire with them.
        wheel.schedule(3, t0 + tick * (WHEEL_SLOTS as u32 + 2));
        assert_eq!(wheel.armed(), 3);

        assert_eq!(wheel.expired(t0 + Duration::from_millis(1)), Vec::<u64>::new());
        assert_eq!(wheel.expired(t0 + Duration::from_millis(12)), vec![2]);
        assert_eq!(wheel.expired(t0 + Duration::from_millis(40)), vec![1]);
        assert_eq!(wheel.armed(), 1);
        // Far entry: silent through a full rotation…
        assert_eq!(wheel.expired(t0 + tick * (WHEEL_SLOTS as u32)), Vec::<u64>::new());
        // …and due on its own tick.
        assert_eq!(wheel.expired(t0 + tick * (WHEEL_SLOTS as u32 + 3)), vec![3]);
        assert_eq!(wheel.armed(), 0);
        assert!(wheel.next_wakeup(Instant::now()).is_none(), "empty wheel never wakes the loop");
    }

    #[test]
    fn timer_wheel_rescheduling_models_lazy_cancellation() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        wheel.schedule(7, t0 + Duration::from_millis(10));
        // Fires; the caller sees recent activity and reschedules —
        // exactly the reactor's lazy-cancellation protocol.
        assert_eq!(wheel.expired(t0 + Duration::from_millis(21)), vec![7]);
        wheel.schedule(7, t0 + Duration::from_millis(50));
        assert_eq!(wheel.expired(t0 + Duration::from_millis(40)), Vec::<u64>::new());
        assert_eq!(wheel.expired(t0 + Duration::from_millis(61)), vec![7]);
    }

    #[test]
    fn late_schedule_into_a_drained_tick_still_fires() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(Duration::from_millis(10), t0);
        wheel.schedule(1, t0 + Duration::from_millis(5));
        assert_eq!(wheel.expired(t0 + Duration::from_millis(100)), vec![1]);
        // Deadline in the past relative to the cursor: must fire on the
        // next drain, not be orphaned behind the cursor.
        wheel.schedule(2, t0 + Duration::from_millis(50));
        assert_eq!(wheel.expired(t0 + Duration::from_millis(120)), vec![2]);
    }

    #[test]
    fn timer_wheel_survives_cursor_past_u32_max() {
        let t0 = Instant::now();
        let tick = Duration::from_millis(1);
        let mut wheel = TimerWheel::new(tick, t0);
        // ~58 days of simulated uptime at the 1 ms tick floor: the
        // tick index (5·10⁹) no longer fits in u32, which is exactly
        // where the old `tick * (cursor as u32 + 1)` wakeup math
        // wrapped and computed a due time deep in the past.
        let uptime = Duration::from_secs(5_000_000);
        assert!(uptime.as_millis() > u128::from(u32::MAX), "test must cross the u32 tick edge");
        // Fast-forward the idle wheel's cursor across the edge.
        assert!(wheel.expired(t0 + uptime).is_empty());
        wheel.schedule(42, t0 + uptime + Duration::from_millis(30));
        let wake = wheel.next_wakeup(t0 + uptime).expect("one entry armed");
        assert!(
            wake > Duration::ZERO,
            "wakeup must stay in the future past 2^32 ticks (a zero here busy-spins the reactor)"
        );
        assert!(wake <= tick, "earliest due time is the end of the current tick, got {wake:?}");
        // And the entry still fires on its own tick, not a wrapped one.
        assert_eq!(wheel.expired(t0 + uptime + Duration::from_millis(15)), Vec::<u64>::new());
        assert_eq!(wheel.expired(t0 + uptime + Duration::from_millis(40)), vec![42]);
        assert_eq!(wheel.armed(), 0);
    }

    #[test]
    fn conn_claim_protocol_dispatches_once_and_redispatches_after_drain() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let conn = EvConn::new(stream, TraceCtx::at_accept(), Instant::now());

        assert!(conn.push_lines(vec!["a".into()]), "first line claims");
        assert!(!conn.push_lines(vec!["b".into()]), "claimed: no second dispatch");
        assert_eq!(conn.pop_line(), Some("a".into()));
        assert_eq!(conn.pop_line(), Some("b".into()));
        assert_eq!(conn.pop_line(), None, "drained: claim released");
        assert!(conn.push_lines(vec!["c".into()]), "post-drain line re-dispatches");
        assert_eq!(conn.pop_line(), Some("c".into()));
        assert_eq!(conn.pop_line(), None);

        conn.close();
        assert!(!conn.push_lines(vec!["d".into()]), "dead connections accept no work");
        assert_eq!(conn.pop_line(), None);
    }

    #[test]
    fn yield_claim_keeps_the_claim_while_lines_remain_and_releases_when_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let conn = EvConn::new(stream, TraceCtx::at_accept(), Instant::now());

        assert!(conn.push_lines(vec!["a".into(), "b".into()]), "first lines claim");
        assert_eq!(conn.pop_line(), Some("a".into()));
        assert!(conn.yield_claim(), "queued line: claim travels with the re-dispatch");
        assert!(!conn.push_lines(vec!["c".into()]), "still claimed: no double dispatch");
        assert_eq!(conn.pop_line(), Some("b".into()), "re-dispatched drain resumes in order");
        assert_eq!(conn.pop_line(), Some("c".into()));
        assert!(!conn.yield_claim(), "empty queue: claim released like a drained pop");
        assert!(conn.push_lines(vec!["d".into()]), "released claim: next line re-dispatches");

        conn.close();
        assert!(!conn.yield_claim(), "dead connection: claim released, queue cleared");
        assert_eq!(conn.pop_line(), None);
    }
}
