//! # rtp-cli
//!
//! The command-line front end of the M²G4RTP reproduction. One binary,
//! five subcommands:
//!
//! ```text
//! rtp generate --scale quick --seed 7 --out dataset.json
//! rtp train    --dataset dataset.json --epochs 15 --out model.json
//! rtp predict  --model model.json --dataset dataset.json --sample 0
//! rtp evaluate --model model.json --dataset dataset.json
//! rtp serve    --model model.json --dataset dataset.json --port 7878
//! ```
//!
//! `serve` speaks newline-delimited JSON over TCP: each request line is
//! a serialised [`rtp_sim::RtpQuery`]; each response line is a
//! [`ServeResponse`]. See `tests/cli_serve.rs` for a client example.
//!
//! Argument parsing is hand-rolled (the workspace is dependency-free by
//! policy) and lives in [`args`] so it is unit-testable.

pub mod args;
pub mod commands;
pub mod evented;
pub mod online;
pub mod serve;

pub use args::{Cli, Command, ParseError};
