//! The `rtp online` loop: continuous training feeding a live server.
//!
//! Each round simulates a fresh day of courier behaviour (same city,
//! new sample stream — the master seed is bumped per round while the
//! city seed is held fixed, so AOI and courier ids keep meaning the
//! same thing to the serving-side dataset context), fits the model on
//! it, atomically republishes the SavedModel JSON at `--out`, and
//! pushes it into the running `rtp serve` instance over the in-band
//! `{"cmd":"reload"}` verb. The server performs the blue-green swap
//! described in [`crate::serve`]; this side only fails fast.
//!
//! The loop is deliberately synchronous: a round's reload must be
//! acknowledged (reply carries the new `model_version`) before the
//! next round trains. A rejected reload — config drift, truncated
//! file, unknown shard — aborts the loop with the server's structured
//! error, mirroring the loud-rejection policy of `--resume`.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use m2g4rtp::{CheckpointOptions, M2G4Rtp, TrainConfig, Trainer};
use rtp_obs::flight;
use rtp_obs::fsio::write_atomic_str;
use rtp_sim::{Dataset, DatasetBuilder};

/// Options of one [`run_online`] loop.
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// `host:port` of the running server.
    pub addr: String,
    /// Target shard (`None` = the server's default shard).
    pub shard: Option<String>,
    /// Rounds to run.
    pub rounds: usize,
    /// Epochs per round.
    pub epochs_per_round: usize,
    /// Base seed; round `r` trains on a dataset seeded
    /// `seed.wrapping_add(1 + r)`.
    pub seed: u64,
    /// Trainer threads (0 = all cores).
    pub threads: usize,
    /// Published model path, atomically rewritten every round.
    pub out: String,
    /// Per-round checkpoint directories (`dir/round_N`), off if `None`.
    pub checkpoint_dir: Option<String>,
}

/// One acknowledged round of the loop.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round index, 0-based.
    pub round: usize,
    /// Best validation KRC of the round's fit.
    pub val_krc: f64,
    /// `model_version` the server acknowledged the swap with.
    pub model_version: u64,
    /// Wall-clock of the round (train + publish + reload), seconds.
    pub seconds: f64,
}

/// Runs the online loop; returns one report per acknowledged round.
///
/// # Errors
/// Fails on checkpoint I/O, on publishing `--out`, and on any reload
/// the server does not acknowledge (connection failure, `{"error"}`
/// reply, or a reply without a `model_version`). The published file is
/// only ever a fully-written SavedModel, so a crashed loop never
/// leaves a half-written model for a later SIGHUP to trip on.
pub fn run_online(
    mut model: M2G4Rtp,
    base: &Dataset,
    opts: &OnlineOptions,
    out: &mut dyn Write,
) -> io::Result<Vec<RoundReport>> {
    let mut reports = Vec::with_capacity(opts.rounds);
    for round in 0..opts.rounds {
        let started = Instant::now();
        let mut config = base.config.clone();
        config.seed = opts.seed.wrapping_add(1 + round as u64);
        let day = DatasetBuilder::new(config).build();

        let ckpt = opts
            .checkpoint_dir
            .as_ref()
            .map(|dir| CheckpointOptions::new(PathBuf::from(dir).join(format!("round_{round}"))));
        let train_cfg = TrainConfig {
            epochs: opts.epochs_per_round,
            threads: opts.threads,
            ..TrainConfig::quick()
        };
        let report = Trainer::new(train_cfg)
            .fit_with_checkpoints(&mut model, &day, ckpt.as_ref())
            .map_err(io::Error::other)?;

        write_atomic_str(
            Path::new(&opts.out),
            &serde_json::to_string(&model.to_saved()).expect("serialise model"),
        )?;
        let model_version = push_reload(&opts.addr, &opts.out, opts.shard.as_deref())?;
        flight::record(flight::Kind::Reload, "online.push", 0, || {
            format!(
                "round {round} pushed {} to {} -> model_version {model_version}",
                opts.out, opts.addr
            )
        });

        let seconds = started.elapsed().as_secs_f64();
        writeln!(
            out,
            "round {}/{}: {} train samples, val KRC {:.3} — served as model_version {} ({:.1}s)",
            round + 1,
            opts.rounds,
            day.train.len(),
            report.best_val_krc,
            model_version,
            seconds
        )?;
        reports.push(RoundReport { round, val_krc: report.best_val_krc, model_version, seconds });
    }
    Ok(reports)
}

/// Sends one `{"cmd":"reload"}` line to the server and returns the
/// acknowledged `model_version`. Any `{"error"}` reply becomes a hard
/// failure carrying the server's message.
pub fn push_reload(addr: &str, model_path: &str, shard: Option<&str>) -> io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let path_json = serde_json::to_string(model_path).expect("serialise path");
    let line = match shard {
        Some(name) => {
            let name_json = serde_json::to_string(name).expect("serialise shard");
            format!("{{\"cmd\":\"reload\",\"model\":{path_json},\"shard\":{name_json}}}\n")
        }
        None => format!("{{\"cmd\":\"reload\",\"model\":{path_json}}}\n"),
    };
    writer.write_all(line.as_bytes())?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    let v: serde::Value = serde_json::from_str(reply.trim())
        .map_err(|e| io::Error::other(format!("unparseable reload reply {reply:?}: {e}")))?;
    if let Some(serde::Value::Str(msg)) = v.get("error") {
        return Err(io::Error::other(format!("server rejected reload: {msg}")));
    }
    match v.get("model_version") {
        Some(serde::Value::Num(n)) => n
            .as_u64()
            .ok_or_else(|| io::Error::other(format!("non-integer model_version in {reply:?}"))),
        _ => Err(io::Error::other(format!("reload reply without model_version: {reply:?}"))),
    }
}
