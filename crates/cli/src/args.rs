//! Hand-rolled, unit-testable argument parsing for the `rtp` binary.

use std::fmt;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected subcommand with its options.
    pub command: Command,
}

/// The `rtp` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic dataset and write it as JSON.
    Generate {
        /// Dataset scale preset: "tiny", "quick" or "full".
        scale: String,
        /// Generation seed.
        seed: u64,
        /// Output path.
        out: String,
    },
    /// Train an M²G4RTP model on a dataset file.
    Train {
        /// Dataset JSON path.
        dataset: String,
        /// Epochs (0 = preset default).
        epochs: usize,
        /// Model variant label ("full", "two-step", "no-aoi",
        /// "no-graph", "no-uncertainty").
        variant: String,
        /// Training seed.
        seed: u64,
        /// Worker threads for the mini-batch loop (0 = all cores).
        threads: usize,
        /// Output model path.
        out: String,
        /// Optional JSONL span-trace path (empty = tracing off).
        log_json: String,
        /// Directory for durable per-epoch checkpoints (empty = off).
        checkpoint_dir: String,
        /// Resume from the latest checkpoint in `checkpoint_dir`.
        resume: bool,
    },
    /// Predict one test sample and compare with its label.
    Predict {
        /// Model JSON path.
        model: String,
        /// Dataset JSON path.
        dataset: String,
        /// Test-split sample index.
        sample: usize,
        /// Beam width (1 = greedy).
        beam: usize,
    },
    /// Evaluate a model over the dataset's test split.
    Evaluate {
        /// Model JSON path.
        model: String,
        /// Dataset JSON path.
        dataset: String,
        /// Numerics tier: "exact", "fast" or "quantized".
        numerics: String,
    },
    /// Serve one or more model shards over TCP (newline-delimited
    /// JSON).
    Serve {
        /// Hosted model shards as `(name, path)` pairs, in `--model`
        /// order. A single bare `--model PATH` becomes the one shard
        /// `("default", PATH)`; repeated `--model NAME=PATH` flags
        /// host a fleet, with the first shard doubling as the default
        /// for requests without a `"city"` key.
        models: Vec<(String, String)>,
        /// Dataset JSON path (city/fleet context).
        dataset: String,
        /// Connection front end: "evented" (epoll reactor, default) or
        /// "threaded" (legacy blocking acceptor).
        frontend: String,
        /// TCP port (0 = ephemeral).
        port: u16,
        /// Maximum requests to serve before exiting (0 = forever).
        max_requests: usize,
        /// Worker-pool size (0 = all cores).
        workers: usize,
        /// Reap connections idle longer than this, seconds (0 = never).
        idle_timeout_secs: u64,
        /// Honour in-band `{"cmd":"shutdown"}` requests.
        allow_shutdown: bool,
        /// Micro-batch size cap (1 = batching and encoder cache off).
        batch_max: usize,
        /// Micro-batch collection window, microseconds.
        batch_window_us: u64,
        /// Numerics tier: "exact", "fast" or "quantized".
        numerics: String,
        /// Periodic Prometheus snapshot path (empty = off).
        metrics_file: String,
        /// Snapshot period for `metrics_file`, seconds (0 = 5 s default).
        metrics_interval_secs: u64,
        /// Flight-recorder JSONL dump path on caught panics (empty = off).
        flight_dump: String,
    },
    /// Run an online-training loop: keep fitting a model on fresh
    /// simulated courier-days and hot-swap each round's weights into a
    /// running `rtp serve` instance over its `reload` verb.
    Online {
        /// Warm-start model JSON path.
        model: String,
        /// Dataset JSON path (base config for fresh courier-days).
        dataset: String,
        /// `host:port` of the running server to push reloads to.
        addr: String,
        /// Target shard name (empty = server default shard).
        shard: String,
        /// Training rounds to run.
        rounds: usize,
        /// Epochs per round.
        epochs_per_round: usize,
        /// Base seed for the per-round fresh datasets.
        seed: u64,
        /// Worker threads for the mini-batch loop (0 = all cores).
        threads: usize,
        /// Published model path — rewritten atomically every round.
        out: String,
        /// Directory for durable per-round checkpoints (empty = off).
        checkpoint_dir: String,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `rtp help`.
pub const USAGE: &str = "\
rtp — M2G4RTP route & time prediction toolkit

USAGE:
  rtp generate --scale <tiny|quick|full> [--seed N] --out <dataset.json>
  rtp train    --dataset <dataset.json> [--epochs N] [--variant V] [--seed N] [--threads N] [--log-json spans.jsonl]
               [--checkpoint-dir DIR] [--resume] --out <model.json>
  rtp predict  --model <model.json> --dataset <dataset.json> --sample <idx> [--beam W]
  rtp evaluate --model <model.json> --dataset <dataset.json> [--numerics exact|fast|quantized]
  rtp serve    --model <model.json> --dataset <dataset.json> [--port P] [--max-requests N]
               [--workers N] [--frontend evented|threaded] [--idle-timeout-secs S]
               [--allow-shutdown] [--batch-max N] [--batch-window-us U]
               [--numerics exact|fast|quantized] [--metrics-file PATH]
               [--metrics-interval-secs S] [--flight-dump PATH]
  rtp online   --model <model.json> --dataset <dataset.json> --addr <host:port> --out <model.json>
               [--shard NAME] [--rounds N] [--epochs-per-round N] [--seed N] [--threads N]
               [--checkpoint-dir DIR]
  rtp help

Online training: `rtp online` trains on a fresh simulated courier-day
each round, atomically rewrites --out, and pushes it into the server
at --addr with `{\"cmd\":\"reload\"}` — a zero-downtime hot-swap.

Sharding: `rtp serve` accepts --model repeatedly as NAME=PATH pairs
(e.g. --model city_a=a.json --model city_b=b.json) to host one model
per city; request lines pick a shard with a \"city\" key and fall back
to the first shard without one.
";

fn take_value<'a>(
    flag: &str,
    it: &mut (dyn Iterator<Item = &'a str> + '_),
) -> Result<String, ParseError> {
    it.next().map(str::to_string).ok_or_else(|| ParseError(format!("missing value for {flag}")))
}

/// Resolves the repeated `--model` values of a `serve` invocation into
/// `(shard_name, path)` pairs.
///
/// * one bare `PATH` ⇒ the single shard `("default", PATH)` — the
///   legacy single-model form;
/// * one or more `NAME=PATH` pairs ⇒ one shard each, first = default
///   shard. Names must be non-empty, unique, and metric-safe
///   (alphanumeric plus `_`/`-`), since they become
///   `serve.shard.<name>.*` metric names;
/// * mixing bare and named forms is rejected — a bare path has no
///   name to route on.
fn parse_shard_models(models: &[String]) -> Result<Vec<(String, String)>, ParseError> {
    let (named, bare): (Vec<&String>, Vec<&String>) = models.iter().partition(|m| m.contains('='));
    if !bare.is_empty() && (!named.is_empty() || bare.len() > 1) {
        return Err(ParseError(
            "serve: with multiple shards every --model must be NAME=PATH".into(),
        ));
    }
    if let [path] = bare[..] {
        return Ok(vec![("default".to_string(), path.clone())]);
    }
    let mut shards = Vec::with_capacity(named.len());
    for m in named {
        let (name, path) = m.split_once('=').expect("partitioned on '='");
        if name.is_empty() || path.is_empty() {
            return Err(ParseError(format!("serve: bad --model `{m}`: expected NAME=PATH")));
        }
        if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            return Err(ParseError(format!(
                "serve: bad shard name `{name}`: use alphanumerics, `_` or `-`"
            )));
        }
        if shards.iter().any(|(n, _)| n == name) {
            return Err(ParseError(format!("serve: duplicate shard name `{name}`")));
        }
        shards.push((name.to_string(), path.to_string()));
    }
    Ok(shards)
}

/// Parses the arguments after the program name.
pub fn parse(args: &[&str]) -> Result<Cli, ParseError> {
    let mut it = args.iter().copied();
    let sub = it.next().ok_or_else(|| ParseError("missing subcommand; try `rtp help`".into()))?;

    let mut scale = "quick".to_string();
    let mut seed = 2023u64;
    let mut out = String::new();
    let mut dataset = String::new();
    let mut models: Vec<String> = Vec::new();
    let mut frontend = "evented".to_string();
    let mut epochs = 0usize;
    let mut threads = 0usize;
    let mut variant = "full".to_string();
    let mut sample = 0usize;
    let mut beam = 1usize;
    let mut port = 0u16;
    let mut max_requests = 0usize;
    let mut workers = 0usize;
    let mut idle_timeout_secs = 0u64;
    let mut allow_shutdown = false;
    let mut batch_max = 1usize;
    let mut batch_window_us = 1000u64;
    let mut log_json = String::new();
    let mut checkpoint_dir = String::new();
    let mut resume = false;
    let mut numerics = "exact".to_string();
    let mut metrics_file = String::new();
    let mut metrics_interval_secs = 0u64;
    let mut flight_dump = String::new();
    let mut addr = String::new();
    let mut shard = String::new();
    let mut rounds = 3usize;
    let mut epochs_per_round = 1usize;

    while let Some(flag) = it.next() {
        let v = |it: &mut dyn Iterator<Item = &str>| take_value(flag, it);
        match flag {
            "--scale" => scale = v(&mut it)?,
            "--seed" => seed = v(&mut it)?.parse().map_err(|_| ParseError("bad --seed".into()))?,
            "--out" => out = v(&mut it)?,
            "--dataset" => dataset = v(&mut it)?,
            // Repeatable for `serve` (shards); single-valued commands
            // take the last occurrence, the historical behaviour.
            "--model" => models.push(v(&mut it)?),
            "--frontend" => {
                frontend = v(&mut it)?;
                if !["evented", "threaded"].contains(&frontend.as_str()) {
                    return Err(ParseError(format!(
                        "unknown frontend `{frontend}` (evented|threaded)"
                    )));
                }
            }
            "--epochs" => {
                epochs = v(&mut it)?.parse().map_err(|_| ParseError("bad --epochs".into()))?
            }
            "--threads" => {
                threads = v(&mut it)?.parse().map_err(|_| ParseError("bad --threads".into()))?
            }
            "--variant" => variant = v(&mut it)?,
            "--sample" => {
                sample = v(&mut it)?.parse().map_err(|_| ParseError("bad --sample".into()))?
            }
            "--beam" => beam = v(&mut it)?.parse().map_err(|_| ParseError("bad --beam".into()))?,
            "--port" => port = v(&mut it)?.parse().map_err(|_| ParseError("bad --port".into()))?,
            "--max-requests" => {
                max_requests =
                    v(&mut it)?.parse().map_err(|_| ParseError("bad --max-requests".into()))?
            }
            "--workers" => {
                workers = v(&mut it)?.parse().map_err(|_| ParseError("bad --workers".into()))?
            }
            "--idle-timeout-secs" => {
                idle_timeout_secs =
                    v(&mut it)?.parse().map_err(|_| ParseError("bad --idle-timeout-secs".into()))?
            }
            "--allow-shutdown" => allow_shutdown = true,
            "--batch-max" => {
                batch_max = v(&mut it)?.parse().map_err(|_| ParseError("bad --batch-max".into()))?
            }
            "--batch-window-us" => {
                batch_window_us =
                    v(&mut it)?.parse().map_err(|_| ParseError("bad --batch-window-us".into()))?
            }
            "--log-json" => log_json = v(&mut it)?,
            "--checkpoint-dir" => checkpoint_dir = v(&mut it)?,
            "--resume" => resume = true,
            "--metrics-file" => metrics_file = v(&mut it)?,
            "--metrics-interval-secs" => {
                metrics_interval_secs = v(&mut it)?
                    .parse()
                    .map_err(|_| ParseError("bad --metrics-interval-secs".into()))?
            }
            "--flight-dump" => flight_dump = v(&mut it)?,
            "--addr" => addr = v(&mut it)?,
            "--shard" => shard = v(&mut it)?,
            "--rounds" => {
                rounds = v(&mut it)?.parse().map_err(|_| ParseError("bad --rounds".into()))?
            }
            "--epochs-per-round" => {
                epochs_per_round =
                    v(&mut it)?.parse().map_err(|_| ParseError("bad --epochs-per-round".into()))?
            }
            "--numerics" => {
                numerics = v(&mut it)?;
                if !["exact", "fast", "quantized"].contains(&numerics.as_str()) {
                    return Err(ParseError(format!(
                        "unknown numerics tier `{numerics}` (exact|fast|quantized)"
                    )));
                }
            }
            other => return Err(ParseError(format!("unknown flag `{other}`"))),
        }
    }

    let require = |name: &str, val: &str| -> Result<(), ParseError> {
        if val.is_empty() {
            Err(ParseError(format!("{sub}: missing required --{name}")))
        } else {
            Ok(())
        }
    };
    // Single-model commands take the last --model, as before shards.
    let model = models.last().cloned().unwrap_or_default();

    let command = match sub {
        "generate" => {
            require("out", &out)?;
            if !["tiny", "quick", "full"].contains(&scale.as_str()) {
                return Err(ParseError(format!("unknown scale `{scale}`")));
            }
            Command::Generate { scale, seed, out }
        }
        "train" => {
            require("dataset", &dataset)?;
            require("out", &out)?;
            if !["full", "two-step", "no-aoi", "no-graph", "no-uncertainty"]
                .contains(&variant.as_str())
            {
                return Err(ParseError(format!("unknown variant `{variant}`")));
            }
            if resume && checkpoint_dir.is_empty() {
                return Err(ParseError("--resume requires --checkpoint-dir".into()));
            }
            Command::Train {
                dataset,
                epochs,
                variant,
                seed,
                threads,
                out,
                log_json,
                checkpoint_dir,
                resume,
            }
        }
        "predict" => {
            require("model", &model)?;
            require("dataset", &dataset)?;
            if beam == 0 {
                return Err(ParseError("--beam must be >= 1".into()));
            }
            Command::Predict { model, dataset, sample, beam }
        }
        "evaluate" => {
            require("model", &model)?;
            require("dataset", &dataset)?;
            Command::Evaluate { model, dataset, numerics }
        }
        "serve" => {
            require("model", &model)?;
            require("dataset", &dataset)?;
            if batch_max == 0 {
                return Err(ParseError("--batch-max must be >= 1".into()));
            }
            if metrics_file.is_empty() && metrics_interval_secs != 0 {
                return Err(ParseError("--metrics-interval-secs requires --metrics-file".into()));
            }
            Command::Serve {
                models: parse_shard_models(&models)?,
                dataset,
                frontend,
                port,
                max_requests,
                workers,
                idle_timeout_secs,
                allow_shutdown,
                batch_max,
                batch_window_us,
                numerics,
                metrics_file,
                metrics_interval_secs,
                flight_dump,
            }
        }
        "online" => {
            require("model", &model)?;
            require("dataset", &dataset)?;
            require("addr", &addr)?;
            require("out", &out)?;
            if rounds == 0 {
                return Err(ParseError("--rounds must be >= 1".into()));
            }
            if epochs_per_round == 0 {
                return Err(ParseError("--epochs-per-round must be >= 1".into()));
            }
            Command::Online {
                model,
                dataset,
                addr,
                shard,
                rounds,
                epochs_per_round,
                seed,
                threads,
                out,
                checkpoint_dir,
            }
        }
        "help" | "--help" | "-h" => Command::Help,
        other => return Err(ParseError(format!("unknown subcommand `{other}`"))),
    };
    Ok(Cli { command })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generate() {
        let cli =
            parse(&["generate", "--scale", "tiny", "--seed", "9", "--out", "d.json"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Generate { scale: "tiny".into(), seed: 9, out: "d.json".into() }
        );
    }

    #[test]
    fn parses_train_with_defaults() {
        let cli = parse(&["train", "--dataset", "d.json", "--out", "m.json"]).unwrap();
        match cli.command {
            Command::Train { epochs, variant, seed, threads, log_json, .. } => {
                assert_eq!(epochs, 0);
                assert_eq!(variant, "full");
                assert_eq!(seed, 2023);
                assert_eq!(threads, 0);
                assert!(log_json.is_empty(), "tracing is off by default");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_train_log_json() {
        let cli = parse(&[
            "train",
            "--dataset",
            "d.json",
            "--out",
            "m.json",
            "--log-json",
            "spans.jsonl",
        ])
        .unwrap();
        match cli.command {
            Command::Train { log_json, .. } => assert_eq!(log_json, "spans.jsonl"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["train", "--dataset", "d", "--out", "m", "--log-json"]).is_err());
    }

    #[test]
    fn parses_train_threads() {
        let cli =
            parse(&["train", "--dataset", "d.json", "--out", "m.json", "--threads", "4"]).unwrap();
        assert!(matches!(cli.command, Command::Train { threads: 4, .. }));
        assert!(parse(&["train", "--dataset", "d", "--out", "m", "--threads", "x"]).is_err());
    }

    #[test]
    fn parses_train_checkpoint_flags() {
        let cli = parse(&["train", "--dataset", "d.json", "--out", "m.json"]).unwrap();
        match cli.command {
            Command::Train { checkpoint_dir, resume, .. } => {
                assert!(checkpoint_dir.is_empty(), "checkpointing is off by default");
                assert!(!resume);
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse(&[
            "train",
            "--dataset",
            "d.json",
            "--out",
            "m.json",
            "--checkpoint-dir",
            "ck",
            "--resume",
        ])
        .unwrap();
        match cli.command {
            Command::Train { checkpoint_dir, resume, .. } => {
                assert_eq!(checkpoint_dir, "ck");
                assert!(resume);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(
            parse(&["train", "--dataset", "d", "--out", "m", "--resume"]).is_err(),
            "--resume without --checkpoint-dir must be rejected"
        );
        assert!(parse(&["train", "--dataset", "d", "--out", "m", "--checkpoint-dir"]).is_err());
    }

    #[test]
    fn parses_serve_and_predict() {
        let cli = parse(&[
            "serve",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--port",
            "7878",
            "--max-requests",
            "5",
        ])
        .unwrap();
        match cli.command {
            Command::Serve {
                port,
                max_requests,
                workers,
                idle_timeout_secs,
                allow_shutdown,
                ..
            } => {
                assert_eq!(port, 7878);
                assert_eq!(max_requests, 5);
                assert_eq!(workers, 0, "default worker count is all cores");
                assert_eq!(idle_timeout_secs, 0, "idle reaping off by default");
                assert!(!allow_shutdown, "in-band shutdown off by default");
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse(&[
            "predict",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--sample",
            "3",
            "--beam",
            "4",
        ])
        .unwrap();
        assert!(matches!(cli.command, Command::Predict { sample: 3, beam: 4, .. }));
    }

    #[test]
    fn parses_serve_pool_flags() {
        let cli = parse(&[
            "serve",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--workers",
            "4",
            "--idle-timeout-secs",
            "30",
            "--allow-shutdown",
        ])
        .unwrap();
        assert!(matches!(
            cli.command,
            Command::Serve { workers: 4, idle_timeout_secs: 30, allow_shutdown: true, .. }
        ));
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--workers", "x"]).is_err());
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--idle-timeout-secs", "-1"])
            .is_err());
    }

    #[test]
    fn parses_serve_batch_flags() {
        let cli = parse(&[
            "serve",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--batch-max",
            "8",
            "--batch-window-us",
            "1500",
        ])
        .unwrap();
        assert!(matches!(cli.command, Command::Serve { batch_max: 8, batch_window_us: 1500, .. }));
        // Defaults: batching off, 1000 µs window.
        let cli = parse(&["serve", "--model", "m", "--dataset", "d"]).unwrap();
        assert!(matches!(cli.command, Command::Serve { batch_max: 1, batch_window_us: 1000, .. }));
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--batch-max", "0"]).is_err());
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--batch-max", "x"]).is_err());
        assert!(
            parse(&["serve", "--model", "m", "--dataset", "d", "--batch-window-us", "-5"]).is_err()
        );
    }

    #[test]
    fn parses_serve_observability_flags() {
        // Defaults: no snapshot writer, no flight dump.
        let cli = parse(&["serve", "--model", "m", "--dataset", "d"]).unwrap();
        match cli.command {
            Command::Serve { metrics_file, metrics_interval_secs, flight_dump, .. } => {
                assert!(metrics_file.is_empty());
                assert_eq!(metrics_interval_secs, 0);
                assert!(flight_dump.is_empty());
            }
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse(&[
            "serve",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--metrics-file",
            "prom.txt",
            "--metrics-interval-secs",
            "2",
            "--flight-dump",
            "flight.jsonl",
        ])
        .unwrap();
        match cli.command {
            Command::Serve { metrics_file, metrics_interval_secs, flight_dump, .. } => {
                assert_eq!(metrics_file, "prom.txt");
                assert_eq!(metrics_interval_secs, 2);
                assert_eq!(flight_dump, "flight.jsonl");
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--metrics-file"]).is_err());
        assert!(parse(&[
            "serve",
            "--model",
            "m",
            "--dataset",
            "d",
            "--metrics-interval-secs",
            "x"
        ])
        .is_err());
        assert!(
            parse(&["serve", "--model", "m", "--dataset", "d", "--metrics-interval-secs", "3"])
                .is_err(),
            "--metrics-interval-secs without --metrics-file must be rejected"
        );
    }

    #[test]
    fn parses_numerics_flag() {
        // Default is the bit-exact tier on both subcommands.
        let cli = parse(&["evaluate", "--model", "m", "--dataset", "d"]).unwrap();
        assert!(
            matches!(cli.command, Command::Evaluate { ref numerics, .. } if numerics == "exact")
        );
        let cli = parse(&["serve", "--model", "m", "--dataset", "d"]).unwrap();
        assert!(matches!(cli.command, Command::Serve { ref numerics, .. } if numerics == "exact"));

        for tier in ["exact", "fast", "quantized"] {
            let cli =
                parse(&["serve", "--model", "m", "--dataset", "d", "--numerics", tier]).unwrap();
            assert!(matches!(cli.command, Command::Serve { ref numerics, .. } if numerics == tier));
            let cli =
                parse(&["evaluate", "--model", "m", "--dataset", "d", "--numerics", tier]).unwrap();
            assert!(
                matches!(cli.command, Command::Evaluate { ref numerics, .. } if numerics == tier)
            );
        }
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--numerics", "f16"]).is_err());
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--numerics"]).is_err());
    }

    #[test]
    fn serve_single_bare_model_is_the_default_shard() {
        let cli = parse(&["serve", "--model", "m.json", "--dataset", "d.json"]).unwrap();
        match cli.command {
            Command::Serve { models, frontend, .. } => {
                assert_eq!(models, vec![("default".to_string(), "m.json".to_string())]);
                assert_eq!(frontend, "evented", "epoll front end is the default");
            }
            other => panic!("wrong command {other:?}"),
        }
        // Single-model commands keep last-one-wins semantics.
        let cli = parse(&["predict", "--model", "a", "--model", "b", "--dataset", "d"]).unwrap();
        assert!(matches!(cli.command, Command::Predict { ref model, .. } if model == "b"));
    }

    #[test]
    fn serve_repeated_named_models_become_shards_in_flag_order() {
        let cli = parse(&[
            "serve",
            "--model",
            "city_a=a.json",
            "--model",
            "city-b=b.json",
            "--dataset",
            "d.json",
        ])
        .unwrap();
        match cli.command {
            Command::Serve { models, .. } => {
                assert_eq!(
                    models,
                    vec![
                        ("city_a".to_string(), "a.json".to_string()),
                        ("city-b".to_string(), "b.json".to_string()),
                    ]
                );
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_malformed_shard_specs() {
        // Two bare paths: no names to route on.
        assert!(parse(&["serve", "--model", "a", "--model", "b", "--dataset", "d"]).is_err());
        // Bare + named mix.
        assert!(parse(&["serve", "--model", "a", "--model", "x=b", "--dataset", "d"]).is_err());
        // Empty name / empty path.
        assert!(parse(&["serve", "--model", "=b", "--dataset", "d"]).is_err());
        assert!(parse(&["serve", "--model", "a=", "--dataset", "d"]).is_err());
        // Metric-unsafe shard name.
        assert!(parse(&["serve", "--model", "a b=c", "--dataset", "d"]).is_err());
        // Duplicate shard name.
        assert!(
            parse(&["serve", "--model", "x=a", "--model", "x=b", "--dataset", "d"]).is_err(),
            "duplicate shard names must be rejected"
        );
    }

    #[test]
    fn parses_frontend_flag() {
        for fe in ["evented", "threaded"] {
            let cli =
                parse(&["serve", "--model", "m", "--dataset", "d", "--frontend", fe]).unwrap();
            assert!(matches!(cli.command, Command::Serve { ref frontend, .. } if frontend == fe));
        }
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--frontend", "poll"]).is_err());
        assert!(parse(&["serve", "--model", "m", "--dataset", "d", "--frontend"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["generate"]).is_err(), "missing --out");
        assert!(parse(&["generate", "--scale", "mega", "--out", "x"]).is_err());
        assert!(parse(&["train", "--dataset", "d", "--out", "m", "--variant", "bogus"]).is_err());
        assert!(parse(&["predict", "--model", "m", "--dataset", "d", "--beam", "0"]).is_err());
        assert!(parse(&["generate", "--seed"]).is_err(), "dangling flag value");
        assert!(parse(&["generate", "--wat", "1", "--out", "x"]).is_err());
    }

    #[test]
    fn parses_online_with_defaults() {
        let cli = parse(&[
            "online",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--addr",
            "127.0.0.1:7878",
            "--out",
            "pub.json",
        ])
        .unwrap();
        match cli.command {
            Command::Online { model, dataset, addr, shard, rounds, epochs_per_round, .. } => {
                assert_eq!(model, "m.json");
                assert_eq!(dataset, "d.json");
                assert_eq!(addr, "127.0.0.1:7878");
                assert!(shard.is_empty(), "default shard is the server's default");
                assert_eq!(rounds, 3);
                assert_eq!(epochs_per_round, 1);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_online_flags() {
        let cli = parse(&[
            "online",
            "--model",
            "m.json",
            "--dataset",
            "d.json",
            "--addr",
            "h:1",
            "--out",
            "p.json",
            "--shard",
            "city_a",
            "--rounds",
            "5",
            "--epochs-per-round",
            "2",
            "--checkpoint-dir",
            "ck",
        ])
        .unwrap();
        match cli.command {
            Command::Online { shard, rounds, epochs_per_round, checkpoint_dir, .. } => {
                assert_eq!(shard, "city_a");
                assert_eq!(rounds, 5);
                assert_eq!(epochs_per_round, 2);
                assert_eq!(checkpoint_dir, "ck");
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn online_rejects_bad_input() {
        // Every required flag missing in turn.
        assert!(parse(&["online", "--dataset", "d", "--addr", "a", "--out", "p"]).is_err());
        assert!(parse(&["online", "--model", "m", "--addr", "a", "--out", "p"]).is_err());
        assert!(parse(&["online", "--model", "m", "--dataset", "d", "--out", "p"]).is_err());
        assert!(parse(&["online", "--model", "m", "--dataset", "d", "--addr", "a"]).is_err());
        let base = ["online", "--model", "m", "--dataset", "d", "--addr", "a", "--out", "p"];
        let with = |extra: &[&'static str]| [&base[..], extra].concat();
        assert!(parse(&with(&["--rounds", "0"])).is_err(), "zero rounds is a no-op loop");
        assert!(parse(&with(&["--rounds", "x"])).is_err());
        assert!(parse(&with(&["--epochs-per-round", "0"])).is_err());
        assert!(parse(&with(&["--epochs-per-round", "x"])).is_err());
    }

    #[test]
    fn help_parses() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&[h]).unwrap().command, Command::Help);
        }
    }
}
