//! Implementations of the CLI subcommands.

use std::fs;
use std::path::Path;

use m2g4rtp::{CheckpointOptions, M2G4Rtp, ModelConfig, SavedModel, TrainConfig, Trainer, Variant};
use rtp_metrics::{
    acc_at, hr_at_k, krc, lsd, mae, rmse, Bucket, RouteMetricAccumulator, TimeMetricAccumulator,
};
use rtp_obs::fsio::write_atomic_str;
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};

use crate::args::Command;
use crate::serve;

/// Runs a parsed command, returning the process exit code. All output
/// goes to `out` (stdout in `main`, a buffer in tests).
pub fn run(command: Command, out: &mut dyn std::io::Write) -> std::io::Result<i32> {
    match command {
        Command::Help => {
            writeln!(out, "{}", crate::args::USAGE)?;
            Ok(0)
        }
        Command::Generate { scale, seed, out: path } => {
            let config = match scale.as_str() {
                "tiny" => DatasetConfig::tiny(seed),
                "quick" => DatasetConfig::quick(seed),
                "full" => DatasetConfig { seed, ..DatasetConfig::default() },
                other => unreachable!("parser rejects scale {other}"),
            };
            let dataset = DatasetBuilder::new(config).build();
            write_atomic_str(Path::new(&path), &dataset.to_json().expect("serialise dataset"))?;
            writeln!(
                out,
                "wrote {path}: {} train / {} val / {} test samples, {} AOIs, {} couriers",
                dataset.train.len(),
                dataset.val.len(),
                dataset.test.len(),
                dataset.city.aois.len(),
                dataset.couriers.len()
            )?;
            Ok(0)
        }
        Command::Train {
            dataset,
            epochs,
            variant,
            seed,
            threads,
            out: path,
            log_json,
            checkpoint_dir,
            resume,
        } => {
            let dataset = load_dataset(&dataset)?;
            if !log_json.is_empty() {
                rtp_obs::trace::attach_file(&log_json)?;
            }
            // The trainer records epoch progress through the flight
            // recorder, so a crash mid-training has history to dump.
            rtp_obs::flight::set_enabled(true);
            let variant = match variant.as_str() {
                "full" => Variant::Full,
                "two-step" => Variant::TwoStep,
                "no-aoi" => Variant::NoAoi,
                "no-graph" => Variant::NoGraph,
                "no-uncertainty" => Variant::NoUncertainty,
                other => unreachable!("parser rejects variant {other}"),
            };
            let mut train_cfg = TrainConfig { verbose: true, threads, ..TrainConfig::quick() };
            if epochs > 0 {
                train_cfg.epochs = epochs;
            }
            let mut model =
                M2G4Rtp::new(ModelConfig::for_dataset(&dataset).with_variant(variant), seed);
            writeln!(
                out,
                "training {} ({} parameters)...",
                variant.label(),
                model.num_parameters()
            )?;
            let ckpt = (!checkpoint_dir.is_empty()).then(|| {
                if resume {
                    CheckpointOptions::resume(&checkpoint_dir)
                } else {
                    CheckpointOptions::new(&checkpoint_dir)
                }
            });
            if let Some(o) = &ckpt {
                writeln!(
                    out,
                    "{} checkpoints at {}",
                    if resume { "resuming from" } else { "writing" },
                    o.file().display()
                )?;
            }
            let result =
                Trainer::new(train_cfg).fit_with_checkpoints(&mut model, &dataset, ckpt.as_ref());
            // Detach (flush + fsync) the span sink before surfacing a
            // training error: a failed run's --log-json file must still
            // be complete up to the failure point.
            if !log_json.is_empty() {
                rtp_obs::trace::detach();
                writeln!(out, "wrote span trace to {log_json}")?;
            }
            let report = result.map_err(std::io::Error::other)?;
            writeln!(
                out,
                "trained {} epochs in {:.1}s — best val KRC {:.3}, MAE {:.1} min",
                report.epochs_run, report.train_seconds, report.best_val_krc, report.best_val_mae
            )?;
            write_atomic_str(
                Path::new(&path),
                &serde_json::to_string(&model.to_saved()).expect("serialise model"),
            )?;
            writeln!(out, "wrote {path}")?;
            Ok(0)
        }
        Command::Predict { model, dataset, sample, beam } => {
            let dataset = load_dataset(&dataset)?;
            let model = load_model(&model)?;
            let Some(s) = dataset.test.get(sample) else {
                writeln!(
                    out,
                    "sample index {sample} out of range (test has {})",
                    dataset.test.len()
                )?;
                return Ok(2);
            };
            let g =
                model.build_graph(&dataset.city, &dataset.couriers[s.query.courier_id], &s.query);
            let p = if beam > 1 { model.predict_beam(&g, beam) } else { model.predict(&g) };
            writeln!(
                out,
                "query: {} locations across {} AOIs",
                s.query.num_locations(),
                s.query.distinct_aois().len()
            )?;
            writeln!(out, "predicted route: {:?}", p.route)?;
            writeln!(out, "actual route:    {:?}", s.truth.route)?;
            writeln!(
                out,
                "HR@3 {:.1}%  KRC {:.3}  LSD {:.2}  |  RMSE {:.1}  MAE {:.1}  acc@20 {:.0}%",
                hr_at_k(&p.route, &s.truth.route, 3) * 100.0,
                krc(&p.route, &s.truth.route),
                lsd(&p.route, &s.truth.route),
                rmse(&p.times, &s.truth.arrival),
                mae(&p.times, &s.truth.arrival),
                acc_at(&p.times, &s.truth.arrival, 20.0),
            )?;
            Ok(0)
        }
        Command::Evaluate { model, dataset, numerics } => {
            let dataset = load_dataset(&dataset)?;
            let model = load_model(&model)?;
            let numerics = parse_numerics(&numerics);
            let mut racc = RouteMetricAccumulator::new();
            let mut tacc = TimeMetricAccumulator::new();
            for s in &dataset.test {
                let p = model.predict_sample_with(&dataset, s, numerics);
                racc.add(&p.route, &s.truth.route);
                tacc.add(&p.times, &s.truth.arrival, s.query.num_locations());
            }
            writeln!(out, "test split: {} samples ({} numerics)", dataset.test.len(), numerics)?;
            for b in Bucket::ALL {
                if let (Some(r), Some(t)) = (racc.finish(b), tacc.finish(b)) {
                    writeln!(
                        out,
                        "{:<14} HR@3 {:>6.2}  KRC {:>6.3}  LSD {:>6.2} | RMSE {:>6.2}  MAE {:>6.2}  acc@20 {:>5.1}",
                        b.label(), r.hr3, r.krc, r.lsd, t.rmse, t.mae, t.acc20
                    )?;
                }
            }
            Ok(0)
        }
        Command::Serve {
            models,
            dataset,
            port,
            max_requests,
            workers,
            frontend,
            idle_timeout_secs,
            allow_shutdown,
            batch_max,
            batch_window_us,
            numerics,
            metrics_file,
            metrics_interval_secs,
            flight_dump,
        } => {
            let dataset = load_dataset(&dataset)?;
            let mut shards = Vec::with_capacity(models.len());
            for (name, path) in models {
                let model = load_model(&path)?;
                // Keep the source path on the shard: SIGHUP re-reads it
                // through the hot-swap machinery.
                shards.push(serve::ShardSpec::with_path(name, model, path));
            }
            let frontend = match frontend.as_str() {
                "threaded" => serve::FrontEnd::Threaded,
                "evented" => serve::FrontEnd::Evented,
                other => unreachable!("parser rejects frontend {other}"),
            };
            let opts = serve::ServeOptions {
                port,
                max_requests,
                workers,
                frontend,
                idle_timeout: (idle_timeout_secs > 0)
                    .then(|| std::time::Duration::from_secs(idle_timeout_secs)),
                allow_shutdown,
                batch_max,
                batch_window: std::time::Duration::from_micros(batch_window_us),
                numerics: parse_numerics(&numerics),
                metrics_file: (!metrics_file.is_empty()).then_some(metrics_file),
                metrics_interval: std::time::Duration::from_secs(metrics_interval_secs),
                flight_dump: (!flight_dump.is_empty()).then_some(flight_dump),
            };
            serve::serve_sharded(shards, dataset, opts, out)
        }
        Command::Online {
            model,
            dataset,
            addr,
            shard,
            rounds,
            epochs_per_round,
            seed,
            threads,
            out: path,
            checkpoint_dir,
        } => {
            let base = load_dataset(&dataset)?;
            let model = load_model(&model)?;
            rtp_obs::flight::set_enabled(true);
            let opts = crate::online::OnlineOptions {
                addr,
                shard: (!shard.is_empty()).then_some(shard),
                rounds,
                epochs_per_round,
                seed,
                threads,
                out: path,
                checkpoint_dir: (!checkpoint_dir.is_empty()).then_some(checkpoint_dir),
            };
            writeln!(
                out,
                "online: {} round(s) x {} epoch(s) -> {} via {}",
                opts.rounds, opts.epochs_per_round, opts.out, opts.addr
            )?;
            let reports = crate::online::run_online(model, &base, &opts, out)?;
            let last = reports.last().expect("parser enforces rounds >= 1");
            writeln!(
                out,
                "online loop done: {} round(s), serving model_version {}",
                reports.len(),
                last.model_version
            )?;
            Ok(0)
        }
    }
}

fn parse_numerics(s: &str) -> rtp_tensor::Numerics {
    s.parse().unwrap_or_else(|e| unreachable!("parser validated --numerics: {e}"))
}

fn load_dataset(path: &str) -> std::io::Result<Dataset> {
    let text = fs::read_to_string(path)?;
    let dataset = Dataset::from_json(&text).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path}: {e}"))
    })?;
    dataset.validate().map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path}: {e}"))
    })?;
    Ok(dataset)
}

fn load_model(path: &str) -> std::io::Result<M2G4Rtp> {
    let text = fs::read_to_string(path)?;
    let saved: SavedModel = serde_json::from_str(&text).map_err(|e| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path}: {e}"))
    })?;
    Ok(M2G4Rtp::from_saved(saved))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_capture(args: &[&str]) -> (i32, String) {
        let cli = parse(args).expect("parse");
        let mut buf = Vec::new();
        let code = run(cli.command, &mut buf).expect("io");
        (code, String::from_utf8(buf).expect("utf8"))
    }

    #[test]
    fn generate_train_predict_evaluate_pipeline() {
        let dir = std::env::temp_dir().join(format!("rtp-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("d.json");
        let md = dir.join("m.json");
        let (ds_s, md_s) = (ds.to_str().unwrap(), md.to_str().unwrap());

        let (code, out) =
            run_capture(&["generate", "--scale", "tiny", "--seed", "3", "--out", ds_s]);
        assert_eq!(code, 0);
        assert!(out.contains("train"), "{out}");

        let (code, out) = run_capture(&[
            "train",
            "--dataset",
            ds_s,
            "--epochs",
            "1",
            "--out",
            md_s,
            "--seed",
            "5",
        ]);
        assert_eq!(code, 0);
        assert!(out.contains("best val KRC"), "{out}");

        let (code, out) =
            run_capture(&["predict", "--model", md_s, "--dataset", ds_s, "--sample", "0"]);
        assert_eq!(code, 0);
        assert!(out.contains("predicted route"), "{out}");
        assert!(out.contains("KRC"), "{out}");

        let (code, out) = run_capture(&["evaluate", "--model", md_s, "--dataset", ds_s]);
        assert_eq!(code, 0);
        assert!(out.contains("all"), "{out}");

        let (code, out) =
            run_capture(&["predict", "--model", md_s, "--dataset", ds_s, "--sample", "99999"]);
        assert_eq!(code, 2, "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_capture(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
        assert!(out.contains("rtp serve"));
    }
}
