//! The `rtp` binary: parse arguments, dispatch, exit.

use rtp_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    let cli = match args::parse(&refs) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    match commands::run(cli.command, &mut stdout) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
