//! Construction of the multi-level graph from a query.

use rtp_sim::{City, Courier, RtpQuery};
use serde::{Deserialize, Serialize};

use crate::{AOI_CONT_DIM, EDGE_DIM, GLOBAL_CONT_DIM, LOC_CONT_DIM};

/// Graph construction knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GraphConfig {
    /// `k` of the k-nearest spatial/temporal connectivity (Eq. 15).
    pub k_neighbors: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self { k_neighbors: 3 }
    }
}

/// One level of the multi-level graph (`G^l` or `G^a`): a dense node
/// feature matrix, per-node discrete ids, dense edge features and the
/// boolean adjacency mask the GAT-e attention is restricted to.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelGraph {
    /// Number of nodes.
    pub n: usize,
    /// Continuous node features, row-major `[n, cont_dim]`.
    pub cont: Vec<f32>,
    /// Width of `cont`.
    pub cont_dim: usize,
    /// AOI id per node (the node's own id at AOI level; the containing
    /// AOI's id at location level). Embedded, not treated as numeric.
    pub aoi_ids: Vec<usize>,
    /// AOI type index per node (see `rtp_sim::AoiType::index`).
    pub aoi_types: Vec<usize>,
    /// Edge features, row-major `[n*n, EDGE_DIM]`; entry `i*n+j` is the
    /// directed edge `i -> j`.
    pub edge: Vec<f32>,
    /// Width of each edge feature vector.
    pub edge_dim: usize,
    /// Connectivity mask `[n*n]` (Eq. 15); `adj[i*n+j]` gates attention
    /// from node `i` to node `j`.
    pub adj: Vec<bool>,
}

impl LevelGraph {
    /// Neighbour count of node `i` (including its self-loop).
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i * self.n..(i + 1) * self.n].iter().filter(|&&b| b).count()
    }
}

/// Global context features `x^g` (Eq. 17) plus the courier identity used
/// for the courier embedding `u` in the decoders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalFeatures {
    /// Continuous features: working hours, speed, attendance,
    /// time-of-day ∈ [0,1].
    pub cont: Vec<f32>,
    /// Weather code (embedding id).
    pub weather: usize,
    /// Weekday 0–6 (embedding id).
    pub weekday: usize,
    /// Courier id (embedding id).
    pub courier_id: usize,
}

/// The full multi-level graph `G = (G^l, G^a, E^{la})` of Definition 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLevelGraph {
    /// Location-level graph `G^l`.
    pub locations: LevelGraph,
    /// AOI-level graph `G^a`.
    pub aois: LevelGraph,
    /// `E^{la}` as a membership map: `loc_to_aoi[i]` is the AOI-node
    /// index containing location node `i`.
    pub loc_to_aoi: Vec<usize>,
    /// Global features.
    pub global: GlobalFeatures,
}

/// Builds [`MultiLevelGraph`]s from queries against a fixed city/fleet.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    config: GraphConfig,
}

impl GraphBuilder {
    /// Creates a builder.
    pub fn new(config: GraphConfig) -> Self {
        Self { config }
    }

    /// The builder's configuration.
    pub fn config(&self) -> GraphConfig {
        self.config
    }

    /// Builds the (unnormalised) multi-level graph for one query.
    ///
    /// # Panics
    /// Panics if the query has no orders.
    pub fn build(&self, query: &RtpQuery, city: &City, courier: &Courier) -> MultiLevelGraph {
        assert!(!query.orders.is_empty(), "cannot build a graph for an empty query");
        let n = query.orders.len();
        let aoi_ids = query.distinct_aois();
        let m = aoi_ids.len();
        let loc_to_aoi = query.order_aoi_indices();

        // ---- location level (Eq. 12) ----
        let mut l_cont = Vec::with_capacity(n * LOC_CONT_DIM);
        let mut l_aoi_ids = Vec::with_capacity(n);
        let mut l_types = Vec::with_capacity(n);
        for o in &query.orders {
            let d = o.pos.dist(&query.courier_pos);
            l_cont.extend_from_slice(&[
                o.pos.x,
                o.pos.y,
                d,
                o.deadline - query.time,
                query.time - o.accept_time,
            ]);
            l_aoi_ids.push(o.aoi_id);
            l_types.push(city.aoi(o.aoi_id).kind.index());
        }
        let l_pos: Vec<_> = query.orders.iter().map(|o| o.pos).collect();
        let l_dead: Vec<_> = query.orders.iter().map(|o| o.deadline).collect();
        let (l_edge, l_adj) = build_edges(&l_pos, &l_dead, self.config.k_neighbors);

        // ---- AOI level (Eq. 13) ----
        let mut a_cont = Vec::with_capacity(m * AOI_CONT_DIM);
        let mut a_types = Vec::with_capacity(m);
        let mut a_pos = Vec::with_capacity(m);
        let mut a_dead = Vec::with_capacity(m);
        for (k, &aid) in aoi_ids.iter().enumerate() {
            let aoi = city.aoi(aid);
            let members: Vec<usize> = (0..n).filter(|&i| loc_to_aoi[i] == k).collect();
            let earliest =
                members.iter().map(|&i| query.orders[i].deadline).fold(f32::MAX, f32::min);
            let d = aoi.center.dist(&query.courier_pos);
            a_cont.extend_from_slice(&[
                aoi.center.x,
                aoi.center.y,
                d,
                earliest - query.time,
                members.len() as f32,
            ]);
            a_types.push(aoi.kind.index());
            a_pos.push(aoi.center);
            a_dead.push(earliest);
        }
        let (a_edge, a_adj) = build_edges(&a_pos, &a_dead, self.config.k_neighbors);

        let global = GlobalFeatures {
            cont: vec![
                courier.work_hours,
                courier.speed_kmh,
                courier.attendance,
                (query.time / 1440.0).clamp(0.0, 1.0),
            ],
            weather: query.weather.index(),
            weekday: query.weekday as usize,
            courier_id: courier.id,
        };

        MultiLevelGraph {
            locations: LevelGraph {
                n,
                cont: l_cont,
                cont_dim: LOC_CONT_DIM,
                aoi_ids: l_aoi_ids,
                aoi_types: l_types,
                edge: l_edge,
                edge_dim: EDGE_DIM,
                adj: l_adj,
            },
            aois: LevelGraph {
                n: m,
                cont: a_cont,
                cont_dim: AOI_CONT_DIM,
                aoi_ids,
                aoi_types: a_types,
                edge: a_edge,
                edge_dim: EDGE_DIM,
                adj: a_adj,
            },
            loc_to_aoi,
            global,
        }
    }
}

/// Builds dense edge features (distance, deadline gap, connectivity) and
/// the symmetric connectivity mask of Eq. 15.
fn build_edges(pos: &[rtp_sim::Point], deadline: &[f32], k: usize) -> (Vec<f32>, Vec<bool>) {
    let n = pos.len();
    let mut adj = vec![false; n * n];
    // self-loops
    for i in 0..n {
        adj[i * n + i] = true;
    }
    // k-nearest spatial and temporal neighbours, symmetrised
    for i in 0..n {
        let mut spatial: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        spatial.sort_by(|&a, &b| {
            pos[i].dist(&pos[a]).partial_cmp(&pos[i].dist(&pos[b])).expect("finite")
        });
        for &j in spatial.iter().take(k) {
            adj[i * n + j] = true;
            adj[j * n + i] = true;
        }
        let mut temporal: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        temporal.sort_by(|&a, &b| {
            (deadline[i] - deadline[a])
                .abs()
                .partial_cmp(&(deadline[i] - deadline[b]).abs())
                .expect("finite")
        });
        for &j in temporal.iter().take(k) {
            adj[i * n + j] = true;
            adj[j * n + i] = true;
        }
    }
    let mut edge = Vec::with_capacity(n * n * EDGE_DIM);
    for i in 0..n {
        for j in 0..n {
            edge.push(pos[i].dist(&pos[j]));
            edge.push((deadline[i] - deadline[j]).abs());
            edge.push(if adj[i * n + j] { 1.0 } else { 0.0 });
        }
    }
    (edge, adj)
}

// GLOBAL_CONT_DIM is the length of GlobalFeatures::cont; keep them in sync.
const _: () = assert!(GLOBAL_CONT_DIM == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    fn build_one() -> (rtp_sim::Dataset, MultiLevelGraph) {
        let d = DatasetBuilder::new(DatasetConfig::tiny(21)).build();
        let s = d.train[0].clone();
        let courier = d.couriers[s.query.courier_id].clone();
        let g = GraphBuilder::new(GraphConfig::default()).build(&s.query, &d.city, &courier);
        (d, g)
    }

    #[test]
    fn dimensions_are_consistent() {
        let (d, g) = build_one();
        let s = &d.train[0];
        let n = s.query.num_locations();
        let m = s.query.distinct_aois().len();
        assert_eq!(g.locations.n, n);
        assert_eq!(g.aois.n, m);
        assert_eq!(g.locations.cont.len(), n * LOC_CONT_DIM);
        assert_eq!(g.aois.cont.len(), m * AOI_CONT_DIM);
        assert_eq!(g.locations.edge.len(), n * n * EDGE_DIM);
        assert_eq!(g.aois.edge.len(), m * m * EDGE_DIM);
        assert_eq!(g.loc_to_aoi.len(), n);
        assert!(g.loc_to_aoi.iter().all(|&a| a < m));
        assert_eq!(g.global.cont.len(), GLOBAL_CONT_DIM);
    }

    #[test]
    fn adjacency_has_self_loops_and_is_symmetric() {
        let (_, g) = build_one();
        for level in [&g.locations, &g.aois] {
            let n = level.n;
            for i in 0..n {
                assert!(level.adj[i * n + i], "missing self loop at {i}");
                for j in 0..n {
                    assert_eq!(level.adj[i * n + j], level.adj[j * n + i], "asymmetric ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn degrees_respect_k() {
        let (_, g) = build_one();
        let k = GraphConfig::default().k_neighbors;
        let n = g.locations.n;
        for i in 0..n {
            let deg = g.locations.degree(i);
            // at least self + min(k, n-1) spatial; at most self + 4k
            // (own spatial+temporal plus symmetrised reverse edges)
            assert!(deg > k.min(n - 1), "degree {deg} too small at node {i}");
            assert!(deg <= 1 + 4 * k.min(n - 1), "degree {deg} too large at node {i}");
        }
    }

    #[test]
    fn edge_features_match_geometry() {
        let (d, g) = build_one();
        let s = &d.train[0];
        let n = g.locations.n;
        for i in 0..n {
            for j in 0..n {
                let e = &g.locations.edge[(i * n + j) * EDGE_DIM..(i * n + j + 1) * EDGE_DIM];
                let dist = s.query.orders[i].pos.dist(&s.query.orders[j].pos);
                let gap = (s.query.orders[i].deadline - s.query.orders[j].deadline).abs();
                assert!((e[0] - dist).abs() < 1e-6);
                assert!((e[1] - gap).abs() < 1e-4);
                assert_eq!(e[2], if g.locations.adj[i * n + j] { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn aoi_features_aggregate_members() {
        let (d, g) = build_one();
        let s = &d.train[0];
        let m = g.aois.n;
        let loc_to_aoi = s.query.order_aoi_indices();
        for k in 0..m {
            let members: Vec<usize> =
                (0..s.query.num_locations()).filter(|&i| loc_to_aoi[i] == k).collect();
            let count = g.aois.cont[k * AOI_CONT_DIM + 4];
            assert_eq!(count as usize, members.len());
            let earliest =
                members.iter().map(|&i| s.query.orders[i].deadline).fold(f32::MAX, f32::min);
            assert!((g.aois.cont[k * AOI_CONT_DIM + 3] - (earliest - s.query.time)).abs() < 1e-4);
        }
    }
}
