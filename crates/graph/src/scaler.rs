//! Feature standardisation fitted on the training split.

use rtp_sim::{Courier, Dataset};
use serde::{Deserialize, Serialize};

use crate::builder::{GraphBuilder, MultiLevelGraph};

/// Per-column mean/std statistics for one feature family.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ColumnStats {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl ColumnStats {
    fn fit(rows: impl Iterator<Item = Vec<f32>>, dim: usize) -> Self {
        let mut sum = vec![0.0f64; dim];
        let mut sq = vec![0.0f64; dim];
        let mut n = 0u64;
        for row in rows {
            debug_assert_eq!(row.len(), dim);
            for (k, v) in row.iter().enumerate() {
                sum[k] += *v as f64;
                sq[k] += (*v as f64) * (*v as f64);
            }
            n += 1;
        }
        let n = n.max(1) as f64;
        let mean: Vec<f32> = sum.iter().map(|s| (s / n) as f32).collect();
        let std: Vec<f32> = sq
            .iter()
            .zip(&mean)
            .map(|(s, m)| {
                let var = (s / n) - (*m as f64) * (*m as f64);
                (var.max(0.0).sqrt() as f32).max(1e-6)
            })
            .collect();
        Self { mean, std }
    }

    fn apply(&self, data: &mut [f32]) {
        let dim = self.mean.len();
        for row in data.chunks_mut(dim) {
            for (k, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mean[k]) / self.std[k];
            }
        }
    }
}

/// Standardises the continuous node/edge/global features of a
/// [`MultiLevelGraph`] to zero mean and unit variance, with statistics
/// fitted exclusively on the training split (no leakage).
///
/// The binary connectivity column of the edge features is left as-is
/// (standardising a {0,1} flag would only rescale it).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureScaler {
    loc: ColumnStats,
    aoi: ColumnStats,
    loc_edge: ColumnStats,
    aoi_edge: ColumnStats,
    global: ColumnStats,
}

impl FeatureScaler {
    /// Fits scaler statistics on the training split of `dataset` by
    /// building every training graph once.
    pub fn fit(dataset: &Dataset, builder: &GraphBuilder) -> Self {
        let graphs: Vec<MultiLevelGraph> = dataset
            .train
            .iter()
            .map(|s| {
                let courier: &Courier = &dataset.couriers[s.query.courier_id];
                builder.build(&s.query, &dataset.city, courier)
            })
            .collect();
        Self::fit_graphs(&graphs)
    }

    /// Fits scaler statistics on pre-built graphs.
    ///
    /// # Panics
    /// Panics if `graphs` is empty.
    pub fn fit_graphs(graphs: &[MultiLevelGraph]) -> Self {
        assert!(!graphs.is_empty(), "cannot fit a scaler on zero graphs");
        let loc_dim = graphs[0].locations.cont_dim;
        let aoi_dim = graphs[0].aois.cont_dim;
        let edge_dim = graphs[0].locations.edge_dim;
        let global_dim = graphs[0].global.cont.len();
        let loc = ColumnStats::fit(
            graphs.iter().flat_map(|g| g.locations.cont.chunks(loc_dim).map(|c| c.to_vec())),
            loc_dim,
        );
        let aoi = ColumnStats::fit(
            graphs.iter().flat_map(|g| g.aois.cont.chunks(aoi_dim).map(|c| c.to_vec())),
            aoi_dim,
        );
        // only the first two edge columns (distance, gap) are continuous
        let loc_edge = ColumnStats::fit(
            graphs.iter().flat_map(|g| g.locations.edge.chunks(edge_dim).map(|c| c[..2].to_vec())),
            2,
        );
        let aoi_edge = ColumnStats::fit(
            graphs.iter().flat_map(|g| g.aois.edge.chunks(edge_dim).map(|c| c[..2].to_vec())),
            2,
        );
        let global = ColumnStats::fit(graphs.iter().map(|g| g.global.cont.clone()), global_dim);
        Self { loc, aoi, loc_edge, aoi_edge, global }
    }

    /// Standardises a graph in place.
    pub fn apply(&self, g: &mut MultiLevelGraph) {
        self.loc.apply(&mut g.locations.cont);
        self.aoi.apply(&mut g.aois.cont);
        apply_edge(&self.loc_edge, &mut g.locations.edge, g.locations.edge_dim);
        apply_edge(&self.aoi_edge, &mut g.aois.edge, g.aois.edge_dim);
        self.global.apply(&mut g.global.cont);
    }
}

#[allow(clippy::needless_range_loop)] // only the first two columns are scaled
fn apply_edge(stats: &ColumnStats, edge: &mut [f32], edge_dim: usize) {
    for row in edge.chunks_mut(edge_dim) {
        for k in 0..2 {
            row[k] = (row[k] - stats.mean[k]) / stats.std[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphConfig;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn scaled_train_features_are_standardised() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(31)).build();
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(&d, &builder);

        // Re-build training graphs, scale them, pool column stats.
        let mut pooled: Vec<Vec<f32>> = Vec::new();
        for s in &d.train {
            let mut g = builder.build(&s.query, &d.city, &d.couriers[s.query.courier_id]);
            scaler.apply(&mut g);
            for row in g.locations.cont.chunks(g.locations.cont_dim) {
                pooled.push(row.to_vec());
            }
        }
        let dim = pooled[0].len();
        for k in 0..dim {
            let vals: Vec<f32> = pooled.iter().map(|r| r[k]).collect();
            let mean = vals.iter().sum::<f32>() / vals.len() as f32;
            let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 0.05, "column {k} mean {mean} not ~0");
            assert!((var - 1.0).abs() < 0.1, "column {k} var {var} not ~1");
        }
    }

    #[test]
    fn connectivity_column_is_untouched() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(32)).build();
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(&d, &builder);
        let s = &d.train[0];
        let mut g = builder.build(&s.query, &d.city, &d.couriers[s.query.courier_id]);
        let before: Vec<f32> =
            g.locations.edge.chunks(g.locations.edge_dim).map(|c| c[2]).collect();
        scaler.apply(&mut g);
        let after: Vec<f32> = g.locations.edge.chunks(g.locations.edge_dim).map(|c| c[2]).collect();
        assert_eq!(before, after);
        assert!(after.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn apply_is_idempotent_only_once() {
        // Applying twice must change features again (guard against
        // accidentally building a no-op scaler).
        let d = DatasetBuilder::new(DatasetConfig::tiny(33)).build();
        let builder = GraphBuilder::new(GraphConfig::default());
        let scaler = FeatureScaler::fit(&d, &builder);
        let s = &d.train[0];
        let mut g = builder.build(&s.query, &d.city, &d.couriers[s.query.courier_id]);
        let raw = g.locations.cont.clone();
        scaler.apply(&mut g);
        assert_ne!(raw, g.locations.cont, "scaler must transform features");
    }
}
