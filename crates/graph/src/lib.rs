//! # rtp-graph
//!
//! Multi-level graph construction for M²G4RTP (paper §III Definition 3
//! and §IV-B): turns an [`rtp_sim::RtpQuery`] into the location graph
//! `G^l`, the AOI graph `G^a`, the location→AOI membership edges
//! `E^{la}`, and the global feature vector `x^g`.
//!
//! * Node features follow Eqs. 12–13 (geo, distance-from-courier,
//!   AOI id/type, deadlines).
//! * Edge features follow Eqs. 14–16 (distance, deadline gap,
//!   connectivity), with connectivity defined as the union of k-nearest
//!   **spatial** neighbours, k-nearest **temporal** neighbours (by
//!   deadline gap) and self-loops (Eq. 15). The paper leaves direction
//!   ambiguous; we symmetrise (i~j if either is a k-NN of the other) so
//!   attention can flow both ways.
//! * Global features follow Eq. 17 (courier working hours / speed /
//!   attendance, weather, weekday).
//!
//! Continuous features are standardised by a [`FeatureScaler`] fitted on
//! the training split only — fitting on val/test would leak.

mod builder;
mod scaler;

pub use builder::{GlobalFeatures, GraphBuilder, GraphConfig, LevelGraph, MultiLevelGraph};
pub use scaler::FeatureScaler;

/// Continuous feature width of a location node: x, y, distance to
/// courier, deadline − t, t − accept time.
pub const LOC_CONT_DIM: usize = 5;

/// Continuous feature width of an AOI node: centre x, y, distance to
/// courier, earliest deadline − t, number of member locations.
pub const AOI_CONT_DIM: usize = 5;

/// Edge feature width at both levels: distance, deadline gap,
/// connectivity flag (Eqs. 14/16).
pub const EDGE_DIM: usize = 3;

/// Continuous global feature width: working hours, speed, attendance,
/// normalised time-of-day.
pub const GLOBAL_CONT_DIM: usize = 4;
