//! # rtp-obs — zero-dependency observability
//!
//! Production telemetry for the M²G4RTP stack, std-only by design so
//! every crate (down to the tensor substrate) can depend on it without
//! cycles:
//!
//! * [`metrics`] — a global lock-free registry of atomic
//!   [`metrics::Counter`]s, [`metrics::Gauge`]s and fixed-bucket log2
//!   [`metrics::Histogram`]s. Snapshots are mergeable (associative) and
//!   percentile extraction is *quantized-exact*: it returns exactly the
//!   value a sorted-vector oracle would, rounded down to the histogram's
//!   bucket floor (≤ 1/16 relative resolution).
//! * [`trace`] — structured span tracing. [`span!`] guards record
//!   wall-time and per-thread parent/child structure, drained as JSONL
//!   events to a file sink (`rtp train --log-json PATH`) or an
//!   in-memory sink (the `run_all` timing artifact).
//! * [`fsio`] — durable artifact writes: [`fsio::write_atomic`] is the
//!   write-temp → fsync → rename helper every model/checkpoint/results
//!   writer in the workspace goes through, so a crash or full disk can
//!   never leave a truncated artifact behind.
//! * [`context`] — per-request trace ids ([`context::TraceCtx`], minted
//!   at connection accept) and the fixed five-stage latency
//!   [`context::StageBreakdown`] the serving layer attributes a
//!   request's end-to-end latency to.
//! * [`prom`] — Prometheus text exposition: [`prom::render`] turns any
//!   [`metrics::Snapshot`] into scrape-able text (histograms with
//!   exact integer `le` bounds), [`prom::validate`] is the matching
//!   checker used by tests and CI.
//! * [`flight`] — the crash flight recorder: a fixed ring of recent
//!   events per thread ([`flight::record`]), dumped as JSONL on worker
//!   panic, poison recovery, or `{"cmd":"dump"}`
//!   ([`flight::dump_to_file`]).
//!
//! ## Determinism contract
//!
//! Telemetry must never perturb training bits. Every primitive here is
//! write-only from the model's perspective: no clock reading or metric
//! value ever flows back into model math, counters and gauges live off
//! the gradient path, and span guards read `Instant` only into event
//! records. When no sink is attached, span creation is a single relaxed
//! atomic load and **never allocates**; the global kill switch
//! ([`metrics::set_enabled`]) reduces counter/histogram updates to the
//! same single load for overhead A/B measurement (`obs_overhead`
//! bench).

pub mod context;
pub mod flight;
pub mod fsio;
pub mod metrics;
pub mod prom;
pub mod trace;

pub use context::{StageBreakdown, TraceCtx, SEQ_BITS};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::{SpanEvent, SpanGuard};

/// A lock-free static counter handle on the global registry:
/// `rtp_obs::counter!("tensor.matmul.fwd").inc()`. The registry lock is
/// taken once at first use; afterwards the expression is two relaxed
/// atomic loads plus the increment.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**__CELL.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// A lock-free static gauge handle on the global registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**__CELL.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
}

/// A lock-free static histogram handle on the global registry.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**__CELL.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

/// Opens a timing span: `let _g = span!("epoch");` or
/// `let _g = span!("epoch", epoch_index);` (the second argument is
/// recorded as the event's integer `arg`). The span closes when the
/// guard drops. With no sink attached this is one relaxed atomic load
/// and no allocation.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::trace::span_arg($name, $arg as i64)
    };
}
