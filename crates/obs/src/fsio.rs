//! Durable file writes for artifacts the stack must never leave
//! half-written: trained models, training checkpoints, datasets and
//! `results/*.json`.
//!
//! [`write_atomic`] implements the classic write-temp → fsync → rename
//! sequence. POSIX `rename(2)` is atomic within a filesystem, so any
//! observer (including a reader racing a crash) sees either the old
//! complete file or the new complete file — never a truncated mix. The
//! fsync before the rename closes the other durability hole: without
//! it a power loss can leave a *renamed but empty* file, which is
//! exactly as bad as a truncated one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Atomically replaces the file at `path` with `bytes`.
///
/// The data is written to a hidden sibling temp file (same directory,
/// so the rename cannot cross a filesystem boundary), flushed and
/// fsynced, then renamed over `path`. The parent directory is fsynced
/// afterwards on a best-effort basis so the rename itself is durable.
///
/// On any error the temp file is removed and `path` is left exactly as
/// it was — a failed write (full disk, kill mid-write) can never
/// corrupt an existing artifact.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    // pid in the temp name keeps concurrent writers (e.g. two `rtp`
    // processes pointed at the same --out) from clobbering each
    // other's in-flight temp data; last rename still wins, atomically.
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));

    let result = (|| -> io::Result<()> {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.flush()?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Durability of the rename itself requires fsyncing the
        // directory entry. Some platforms/filesystems refuse to open
        // directories for syncing; the rename is still *atomic* there,
        // so this is best-effort.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        Ok(())
    })();

    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic`] for string content (the common JSON-artifact case).
pub fn write_atomic_str(path: &Path, content: &str) -> io::Result<()> {
    write_atomic(path, content.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("rtp-fsio-{tag}-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces_content() {
        let dir = tmpdir("basic");
        let p = dir.join("artifact.json");
        write_atomic(&p, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"{\"v\":1}");
        write_atomic_str(&p, "{\"v\":2}").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "{\"v\":2}");
        // no temp litter left behind
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_write_preserves_existing_file() {
        let dir = tmpdir("fail");
        let p = dir.join("keep.json");
        write_atomic(&p, b"original").unwrap();
        // Writing *through* a directory path fails (the temp file open
        // succeeds, the rename does not — it targets a directory).
        let clash = dir.join("clash");
        fs::create_dir_all(&clash).unwrap();
        assert!(write_atomic(&clash, b"x").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"original");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_file_name_writes_in_cwd_shape_paths() {
        // A path with no parent component must not panic; exercise the
        // "." fallback through a relative path inside a temp cwd-like
        // dir instead of actually chdir-ing (tests run concurrently).
        let dir = tmpdir("rel");
        let p = dir.join("x.json");
        write_atomic(&p, b"ok").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"ok");
        fs::remove_dir_all(&dir).ok();
    }
}
