//! Crash flight recorder: a fixed-size ring buffer of recent events
//! per thread, dumped as JSONL when something goes wrong.
//!
//! Counters tell you *how often* a worker panicked; the flight recorder
//! tells you *what the process was doing* when it happened. Each thread
//! that records owns a fixed ring of [`CAPACITY`] slots; recording is a
//! `fetch_add` on the ring head plus one uncontended slot store, and
//! when the recorder is disabled (the default) it is a single relaxed
//! atomic load with the detail closure never invoked. There is no
//! global serialization on the record path — threads only meet at a
//! registry mutex once, when a thread's ring is first created.
//!
//! [`snapshot`] collects every ring and orders events by timestamp;
//! [`dump_to_file`] writes them as JSONL through
//! [`crate::fsio::write_atomic`] (a crash mid-dump cannot leave a
//! truncated post-mortem) and flushes the span sink so a `--log-json`
//! file is complete at the moment the dump lands.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Events retained per recording thread.
pub const CAPACITY: usize = 64;

/// What kind of moment an event captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A closed tracing span (mirrored from [`crate::trace`]).
    Span,
    /// A request-level failure that was replied to and survived.
    Error,
    /// A caught panic (worker, engine, or evaluation thread).
    Panic,
    /// Trainer epoch progress.
    Epoch,
    /// A served request (recorded at reply time with its trace id).
    Request,
    /// Recovery from a poisoned lock.
    Recovery,
    /// A model hot-swap (a serve-side reload or an online-loop push).
    Reload,
}

impl Kind {
    /// Stable lowercase tag used in the JSONL dump.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Span => "span",
            Kind::Error => "error",
            Kind::Panic => "panic",
            Kind::Epoch => "epoch",
            Kind::Request => "request",
            Kind::Recovery => "recovery",
            Kind::Reload => "reload",
        }
    }
}

/// One recorded moment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the recorder's own epoch (first enable).
    pub ts_us: u64,
    /// Dense id of the recording thread (1-based).
    pub thread: u64,
    /// Event kind.
    pub kind: Kind,
    /// Static site name (e.g. `"serve.request"`, `"train.epoch"`).
    pub name: &'static str,
    /// Trace id of the request this event belongs to (0 = none).
    pub trace_id: u64,
    /// Free-form detail, built lazily only when recording is enabled.
    pub detail: String,
}

impl Event {
    /// The JSONL representation written by [`dump_to_file`].
    pub fn to_json_line(&self) -> String {
        let mut s = format!(
            "{{\"ts_us\":{},\"thread\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.ts_us,
            self.thread,
            self.kind.as_str(),
            self.name
        );
        if self.trace_id != 0 {
            s.push_str(&format!(",\"trace_id\":{}", self.trace_id));
        }
        if !self.detail.is_empty() {
            s.push_str(",\"detail\":\"");
            escape_json_into(&self.detail, &mut s);
            s.push('"');
        }
        s.push('}');
        s
    }
}

/// Escapes `src` as JSON string content (quotes, backslashes, control
/// characters) into `out`.
pub fn escape_json_into(src: &str, out: &mut String) {
    for c in src.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

struct Ring {
    thread: u64,
    head: AtomicU64,
    slots: Box<[Mutex<Option<Event>>]>,
}

impl Ring {
    fn new(thread: u64) -> Self {
        let slots: Vec<Mutex<Option<Event>>> = (0..CAPACITY).map(|_| Mutex::new(None)).collect();
        Self { thread, head: AtomicU64::new(0), slots: slots.into_boxed_slice() }
    }

    fn push(&self, event: Event) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) as usize % CAPACITY;
        // Only this thread pushes to its own ring; the mutex exists for
        // snapshot readers and is uncontended on the record path.
        *self.slots[slot].lock().unwrap_or_else(|e| e.into_inner()) = Some(event);
    }

    fn events(&self) -> Vec<Event> {
        self.slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Monotonic origin for `ts_us`, fixed at first enable (or first use).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static RING: std::cell::OnceCell<Arc<Ring>> = const { std::cell::OnceCell::new() };
}

fn this_ring() -> Arc<Ring> {
    RING.with(|r| {
        r.get_or_init(|| {
            let ring = Arc::new(Ring::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            rings().lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&ring));
            ring
        })
        .clone()
    })
}

/// Turns the recorder on or off. Off (the default) makes [`record`] a
/// single relaxed load; existing ring contents are retained.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the recorder is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event on the calling thread's ring. `detail` is invoked
/// only when the recorder is enabled, so callers can interpolate
/// request context without paying for it in the disabled case.
#[inline]
pub fn record(kind: Kind, name: &'static str, trace_id: u64, detail: impl FnOnce() -> String) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let ts_us = epoch().elapsed().as_micros() as u64;
    let ring = this_ring();
    ring.push(Event { ts_us, thread: ring.thread, kind, name, trace_id, detail: detail() });
}

/// All currently retained events across every thread's ring, ordered
/// by timestamp (ties broken by thread id).
pub fn snapshot() -> Vec<Event> {
    let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
    let mut events: Vec<Event> = rings.iter().flat_map(|r| r.events()).collect();
    events.sort_by_key(|e| (e.ts_us, e.thread));
    events
}

/// Renders [`snapshot`] as JSONL (one event per line, trailing
/// newline when non-empty).
pub fn snapshot_jsonl() -> String {
    let mut out = String::new();
    for event in snapshot() {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

/// Dumps the recorder to `path` as JSONL via
/// [`crate::fsio::write_atomic`], after flushing the span sink so the
/// companion `--log-json` file is complete at dump time. Returns the
/// number of events written.
pub fn dump_to_file(path: &str) -> std::io::Result<usize> {
    crate::trace::flush();
    let events = snapshot();
    let mut out = String::new();
    for event in &events {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    crate::fsio::write_atomic(std::path::Path::new(path), out.as_bytes())?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process state shared with other tests in this
    // binary, so assertions are containment, not exact counts.

    #[test]
    fn disabled_recorder_skips_detail_closure() {
        // Another test may have enabled the recorder; force off briefly.
        let was = enabled();
        set_enabled(false);
        let mut invoked = false;
        record(Kind::Error, "flight.test.disabled", 7, || {
            invoked = true;
            String::new()
        });
        assert!(!invoked, "detail must not be built while disabled");
        set_enabled(was);
    }

    #[test]
    fn records_wrap_and_survive_in_snapshot() {
        set_enabled(true);
        for i in 0..(CAPACITY + 5) {
            record(Kind::Request, "flight.test.wrap", 1000 + i as u64, || format!("i={i}"));
        }
        let events = snapshot();
        let mine: Vec<&Event> = events.iter().filter(|e| e.name == "flight.test.wrap").collect();
        assert!(mine.len() <= CAPACITY, "ring must cap retained events");
        // The newest event survives; the oldest was overwritten.
        assert!(mine.iter().any(|e| e.trace_id == 1000 + CAPACITY as u64 + 4));
        assert!(!mine.iter().any(|e| e.trace_id == 1000));
        // Snapshot is time-ordered.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn cross_thread_events_all_land_in_snapshot() {
        set_enabled(true);
        let handles: Vec<_> = (0..3)
            .map(|t| {
                std::thread::spawn(move || {
                    record(Kind::Epoch, "flight.test.thread", 2000 + t, || format!("t={t}"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = snapshot();
        for t in 0..3u64 {
            assert!(
                events.iter().any(|e| e.name == "flight.test.thread" && e.trace_id == 2000 + t),
                "thread {t} event missing"
            );
        }
    }

    #[test]
    fn json_lines_escape_and_shape() {
        let e = Event {
            ts_us: 12,
            thread: 3,
            kind: Kind::Panic,
            name: "serve.worker",
            trace_id: 42,
            detail: "boom \"quoted\"\nline2\ttab\u{1}".to_string(),
        };
        let line = e.to_json_line();
        assert_eq!(
            line,
            "{\"ts_us\":12,\"thread\":3,\"kind\":\"panic\",\"name\":\"serve.worker\",\
             \"trace_id\":42,\"detail\":\"boom \\\"quoted\\\"\\nline2\\ttab\\u0001\"}"
        );
        // Zero trace id and empty detail are omitted entirely.
        let bare = Event {
            ts_us: 1,
            thread: 1,
            kind: Kind::Epoch,
            name: "train.epoch",
            trace_id: 0,
            detail: String::new(),
        };
        assert_eq!(
            bare.to_json_line(),
            "{\"ts_us\":1,\"thread\":1,\"kind\":\"epoch\",\"name\":\"train.epoch\"}"
        );
    }

    #[test]
    fn dump_writes_jsonl_file() {
        set_enabled(true);
        record(Kind::Panic, "flight.test.dump", 555, || "dump me".to_string());
        let path =
            std::env::temp_dir().join(format!("rtp-obs-flight-{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        let n = dump_to_file(&path_s).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), n);
        assert!(text.lines().any(|l| l.contains("\"trace_id\":555")), "{text}");
    }
}
