//! The metrics registry: atomic counters, gauges and fixed-bucket log2
//! histograms with mergeable snapshots.
//!
//! # Hot-path cost model
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed
//! out by a [`Registry`]; the registry's mutex is held only during
//! registration and snapshotting (cold paths). Every update is a
//! handful of `Relaxed` atomic ops — there is no lock, no allocation
//! and no syscall on the hot path. The global kill switch
//! ([`set_enabled`]) turns every update into a single relaxed load, the
//! "stripped" arm of the `obs_overhead` bench.
//!
//! # Histogram layout
//!
//! Values are `u64`s bucketed HdrHistogram-style: the first 16 buckets
//! hold 0..=15 exactly; above that each power-of-two decade splits into
//! 16 linear sub-buckets, so the bucket floor underestimates a raw
//! value by less than 1/16 of its magnitude. [`quantize`] maps a value
//! to its bucket floor; percentile extraction returns exactly
//! `quantize(sorted_raw_values[rank])` — an exact, testable contract
//! (see the proptest oracle in `tests/registry.rs`) rather than an
//! "approximately right" one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Exact buckets below `2^SUB_BITS`, and linear sub-buckets per decade
/// above.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Total bucket count: 16 exact + 16 per decade for majors 4..=63.
pub const NUM_BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Global kill switch. `false` reduces every counter/gauge/histogram
/// update to one relaxed load (used by the `obs_overhead` bench's
/// "stripped" arm). Defaults to `true`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[inline]
fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Bucket index of a raw value.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let major = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let sub = ((v >> (major - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        SUBS + (major - SUB_BITS) as usize * SUBS + sub
    }
}

/// Smallest raw value that lands in bucket `i` (the bucket floor).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i < SUBS {
        i as u64
    } else {
        let major = SUB_BITS + ((i - SUBS) / SUBS) as u32;
        let sub = ((i - SUBS) % SUBS) as u64;
        (SUBS as u64 + sub) << (major - SUB_BITS)
    }
}

/// The histogram's value resolution: `quantize(v)` is the floor of the
/// bucket containing `v` (`quantize(v) <= v`, relative error < 1/16).
#[inline]
pub fn quantize(v: u64) -> u64 {
    bucket_floor(bucket_index(v))
}

// -------------------------------------------------------------------
// primitives
// -------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (f64, stored as bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (see the module docs
/// for the bucket layout). All updates are relaxed atomics; concurrent
/// `record`s are never lost.
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { counts: vec![0; NUM_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded raw values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded raw value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket sample counts, indexed by bucket (see
    /// [`bucket_floor`] for a bucket's value range). Exposed for
    /// exporters that render the full distribution.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Mean of the recorded raw values (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`), quantized to the bucket floor.
    ///
    /// Contract: equals `quantize(sorted_raw[ceil(q*n) - 1])` exactly —
    /// quantization is monotone, so bucket-rank order matches raw-rank
    /// order. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let k = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= k {
                return bucket_floor(i);
            }
        }
        bucket_floor(NUM_BUCKETS - 1)
    }

    /// Element-wise accumulation of `other` into `self`. Associative
    /// and commutative: shard-local histograms can be merged in any
    /// grouping.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

// -------------------------------------------------------------------
// registry
// -------------------------------------------------------------------

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics. Registration and snapshotting lock a
/// mutex; the returned `Arc` handles update lock-free. The process-wide
/// instance is [`global`]; subsystems that need isolation (e.g. one
/// registry per server) create their own and merge snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.histograms.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            counters: inner.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// The process-wide registry (used by the [`crate::counter!`] family of
/// macros).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// An owned copy of a registry's state at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Accumulates `other` into `self`: counters and histograms add
    /// (associative + commutative), gauges are right-biased (the
    /// argument wins — associative, mirroring last-write-wins).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The kill switch is process-global, so tests that record metrics
    /// and the test that flips the switch must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        for v in (0u64..4096).chain([u64::MAX, u64::MAX / 3, 1 << 40, (1 << 40) + 12345]) {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            let floor = bucket_floor(i);
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            // floor is in the same bucket, and quantize is idempotent
            assert_eq!(bucket_index(floor), i, "v={v}");
            assert_eq!(quantize(quantize(v)), quantize(v));
        }
        // exact below 16
        for v in 0u64..16 {
            assert_eq!(quantize(v), v);
        }
    }

    #[test]
    fn quantize_is_monotone() {
        let mut prev = 0u64;
        for v in 0u64..100_000 {
            let q = quantize(v);
            assert!(q >= prev, "quantize must be monotone at {v}");
            prev = q;
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _guard = serial();
        let c = Counter::default();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::default();
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn kill_switch_disables_updates() {
        let _guard = serial();
        let c = Counter::default();
        let h = Histogram::default();
        set_enabled(false);
        c.inc();
        h.record(7);
        set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count(), 0);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_percentiles_on_small_exact_values() {
        let _guard = serial();
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.sum(), 55);
        assert_eq!(s.max(), 10);
        assert_eq!(s.percentile(0.5), 5);
        assert_eq!(s.percentile(0.9), 9);
        assert_eq!(s.percentile(1.0), 10);
        assert_eq!(s.percentile(0.001), 1);
    }

    #[test]
    fn registry_returns_the_same_handle_per_name() {
        let _guard = serial();
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("x"), Some(&1));
    }
}
