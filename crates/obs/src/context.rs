//! Per-request trace context for the serving stack: u64 trace ids
//! minted at connection accept and a fixed five-stage latency
//! breakdown that follows one request through worker dispatch,
//! batch-queue enqueue, the batched forward, reply demux and the reply
//! write.
//!
//! A [`TraceCtx`] is created when a connection is accepted; every
//! request line on that connection then gets its own trace id from
//! [`TraceCtx::next_request`]. Ids pack the connection and the request
//! sequence (`conn << SEQ_BITS | seq`), so consecutive requests on one
//! connection have consecutive ids and the connection a request came
//! in on is recoverable from its id alone — which is exactly what a
//! post-mortem flight-recorder dump needs.
//!
//! Timestamps never enter this module: stages are *durations* computed
//! by the serving layer from monotonic [`std::time::Instant`] pairs,
//! so a breakdown is non-negative by construction and the sum of the
//! stages can never exceed the request's end-to-end latency (each
//! stage is a disjoint sub-interval of the handle window).

use std::sync::atomic::{AtomicU64, Ordering};

/// Low bits of a trace id reserved for the per-connection request
/// sequence number (2^20 pipelined requests per connection before the
/// context rolls over into a fresh id segment).
pub const SEQ_BITS: u32 = 20;

/// Largest sequence number that fits in the trace-id layout.
const SEQ_MAX: u64 = (1 << SEQ_BITS) - 1;

static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

/// The trace context of one accepted connection.
#[derive(Debug)]
pub struct TraceCtx {
    conn: u64,
    seq: u64,
    rollovers: u64,
}

impl TraceCtx {
    /// Mints the context for a freshly accepted connection. Connection
    /// ids are process-wide and monotonically increasing.
    pub fn at_accept() -> Self {
        Self { conn: NEXT_CONN.fetch_add(1, Ordering::Relaxed), seq: 0, rollovers: 0 }
    }

    /// The connection id this context was minted for. After a sequence
    /// rollover this is the id of the *current* segment, not the one
    /// minted at accept.
    pub fn conn_id(&self) -> u64 {
        self.conn
    }

    /// How many times this connection exhausted a 2^20-request id
    /// segment and rolled over into a fresh one. The serving layer
    /// surfaces this as `serve.trace_id_wraps`.
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// Returns the trace id of the next request line on this
    /// connection: `conn << SEQ_BITS | seq`, with `seq` starting at 1.
    ///
    /// When the sequence would overflow its `SEQ_BITS` field the
    /// context mints a fresh connection-id segment from the same
    /// process-wide allocator that `at_accept` uses, instead of
    /// silently wrapping: ids stay globally unique (request 2^20+1 can
    /// no longer alias request 1 or collide into another connection's
    /// id space), at the cost of `conn_id` changing mid-connection —
    /// which [`Self::rollovers`] makes observable.
    pub fn next_request(&mut self) -> u64 {
        self.seq += 1;
        if self.seq > SEQ_MAX {
            self.conn = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
            self.seq = 1;
            self.rollovers += 1;
        }
        (self.conn << SEQ_BITS) | self.seq
    }
}

/// Per-stage durations (microseconds) of one served request.
///
/// * `queue_wait_us` — from batch-queue enqueue until the inference
///   engine dequeued the job;
/// * `batch_form_us` — from dequeue until the micro-batch flushed
///   (window expiry or the batch filling up);
/// * `forward_us` — the model forward (batched or per-worker);
/// * `demux_us` — from forward completion until the owning worker
///   received its reply;
/// * `write_us` — reply serialization (in the echoed breakdown; the
///   `serve.stage.write_us` histogram additionally includes the socket
///   write, which a reply cannot observe about itself).
///
/// Unbatched and cache-hit requests have `queue_wait_us ==
/// batch_form_us == demux_us == 0` — they never cross a thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Time spent queued before the inference engine picked the job up.
    pub queue_wait_us: u64,
    /// Time the job waited for its micro-batch to form.
    pub batch_form_us: u64,
    /// Model forward duration.
    pub forward_us: u64,
    /// Reply demultiplex latency back to the worker.
    pub demux_us: u64,
    /// Reply serialization (plus socket write in the histogram).
    pub write_us: u64,
}

impl StageBreakdown {
    /// Stage names, in pipeline order — the suffixes of the
    /// `serve.stage.<name>_us` histogram family.
    pub const NAMES: [&'static str; 5] = ["queue_wait", "batch_form", "forward", "demux", "write"];

    /// Sum of all stage durations.
    pub fn total_us(&self) -> u64 {
        self.queue_wait_us + self.batch_form_us + self.forward_us + self.demux_us + self.write_us
    }

    /// The JSON object spliced into traced replies
    /// (`"stages":{...}`) — key order is fixed to pipeline order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"queue_wait_us\":{},\"batch_form_us\":{},\"forward_us\":{},\"demux_us\":{},\"write_us\":{}}}",
            self.queue_wait_us, self.batch_form_us, self.forward_us, self.demux_us, self.write_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_consecutive_within_a_connection_and_distinct_across() {
        let mut a = TraceCtx::at_accept();
        let mut b = TraceCtx::at_accept();
        assert_ne!(a.conn_id(), b.conn_id());
        let a1 = a.next_request();
        let a2 = a.next_request();
        assert_eq!(a2, a1 + 1, "pipelined requests get consecutive ids");
        assert_eq!(a1 >> SEQ_BITS, a.conn_id(), "connection recoverable from id");
        let b1 = b.next_request();
        assert_ne!(a1, b1);
        assert_ne!(a2, b1);
    }

    #[test]
    fn sequence_rollover_mints_a_fresh_segment_instead_of_aliasing() {
        let mut ctx = TraceCtx::at_accept();
        ctx.seq = SEQ_MAX - 1;
        let first_conn = ctx.conn_id();
        let a = ctx.next_request(); // seq reaches SEQ_MAX: last id of this segment
        let b = ctx.next_request(); // seq would exceed SEQ_MAX: rollover
        assert_eq!(a, (first_conn << SEQ_BITS) | SEQ_MAX, "last id of the segment");
        assert_eq!(ctx.rollovers(), 1, "rollover must be observable");
        assert_ne!(ctx.conn_id(), first_conn, "rollover mints a fresh segment");
        assert_eq!(b, (ctx.conn_id() << SEQ_BITS) | 1, "fresh segment restarts at seq 1");
        // The buggy masked layout produced (conn << SEQ_BITS) | 1 for
        // request 2^20 + 1 — exactly request 1's id. The rolled id must
        // collide with neither an early id of this connection nor any
        // id of a connection accepted later.
        assert_ne!(b, (first_conn << SEQ_BITS) | 1, "no aliasing with request 1");
        let later = TraceCtx::at_accept();
        assert_ne!(ctx.conn_id(), later.conn_id(), "segment comes from the shared allocator");
    }

    #[test]
    fn breakdown_sums_and_serializes_in_pipeline_order() {
        let s = StageBreakdown {
            queue_wait_us: 1,
            batch_form_us: 2,
            forward_us: 300,
            demux_us: 4,
            write_us: 50,
        };
        assert_eq!(s.total_us(), 357);
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"queue_wait_us\":1,\"batch_form_us\":2,\"forward_us\":300,\"demux_us\":4,\"write_us\":50}"
        );
        let order: Vec<usize> =
            StageBreakdown::NAMES.iter().map(|n| json.find(n).expect("key present")).collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "keys in pipeline order");
    }
}
