//! Prometheus text exposition: renders a metrics [`Snapshot`] in the
//! text format any scraper (or `watch cat`) understands, and a small
//! validating parser used by tests and CI to check what we emit.
//!
//! Counters and gauges render as single samples. Histograms render the
//! full log2-linear distribution as cumulative `_bucket{le="..."}`
//! samples plus `_sum` and `_count`. Because histogram samples are
//! integers, each bucket's upper bound is exact: bucket `i` covers
//! `bucket_floor(i) ..= bucket_floor(i+1) - 1`, so `le` is the
//! inclusive integer bound rather than a lossy float edge. Empty
//! buckets are skipped (the cumulative count is unchanged there), which
//! keeps a 976-bucket histogram's exposition proportional to the
//! number of *occupied* buckets.
//!
//! Metric names have `.` and `-` mapped to `_`
//! (`serve.stage.queue_wait_us` → `serve_stage_queue_wait_us`).

use crate::metrics::{bucket_floor, Snapshot, NUM_BUCKETS};

/// Maps a registry metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): `.` and `-` become `_`, any other
/// illegal character becomes `_`, and a leading digit is prefixed.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats an f64 the way Prometheus expects (`+Inf`/`-Inf`/`NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot as Prometheus text exposition format.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*value)));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let counts = h.bucket_counts();
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if i + 1 < NUM_BUCKETS {
                // Samples are integers, so the inclusive integer upper
                // bound of bucket i is exact.
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_floor(i + 1) - 1));
            }
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {cum}\n"));
        out.push_str(&format!("{n}_sum {}\n", h.sum()));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Per-histogram-family state accumulated while validating.
#[derive(Default)]
struct Family {
    last_le: Option<f64>,
    last_cum: Option<u64>,
    inf: Option<u64>,
    sum: bool,
    count: Option<u64>,
}

/// Validates Prometheus text exposition: metric-name and label syntax,
/// parseable sample values, per-histogram monotone non-decreasing
/// cumulative bucket counts with strictly increasing `le` bounds, a
/// `+Inf` bucket, and `_count` equal to the `+Inf` bucket. Returns the
/// number of sample lines on success.
pub fn validate(text: &str) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut samples = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let err = |msg: &str| Err(format!("line {}: {msg}: {line}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.first() == Some(&"TYPE") {
                if words.len() != 3 || !valid_name(words[1]) {
                    return err("malformed TYPE comment");
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&words[2]) {
                    return err("unknown metric type");
                }
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return err("sample line has no value"),
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => {
                let Some(body) = rest.strip_suffix('}') else {
                    return err("unterminated label set");
                };
                (n, Some(body))
            }
            None => (name_part, None),
        };
        if !valid_name(name) {
            return err("invalid metric name");
        }
        let mut le: Option<f64> = None;
        if let Some(body) = labels {
            for pair in body.split(',') {
                let Some((k, v)) = pair.split_once('=') else {
                    return err("label without '='");
                };
                if !valid_name(k) {
                    return err("invalid label name");
                }
                let Some(v) = v.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                    return err("label value not quoted");
                };
                if k == "le" {
                    le = Some(if v == "+Inf" {
                        f64::INFINITY
                    } else {
                        match v.parse::<f64>() {
                            Ok(x) => x,
                            Err(_) => return err("unparseable le bound"),
                        }
                    });
                }
            }
        }
        let value: f64 = match value_part {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => match v.parse() {
                Ok(x) => x,
                Err(_) => return err("unparseable sample value"),
            },
        };
        samples += 1;
        if let Some(base) = name.strip_suffix("_bucket") {
            let Some(le) = le else {
                return err("_bucket sample without le label");
            };
            let fam = families.entry(base.to_string()).or_default();
            if let Some(prev) = fam.last_le {
                if le <= prev {
                    return err("le bounds not strictly increasing");
                }
            }
            let cum = value as u64;
            if let Some(prev) = fam.last_cum {
                if cum < prev {
                    return err("cumulative bucket count decreased");
                }
            }
            fam.last_le = Some(le);
            fam.last_cum = Some(cum);
            if le == f64::INFINITY {
                fam.inf = Some(cum);
            }
        } else if let Some(base) = name.strip_suffix("_sum") {
            if let Some(fam) = families.get_mut(base) {
                fam.sum = true;
            }
        } else if let Some(base) = name.strip_suffix("_count") {
            if let Some(fam) = families.get_mut(base) {
                fam.count = Some(value as u64);
            }
        }
    }
    for (base, fam) in &families {
        let Some(inf) = fam.inf else {
            return Err(format!("histogram {base}: missing le=\"+Inf\" bucket"));
        };
        if !fam.sum {
            return Err(format!("histogram {base}: missing {base}_sum"));
        }
        match fam.count {
            Some(c) if c == inf => {}
            Some(c) => {
                return Err(format!("histogram {base}: _count {c} != +Inf bucket {inf}"));
            }
            None => return Err(format!("histogram {base}: missing {base}_count")),
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("serve.requests").add(17);
        r.gauge("serve.cache.hit_rate").set(0.75);
        let h = r.histogram("serve.stage.forward_us");
        for v in [3u64, 3, 17, 900, 901, 123_456] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn render_output_validates_and_names_are_sanitized() {
        let text = render(&sample_snapshot());
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 17\n"), "{text}");
        assert!(text.contains("serve_cache_hit_rate 0.75\n"), "{text}");
        assert!(text.contains("# TYPE serve_stage_forward_us histogram\n"), "{text}");
        assert!(text.contains("serve_stage_forward_us_bucket{le=\"+Inf\"} 6\n"), "{text}");
        assert!(text.contains("serve_stage_forward_us_count 6\n"), "{text}");
        let samples = validate(&text).expect("rendered text must validate");
        assert!(samples >= 6, "expected several samples, got {samples}");
    }

    #[test]
    fn bucket_bounds_are_exact_inclusive_integers() {
        let text = render(&sample_snapshot());
        // 3 lands in exact bucket 3: le = 3. Two samples there.
        assert!(text.contains("serve_stage_forward_us_bucket{le=\"3\"} 2\n"), "{text}");
        // 17 lands in [16,17]: le = 17, cumulative 3.
        assert!(text.contains("serve_stage_forward_us_bucket{le=\"17\"} 3\n"), "{text}");
        // 900 and 901 share bucket [896,927]: le = 927, cumulative 5.
        assert!(text.contains("serve_stage_forward_us_bucket{le=\"927\"} 5\n"), "{text}");
        // _sum is the exact raw sum, not a bucket approximation.
        let sum: u64 = [3u64, 3, 17, 900, 901, 123_456].iter().sum();
        assert!(text.contains(&format!("serve_stage_forward_us_sum {sum}\n")), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_and_validates() {
        let text = render(&Snapshot::default());
        assert!(text.is_empty());
        assert_eq!(validate(&text), Ok(0));
    }

    #[test]
    fn empty_histogram_still_emits_inf_sum_count() {
        let r = Registry::new();
        r.histogram("empty.h");
        let text = render(&r.snapshot());
        assert!(text.contains("empty_h_bucket{le=\"+Inf\"} 0\n"), "{text}");
        assert!(text.contains("empty_h_sum 0\n"), "{text}");
        assert!(text.contains("empty_h_count 0\n"), "{text}");
        validate(&text).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_text() {
        let bad = [
            "9metric 1\n",                                   // bad name
            "m{le=3} 1\n",                                   // unquoted label
            "m{le\"3\"} 1\n",                                // label without =
            "m 1 2 3\nx\n",                                  // no value on line 2
            "h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n",  // cum decreased
            "h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\n",  // le not increasing
            "h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",    // missing +Inf
            "h_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n", // count mismatch
            "h_bucket{le=\"+Inf\"} 2\nh_count 2\n",          // missing sum
            "h_bucket{le=\"+Inf\"} 2\nh_sum 1\n",            // missing count
            "# TYPE h wibble\n",                             // unknown type
        ];
        for text in bad {
            assert!(validate(text).is_err(), "should reject: {text:?}");
        }
    }

    #[test]
    fn sanitize_maps_onto_name_grammar() {
        assert_eq!(sanitize("serve.stage.queue_wait_us"), "serve_stage_queue_wait_us");
        assert_eq!(sanitize("train.val-krc"), "train_val_krc");
        assert_eq!(sanitize("1weird name"), "_1weird_name");
        assert!(valid_name(&sanitize("1weird name")));
    }

    #[test]
    fn special_floats_render_in_prometheus_spelling() {
        let r = Registry::new();
        r.gauge("g.nan").set(f64::NAN);
        r.gauge("g.inf").set(f64::INFINITY);
        let text = render(&r.snapshot());
        assert!(text.contains("g_inf +Inf\n"), "{text}");
        assert!(text.contains("g_nan NaN\n"), "{text}");
        validate(&text).unwrap();
    }
}
