//! Structured span tracing: RAII guards that record wall-time and
//! per-thread parent/child structure, drained as JSONL events.
//!
//! A span is opened with [`crate::span!`] (or [`span`]/[`span_arg`])
//! and closed when its guard drops. Each thread keeps its own implicit
//! span stack — the most recently opened, still-live span on a thread
//! is the parent of the next one — so traces nest correctly even with
//! data-parallel workers.
//!
//! # Sinks
//!
//! Events go to at most one process-wide sink:
//! * [`attach_file`] — append JSONL lines to a file (`rtp train
//!   --log-json PATH`).
//! * [`attach_memory`] — buffer events in memory; [`detach`] returns
//!   them (the `run_all` timing artifact).
//!
//! With **no sink attached** (the default), opening a span is a single
//! relaxed atomic load and allocates nothing — tracing can stay
//! compiled into every hot loop. Timestamps are read only on the
//! enabled path and only into event records, never into model math, so
//! tracing cannot perturb training determinism.

use std::cell::Cell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One closed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static: span sites are compiled in).
    pub name: &'static str,
    /// Optional integer argument (epoch index, sample count, …).
    pub arg: Option<i64>,
    /// Unique id (process-wide, 1-based).
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// Opening thread (small dense id, not the OS tid).
    pub thread: u64,
    /// Start offset from sink attach time, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
}

impl SpanEvent {
    /// The JSONL representation written by the file sink.
    pub fn to_json_line(&self) -> String {
        let mut s = format!("{{\"name\":\"{}\"", self.name);
        if let Some(a) = self.arg {
            s.push_str(&format!(",\"arg\":{a}"));
        }
        s.push_str(&format!(
            ",\"id\":{},\"parent\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
            self.id, self.parent, self.thread, self.start_us, self.dur_us
        ));
        s
    }
}

enum Sink {
    File(BufWriter<File>),
    Memory(Vec<SpanEvent>),
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// The sink mutex is held only across short buffered writes; if a
/// panicking thread poisoned it anyway, the sink state itself is still
/// coherent, so recover rather than losing every later span (and the
/// final flush) to the poison.
fn lock_sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// Innermost live span id on this thread (0 = none).
    static PARENT: Cell<u64> = const { Cell::new(0) };
    /// Dense per-thread id, assigned on first span.
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Monotonic time origin for `start_us`, fixed at first sink attach.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Attaches a JSONL file sink (truncating `path`) and enables tracing.
/// Replaces any previous sink.
pub fn attach_file(path: &str) -> std::io::Result<()> {
    epoch();
    let file = File::create(path)?;
    *lock_sink() = Some(Sink::File(BufWriter::new(file)));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Attaches an in-memory sink and enables tracing. Replaces any
/// previous sink.
pub fn attach_memory() {
    epoch();
    *lock_sink() = Some(Sink::Memory(Vec::new()));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Flushes the file sink's buffer and fsyncs the file, so every span
/// recorded so far is durably on disk. No-op for a memory sink or when
/// nothing is attached. Called on graceful shutdown and from flight
/// recorder dumps, so a `--log-json` file is never truncated
/// mid-record when the process dies right after.
pub fn flush() {
    if let Some(Sink::File(w)) = lock_sink().as_mut() {
        let _ = w.flush();
        let _ = w.get_ref().sync_all();
    }
}

/// Disables tracing and removes the sink. A file sink is flushed and
/// fsynced; a memory sink's buffered events are returned (empty for a
/// file sink or when nothing was attached).
pub fn detach() -> Vec<SpanEvent> {
    ENABLED.store(false, Ordering::Relaxed);
    match lock_sink().take() {
        Some(Sink::File(mut w)) => {
            let _ = w.flush();
            let _ = w.get_ref().sync_all();
            Vec::new()
        }
        Some(Sink::Memory(events)) => events,
        None => Vec::new(),
    }
}

/// Whether a sink is attached.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct ActiveSpan {
    name: &'static str,
    arg: Option<i64>,
    id: u64,
    parent: u64,
    start: Instant,
}

/// RAII guard returned by [`span`]; records the event when dropped.
/// Inert (`active: None`, no allocation) when no sink is attached at
/// open time.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Opens a span (see [`crate::span!`]).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_inner(name, None)
}

/// Opens a span carrying an integer argument.
#[inline]
pub fn span_arg(name: &'static str, arg: i64) -> SpanGuard {
    span_inner(name, Some(arg))
}

fn span_inner(name: &'static str, arg: Option<i64>) -> SpanGuard {
    // A span is live if any consumer wants it: a sink, or the flight
    // recorder (which mirrors closed spans into its ring).
    if !ENABLED.load(Ordering::Relaxed) && !crate::flight::enabled() {
        return SpanGuard { active: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = PARENT.with(|p| p.replace(id));
    SpanGuard { active: Some(ActiveSpan { name, arg, id, parent, start: Instant::now() }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        // Restore the thread's parent even if the sink vanished
        // mid-span, or sibling spans would mis-parent.
        PARENT.with(|p| p.set(a.parent));
        let dur_us = a.start.elapsed().as_micros() as u64;
        let start_us =
            a.start.checked_duration_since(epoch()).map(|d| d.as_micros() as u64).unwrap_or(0);
        let event = SpanEvent {
            name: a.name,
            arg: a.arg,
            id: a.id,
            parent: a.parent,
            thread: thread_id(),
            start_us,
            dur_us,
        };
        crate::flight::record(crate::flight::Kind::Span, event.name, 0, || {
            let mut d = format!("dur_us={}", event.dur_us);
            if let Some(a) = event.arg {
                d.push_str(&format!(" arg={a}"));
            }
            d
        });
        if ENABLED.load(Ordering::Relaxed) {
            if let Some(sink) = lock_sink().as_mut() {
                match sink {
                    Sink::File(w) => {
                        let _ = writeln!(w, "{}", event.to_json_line());
                    }
                    Sink::Memory(events) => events.push(event),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process state: tests that attach/detach must not
    /// interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_drain_and_disable_cleanly() {
        let _guard = serial();
        // disabled: guards are inert
        assert!(!enabled());
        {
            let _g = crate::span!("ignored");
        }

        attach_memory();
        {
            let _outer = crate::span!("outer");
            {
                let _inner = crate::span!("inner", 7);
            }
            let _sibling = crate::span!("sibling");
        }
        let events = detach();
        assert!(!enabled());
        assert_eq!(events.len(), 3);
        // drop order: inner, sibling, outer
        let inner = &events[0];
        let sibling = &events[1];
        let outer = &events[2];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.arg, Some(7));
        assert_eq!(inner.parent, outer.id);
        assert_eq!(sibling.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.thread, outer.thread);

        // JSONL shape
        let line = inner.to_json_line();
        assert!(line.starts_with("{\"name\":\"inner\",\"arg\":7,"), "{line}");
        assert!(line.ends_with('}'), "{line}");

        // detached again: no events recorded
        {
            let _g = crate::span!("after");
        }
        assert_eq!(detach().len(), 0);
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let _guard = serial();
        let path = std::env::temp_dir().join(format!("rtp-obs-trace-{}.jsonl", std::process::id()));
        let path_s = path.to_str().unwrap().to_string();
        attach_file(&path_s).unwrap();
        {
            let _g = crate::span!("epoch", 3);
        }
        detach();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"name\":\"epoch\""), "{}", lines[0]);
        assert!(lines[0].contains("\"arg\":3"), "{}", lines[0]);
    }
}
