//! Registry contract tests: exact concurrent counting, the
//! quantized-exact percentile contract against a sorted-vector oracle,
//! and snapshot-merge associativity.

use proptest::prelude::*;
use rtp_obs::metrics::{quantize, Histogram, Registry, Snapshot};

#[test]
fn concurrent_counter_increments_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = Registry::new();
    let counter = registry.counter("contended");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    assert_eq!(registry.snapshot().counters["contended"], THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_are_never_lost() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let h = Histogram::default();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record((t * PER_THREAD + i) as u64);
                }
            });
        }
    });
    let s = h.snapshot();
    assert_eq!(s.count(), (THREADS * PER_THREAD) as u64);
    let n = (THREADS * PER_THREAD) as u64;
    assert_eq!(s.sum(), n * (n - 1) / 2);
    assert_eq!(s.max(), n - 1);
}

/// Values spanning the exact range, several log2 decades and huge
/// magnitudes, so percentiles cross bucket-resolution boundaries.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![0u64..16, 16u64..1024, 1024u64..1_000_000, 1_000_000_000u64..(1u64 << 40)],
        1..300,
    )
}

/// The oracle: `percentile(q)` must equal the quantized k-th smallest
/// raw value, k = ceil(q*n) — quantization is monotone, so sorting raw
/// values and quantizing commutes with ranking.
fn oracle(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let k = ((q * n as f64).ceil() as u64).clamp(1, n);
    quantize(sorted[(k - 1) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_match_the_sorted_vector_oracle(values in samples()) {
        let h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(snap.percentile(q), oracle(&sorted, q));
        }
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
    }

    #[test]
    fn snapshot_merge_is_associative(
        a in samples(),
        b in samples(),
        c in samples(),
        ca in 0u64..1000,
        cb in 0u64..1000,
        cc in 0u64..1000,
    ) {
        let make = |values: &[u64], count: u64, gauge: f64| -> Snapshot {
            let r = Registry::new();
            let h = r.histogram("latency_us");
            for &v in values {
                h.record(v);
            }
            r.counter("requests").add(count);
            r.gauge("freshness").set(gauge);
            r.snapshot()
        };
        let (sa, sb, sc) = (make(&a, ca, 0.1), make(&b, cb, 0.2), make(&c, cc, 0.3));

        // left grouping: (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // right grouping: a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.counters["requests"], ca + cb + cc);
        // gauges are right-biased in either grouping
        prop_assert_eq!(left.gauges["freshness"], 0.3);
        // merged histogram count is the total
        prop_assert_eq!(
            left.histograms["latency_us"].count(),
            (a.len() + b.len() + c.len()) as u64
        );
    }

    #[test]
    fn merged_histogram_percentiles_match_pooled_oracle(a in samples(), b in samples()) {
        // Merging shard snapshots then extracting percentiles must be
        // the same as recording everything into one histogram.
        let record = |values: &[u64]| {
            let h = Histogram::default();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        };
        let mut merged = record(&a);
        merged.merge(&record(&b));
        let mut pooled: Vec<u64> = a.clone();
        pooled.extend_from_slice(&b);
        pooled.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            prop_assert_eq!(merged.percentile(q), oracle(&pooled, q));
        }
    }
}
