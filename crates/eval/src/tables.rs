//! Formatting of the paper's tables from evaluation outcomes.

use rtp_metrics::Bucket;
use serde::{Deserialize, Serialize};

use crate::experiment::{EvalOutcome, Zoo};

/// One row of Table III or IV: method name plus the three metric values
/// for each bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRow {
    /// Method name.
    pub method: String,
    /// `(bucket label, metric1, metric2, metric3)` per bucket.
    pub cells: Vec<(String, f64, f64, f64)>,
}

/// Table I: the qualitative comparison matrix (static content from the
/// paper — reproduced verbatim as it documents the design space).
pub fn comparison_matrix() -> String {
    let rows = [
        ("OSquare", "x", "Route Only", "Tree-based"),
        ("DeepRoute", "x", "Route Only", "Sequence-based"),
        ("DeepETA", "x", "Time Only", "Sequence-based"),
        ("Graph2Route", "x", "Route Only", "Graph-based"),
        ("FDNET", "x", "Route&Time (Separately)", "Sequence-based"),
        ("M2G4RTP", "v", "Route&Time (Jointly)", "Graph-based"),
    ];
    let mut out = String::from("Table I: Comparison between M2G4RTP and related models\n\n");
    out.push_str(&format!(
        "{:<14}{:<13}{:<26}{}\n",
        "Method", "Multi-level", "Route/Time", "Architecture"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for (m, ml, rt, arch) in rows {
        out.push_str(&format!("{m:<14}{ml:<13}{rt:<26}{arch}\n"));
    }
    out
}

/// Table III: route prediction results (HR@3 %, KRC, LSD per bucket).
pub fn route_table(outcome: &EvalOutcome) -> (String, Vec<TableRow>) {
    let mut rows = Vec::new();
    for m in &outcome.methods {
        let cells = Bucket::ALL
            .iter()
            .filter_map(|&b| {
                m.route
                    .iter()
                    .find(|(bb, _)| *bb == b)
                    .map(|(_, r)| (b.label().to_string(), r.hr3, r.krc, r.lsd))
            })
            .collect();
        rows.push(TableRow { method: m.name.clone(), cells });
    }
    let text = render_table(
        "Table III: Route Prediction Results",
        &["HR@3", "KRC", "LSD"],
        &rows,
        outcome.n_test,
    );
    (text, rows)
}

/// Table IV: time prediction results (RMSE, MAE, acc@20 % per bucket).
pub fn time_table(outcome: &EvalOutcome) -> (String, Vec<TableRow>) {
    let mut rows = Vec::new();
    for m in &outcome.methods {
        let cells = Bucket::ALL
            .iter()
            .filter_map(|&b| {
                m.time
                    .iter()
                    .find(|(bb, _)| *bb == b)
                    .map(|(_, t)| (b.label().to_string(), t.rmse, t.mae, t.acc20))
            })
            .collect();
        rows.push(TableRow { method: m.name.clone(), cells });
    }
    let text = render_table(
        "Table IV: Time Prediction Results",
        &["RMSE", "MAE", "acc@20"],
        &rows,
        outcome.n_test,
    );
    (text, rows)
}

fn render_table(title: &str, metrics: &[&str; 3], rows: &[TableRow], n_test: usize) -> String {
    let mut out = format!("{title}  ({n_test} test samples)\n\n");
    let buckets: Vec<String> =
        rows.first().map(|r| r.cells.iter().map(|c| c.0.clone()).collect()).unwrap_or_default();
    out.push_str(&format!("{:<17}", "Method"));
    for b in &buckets {
        out.push_str(&format!("| {b:<25}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<17}", ""));
    for _ in &buckets {
        out.push_str(&format!("| {:>7} {:>7} {:>8} ", metrics[0], metrics[1], metrics[2]));
    }
    out.push('\n');
    out.push_str(&"-".repeat(17 + buckets.len() * 27));
    out.push('\n');
    for r in rows {
        out.push_str(&format!("{:<17}", r.method));
        for (_, a, b, c) in &r.cells {
            out.push_str(&format!("| {a:>7.2} {b:>7.2} {c:>8.2} "));
        }
        out.push('\n');
    }
    out
}

/// Aggregates several same-shaped table-row sets (one per training
/// seed) into a mean ± std rendering, reproducing the ±std the paper
/// reports for every learned method.
///
/// # Panics
/// Panics if the runs disagree on methods or buckets.
pub fn aggregate_rows_with_std(runs: &[Vec<TableRow>], title: &str) -> String {
    assert!(!runs.is_empty(), "need at least one run");
    let base = &runs[0];
    let mut out = format!("{title}  (mean ± std over {} seeds)\n\n", runs.len());
    if let Some(first) = base.first() {
        out.push_str(&format!("{:<17}", "Method"));
        for (label, _, _, _) in &first.cells {
            out.push_str(&format!("| {label:<41}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(17 + first.cells.len() * 43));
        out.push('\n');
    }
    for (ri, row) in base.iter().enumerate() {
        out.push_str(&format!("{:<17}", row.method));
        for ci in 0..row.cells.len() {
            let collect = |f: fn(&(String, f64, f64, f64)) -> f64| -> (f64, f64) {
                let vals: Vec<f64> = runs
                    .iter()
                    .map(|r| {
                        assert_eq!(r[ri].method, row.method, "method order mismatch");
                        f(&r[ri].cells[ci])
                    })
                    .collect();
                mean_std(&vals)
            };
            let (m1, s1) = collect(|c| c.1);
            let (m2, s2) = collect(|c| c.2);
            let (m3, s3) = collect(|c| c.3);
            out.push_str(&format!("| {m1:6.2}±{s1:<5.2} {m2:6.2}±{s2:<5.2} {m3:6.2}±{s3:<5.2} "));
        }
        out.push('\n');
    }
    out
}

fn mean_std(vals: &[f64]) -> (f64, f64) {
    let n = vals.len() as f64;
    let mean = vals.iter().sum::<f64>() / n;
    let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// One row of Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodTimeRow {
    /// Method name.
    pub method: String,
    /// Asymptotic inference complexity (from the paper's analysis).
    pub complexity: String,
    /// Measured mean end-to-end inference latency per query, ms.
    pub infer_ms: f64,
}

/// Table V: scalability analysis — the paper's complexity expressions
/// plus our measured per-query latency.
pub fn scalability_table(outcome: &EvalOutcome, _zoo: &Zoo) -> (String, Vec<MethodTimeRow>) {
    let complexity = |name: &str| -> &'static str {
        match name {
            "Distance-Greedy" | "Time-Greedy" => "O(N log N)",
            "OR-Tools" => "O(N^2) per 2-opt sweep",
            "OSquare" => "O(t d F N)",
            "DeepRoute" => "O(N^2 F + N F^2 + N^2 F^2)",
            "Graph2Route" => "O(N F^2 + E F^2 + N^2 F^2)",
            "FDNET" => "O(N F^2 + N^2 F^2)",
            "M2G4RTP" => "O(N F^2 + E F^2 + N^2 F^2 + A^2 F^2)",
            _ => "-",
        }
    };
    let rows: Vec<MethodTimeRow> = outcome
        .methods
        .iter()
        .map(|m| MethodTimeRow {
            method: m.name.clone(),
            complexity: complexity(&m.name).to_string(),
            infer_ms: m.infer_ms,
        })
        .collect();
    let mut out = String::from("Table V: Scalability Analysis\n\n");
    out.push_str(&format!(
        "{:<17}{:<42}{}\n",
        "Method", "Inference Time Complexity", "Inference Time (ms/query)"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for r in &rows {
        out.push_str(&format!("{:<17}{:<42}{:>10.3}\n", r.method, r.complexity, r.infer_ms));
    }
    out.push_str(
        "\nNote: latency is end-to-end (feature extraction + graph construction +\n\
         model forward) per query on this machine; the paper reports model-only\n\
         inference on the authors' hardware, so compare ordering, not absolutes.\n",
    );
    (out, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_metrics::{RouteMetrics, TimeMetrics};

    fn fake_outcome() -> EvalOutcome {
        let route = vec![
            (Bucket::Short, RouteMetrics { hr3: 70.0, krc: 0.6, lsd: 3.5, count: 10 }),
            (Bucket::All, RouteMetrics { hr3: 68.0, krc: 0.58, lsd: 4.0, count: 12 }),
        ];
        let time =
            vec![(Bucket::All, TimeMetrics { rmse: 40.0, mae: 26.0, acc20: 55.0, count: 80 })];
        EvalOutcome {
            methods: vec![crate::experiment::MethodEval {
                name: "M2G4RTP".into(),
                route,
                time,
                infer_ms: 0.5,
            }],
            n_test: 12,
        }
    }

    #[test]
    fn comparison_matrix_contains_all_methods() {
        let t = comparison_matrix();
        for m in ["OSquare", "DeepRoute", "DeepETA", "Graph2Route", "FDNET", "M2G4RTP"] {
            assert!(t.contains(m), "missing {m}");
        }
    }

    #[test]
    fn route_table_renders_rows_and_metrics() {
        let (text, rows) = route_table(&fake_outcome());
        assert!(text.contains("Table III"));
        assert!(text.contains("M2G4RTP"));
        assert!(text.contains("70.00"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cells.len(), 2);
    }

    #[test]
    fn time_table_renders() {
        let (text, _) = time_table(&fake_outcome());
        assert!(text.contains("Table IV"));
        assert!(text.contains("40.00"));
        assert!(text.contains("acc@20"));
    }

    #[test]
    fn aggregate_rows_computes_mean_and_std() {
        let mk = |hr: f64| {
            vec![TableRow { method: "M2G4RTP".into(), cells: vec![("all".into(), hr, 0.5, 3.0)] }]
        };
        let runs = vec![mk(70.0), mk(74.0)];
        let text = aggregate_rows_with_std(&runs, "Table III");
        assert!(text.contains("2 seeds"));
        assert!(text.contains("72.00±2.00"), "{text}");
        assert!(text.contains("0.50±0.00"), "{text}");
    }

    #[test]
    #[should_panic(expected = "method order mismatch")]
    fn aggregate_rows_rejects_mismatched_runs() {
        let a = vec![TableRow { method: "A".into(), cells: vec![("all".into(), 1.0, 2.0, 3.0)] }];
        let b = vec![TableRow { method: "B".into(), cells: vec![("all".into(), 1.0, 2.0, 3.0)] }];
        aggregate_rows_with_std(&[a, b], "t");
    }

    #[test]
    fn scalability_table_pairs_complexity_with_latency() {
        let outcome = fake_outcome();
        let zoo = Zoo { predictors: vec![], train_seconds: vec![] };
        let (text, rows) = scalability_table(&outcome, &zoo);
        assert!(text.contains("A^2 F^2"), "M2G4RTP complexity mentions AOI term");
        assert_eq!(rows[0].infer_ms, 0.5);
    }
}
