//! # rtp-eval
//!
//! The experiment harness: trains the full model zoo (M²G4RTP plus the
//! seven baselines) on the synthetic dataset and regenerates every
//! table and figure of the paper's evaluation section:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — qualitative method comparison |
//! | `table3` | Table III — route prediction (HR@3 / KRC / LSD, bucketed) |
//! | `table4` | Table IV — time prediction (RMSE / MAE / acc@20, bucketed) |
//! | `table5` | Table V — scalability: complexity + measured inference ms |
//! | `fig4` | Fig. 4 — data distributions + §V.A transfer analysis |
//! | `fig5` | Fig. 5 — component analysis (ablations) |
//! | `fig6` | Fig. 6 — case study |
//! | `run_all` | everything above, sharing one zoo training |
//!
//! Every binary accepts `--quick` (CI-scale) or `--full` (paper-shape
//! scale, the default) and writes text + JSON artifacts under
//! `results/`.
//!
//! The [`service`] module is the §VI deployment demo: a feature
//! extraction layer → inference layer → application layer pipeline
//! serving Intelligent Order Sorting and Minute-Level ETA.

mod experiment;
mod figures;
pub mod render;
pub mod service;
mod tables;

pub use experiment::{
    evaluate_method, evaluate_zoo, train_zoo, EvalOutcome, ExperimentConfig, M2gPredictor,
    MethodEval, Scale, Zoo, M2GPREDICTOR_NAME,
};
pub use figures::{ablation_study, case_study, fig4_distribution, AblationRow, CaseStudy};
pub use tables::{
    aggregate_rows_with_std, comparison_matrix, route_table, scalability_table, time_table,
    MethodTimeRow, TableRow,
};

use std::path::{Path, PathBuf};

/// Resolves the output directory (`results/` next to the workspace
/// root, creating it if needed).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes `content` to `results/<name>` atomically (temp + fsync +
/// rename, so a crash can't leave a truncated artifact) and echoes the
/// path.
pub fn write_artifact(name: &str, content: &str) {
    let path = results_dir().join(name);
    rtp_obs::fsio::write_atomic_str(&path, content).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

/// Parses `--seeds N` from argv (default 1): how many independently
/// seeded trainings to aggregate into mean ± std rows.
pub fn seeds_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seeds")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Parses `--quick` / `--full` from argv (default: full).
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    }
}
