//! Experiment configuration, model-zoo training and shared evaluation.

use m2g4rtp::{M2G4Rtp, ModelConfig, Prediction, TrainConfig, Trainer};
use rtp_baselines::{
    Baseline, DeepBaseline, DeepConfig, DeepKind, DistanceGreedy, OSquare, OSquareConfig,
    OrToolsLike, TimeGreedy,
};
use rtp_metrics::{
    Bucket, RouteMetricAccumulator, RouteMetrics, TimeMetricAccumulator, TimeMetrics,
};
use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig, RtpSample};
use rtp_tensor::Tape;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Display name of the trained M²G4RTP predictor in the zoo.
pub const M2GPREDICTOR_NAME: &str = "M2G4RTP";

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// CI-scale: small dataset, few epochs — tens of seconds.
    Quick,
    /// Paper-shape scale sized for a single CPU core — minutes.
    Full,
}

/// Everything an experiment run needs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// M²G4RTP training parameters.
    pub train: TrainConfig,
    /// M²G4RTP model hyperparameters factory seed.
    pub model_seed: u64,
    /// Deep-baseline parameters.
    pub deep: DeepConfig,
    /// OSquare parameters.
    pub osquare: OSquareConfig,
    /// Row cap for OSquare's pointwise training set (exact-split GBDT
    /// is O(rows log rows) per node; the cap keeps it tractable).
    pub osquare_row_cap: usize,
}

impl ExperimentConfig {
    /// Builds the config for a scale.
    pub fn for_scale(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Quick => Self {
                dataset: DatasetConfig::quick(seed),
                train: TrainConfig { epochs: 10, verbose: true, ..TrainConfig::quick() },
                model_seed: seed ^ 0x9a17,
                deep: DeepConfig {
                    route_epochs: 8,
                    time_epochs: 5,
                    verbose: true,
                    ..DeepConfig::quick(seed)
                },
                osquare: OSquareConfig::default(),
                osquare_row_cap: 12_000,
            },
            Scale::Full => Self {
                dataset: DatasetConfig {
                    n_couriers: 28,
                    territory_size: 20,
                    split: rtp_sim::SplitSizes { train_days: 40, val_days: 9, test_days: 8 },
                    samples_per_courier_day: 2,
                    ..DatasetConfig::default()
                },
                train: TrainConfig::full(),
                model_seed: seed ^ 0x5eed,
                deep: DeepConfig::full(seed),
                osquare: OSquareConfig::default(),
                osquare_row_cap: 25_000,
            },
        }
    }
}

/// The trained model zoo, in the row order of Tables III/IV.
pub struct Zoo {
    /// All predictors (heuristics untrained, learned models fitted).
    pub predictors: Vec<Box<dyn Baseline>>,
    /// Wall-clock training seconds per learned method.
    pub train_seconds: Vec<(String, f64)>,
}

/// Wrapper giving [`M2G4Rtp`] the common [`Baseline`] interface.
pub struct M2gPredictor {
    /// The trained model.
    pub model: M2G4Rtp,
    name: &'static str,
    /// Pooled no-grad tape reused across every test query.
    tape: Mutex<Tape>,
}

impl M2gPredictor {
    /// Wraps a trained model under a display name.
    pub fn new(model: M2G4Rtp, name: &'static str) -> Self {
        Self { model, name, tape: Mutex::new(Tape::inference()) }
    }

    /// Locks the pooled tape, recovering from poison. A panic in
    /// another evaluation thread poisons the mutex, but the tape is
    /// only a buffer cache — no state crosses predictions — so the
    /// recovery (clear the poison, swap in a fresh inference tape) is
    /// bit-identical to the unpoisoned path. Without this, one panicked
    /// prediction would cascade into failing the whole evaluation run.
    fn lock_tape(&self) -> std::sync::MutexGuard<'_, Tape> {
        match self.tape.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.tape.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = Tape::inference();
                guard
            }
        }
    }
}

impl Baseline for M2gPredictor {
    fn name(&self) -> &'static str {
        self.name
    }

    fn predict(&self, dataset: &Dataset, sample: &RtpSample) -> Prediction {
        let courier = &dataset.couriers[sample.query.courier_id];
        let g = self.model.build_graph(&dataset.city, courier, &sample.query);
        let mut tape = self.lock_tape();
        self.model.predict_into(&mut tape, &g)
    }
}

/// Generates the dataset and trains every method of Tables III/IV.
pub fn train_zoo(config: &ExperimentConfig) -> (Dataset, Zoo) {
    eprintln!("== generating dataset ==");
    let dataset = DatasetBuilder::new(config.dataset.clone()).build();
    eprintln!(
        "train/val/test = {}/{}/{} samples",
        dataset.train.len(),
        dataset.val.len(),
        dataset.test.len()
    );

    let mut predictors: Vec<Box<dyn Baseline>> = Vec::new();
    let mut train_seconds = Vec::new();

    predictors.push(Box::new(DistanceGreedy));
    predictors.push(Box::new(TimeGreedy));
    predictors.push(Box::new(OrToolsLike::default()));

    eprintln!("== training OSquare (GBDT) ==");
    let t0 = std::time::Instant::now();
    let osquare = OSquare::fit(&capped_dataset(&dataset, config.osquare_row_cap), &config.osquare);
    train_seconds.push(("OSquare".to_string(), t0.elapsed().as_secs_f64()));
    predictors.push(Box::new(osquare));

    for kind in [DeepKind::DeepRoute, DeepKind::Fdnet, DeepKind::Graph2Route] {
        eprintln!("== training {} ==", kind.label());
        let t0 = std::time::Instant::now();
        let mut m = DeepBaseline::new(kind, config.deep.clone(), &dataset);
        m.fit(&dataset);
        train_seconds.push((kind.label().to_string(), t0.elapsed().as_secs_f64()));
        predictors.push(Box::new(m));
    }

    eprintln!("== training M2G4RTP ==");
    let t0 = std::time::Instant::now();
    let mut model = M2G4Rtp::new(ModelConfig::for_dataset(&dataset), config.model_seed);
    let report = Trainer::new(config.train.clone()).fit(&mut model, &dataset);
    eprintln!(
        "M2G4RTP: best val KRC {:.3}, MAE {:.2} ({} epochs, {:.1}s)",
        report.best_val_krc, report.best_val_mae, report.epochs_run, report.train_seconds
    );
    train_seconds.push((M2GPREDICTOR_NAME.to_string(), t0.elapsed().as_secs_f64()));
    predictors.push(Box::new(M2gPredictor::new(model, M2GPREDICTOR_NAME)));

    (dataset, Zoo { predictors, train_seconds })
}

/// OSquare's pointwise expansion is O(samples × steps × candidates);
/// cap the number of training *samples* so the exact-split GBDT stays
/// tractable (the cap applies to the route scorer's source rows).
fn capped_dataset(dataset: &Dataset, row_cap: usize) -> Dataset {
    // rows per sample ≈ n(n+1)/2; estimate with the mean n.
    let mean_n = dataset.train.iter().map(|s| s.query.num_locations()).sum::<usize>() as f64
        / dataset.train.len().max(1) as f64;
    let rows_per_sample = (mean_n * (mean_n + 1.0) / 2.0).max(1.0);
    let max_samples = ((row_cap as f64 / rows_per_sample) as usize).max(50);
    if dataset.train.len() <= max_samples {
        return dataset.clone();
    }
    let mut capped = dataset.clone();
    // deterministic stride subsample preserves day coverage
    let stride = dataset.train.len().div_ceil(max_samples);
    capped.train = dataset.train.iter().step_by(stride).cloned().collect();
    capped
}

/// Per-method evaluation over the test split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodEval {
    /// Method display name.
    pub name: String,
    /// Route metrics per bucket (Short, Long, All).
    pub route: Vec<(Bucket, RouteMetrics)>,
    /// Time metrics per bucket.
    pub time: Vec<(Bucket, TimeMetrics)>,
    /// Mean end-to-end inference latency per query, milliseconds.
    pub infer_ms: f64,
}

/// Evaluation of the whole zoo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// One entry per method, zoo order.
    pub methods: Vec<MethodEval>,
    /// Test samples evaluated.
    pub n_test: usize,
}

/// Runs every predictor over the test split, computing the bucketed
/// route/time metrics of Tables III/IV and the mean inference latency
/// of Table V.
pub fn evaluate_zoo(dataset: &Dataset, zoo: &Zoo) -> EvalOutcome {
    let methods = zoo.predictors.iter().map(|p| evaluate_method(dataset, p.as_ref())).collect();
    EvalOutcome { methods, n_test: dataset.test.len() }
}

/// Evaluates one predictor over the test split.
pub fn evaluate_method(dataset: &Dataset, predictor: &dyn Baseline) -> MethodEval {
    let mut route_acc = RouteMetricAccumulator::new();
    let mut time_acc = TimeMetricAccumulator::new();
    let t0 = std::time::Instant::now();
    for s in &dataset.test {
        let p = predictor.predict(dataset, s);
        route_acc.add(&p.route, &s.truth.route);
        time_acc.add(&p.times, &s.truth.arrival, s.query.num_locations());
    }
    let infer_ms = t0.elapsed().as_secs_f64() * 1e3 / dataset.test.len().max(1) as f64;
    let route = Bucket::ALL.iter().filter_map(|&b| route_acc.finish(b).map(|m| (b, m))).collect();
    let time = Bucket::ALL.iter().filter_map(|&b| time_acc.finish(b).map(|m| (b, m))).collect();
    MethodEval { name: predictor.name().to_string(), route, time, infer_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_dataset_respects_row_budget() {
        let d = DatasetBuilder::new(DatasetConfig::quick(5)).build();
        let capped = capped_dataset(&d, 2_000);
        assert!(capped.train.len() < d.train.len());
        let rows: usize = capped
            .train
            .iter()
            .map(|s| {
                let n = s.query.num_locations();
                n * (n + 1) / 2
            })
            .sum();
        // stride subsampling is approximate; allow 2x slack
        assert!(rows < 4_000, "row cap grossly exceeded: {rows}");
        // untouched splits
        assert_eq!(capped.test.len(), d.test.len());
    }

    #[test]
    fn poisoned_predictor_tape_recovers_with_identical_numerics() {
        // Regression: predict() used `.expect("inference tape
        // poisoned")`, so one panicked evaluation thread turned every
        // later prediction into a cascade of panics.
        let d = DatasetBuilder::new(DatasetConfig::tiny(31)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = M2G4Rtp::new(cfg, 8);
        let tc = TrainConfig { epochs: 1, verbose: false, ..TrainConfig::quick() };
        Trainer::new(tc).fit(&mut model, &d);
        let predictor = M2gPredictor::new(model, "test");
        let s = &d.test[0];
        let before = predictor.predict(&d, s);

        // Poison the tape mutex the way a panicking worker would.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = predictor.tape.lock().unwrap();
            panic!("simulated mid-prediction panic");
        }));
        assert!(poison.is_err());
        assert!(predictor.tape.is_poisoned(), "lock must actually be poisoned");

        let after = predictor.predict(&d, s);
        assert_eq!(before.route, after.route);
        let bits = |p: &Prediction| p.times.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before), bits(&after), "recovery must not change numerics");
    }

    #[test]
    fn evaluate_method_fills_all_buckets_when_data_has_both() {
        let d = DatasetBuilder::new(DatasetConfig::quick(6)).build();
        let eval = evaluate_method(&d, &DistanceGreedy);
        assert_eq!(eval.name, "Distance-Greedy");
        assert!(!eval.route.is_empty());
        assert!(eval.infer_ms >= 0.0);
        let all_route = eval.route.iter().find(|(b, _)| *b == Bucket::All).expect("all bucket");
        assert_eq!(all_route.1.count, d.test.len());
    }
}
