//! SVG rendering of case-study routes (paper Fig. 6 is a map figure:
//! real vs predicted routes drawn over the AOI layout). The renderer is
//! dependency-free — it writes plain SVG strings.

use rtp_sim::{City, RtpSample};

/// Styling of one rendered route overlay.
#[derive(Debug, Clone)]
pub struct RouteStyle {
    /// Stroke colour (any SVG colour string).
    pub color: String,
    /// Stroke width in pixels.
    pub width: f32,
    /// Dash pattern (empty = solid).
    pub dash: String,
    /// Legend label.
    pub label: String,
}

impl RouteStyle {
    /// A solid style with the given colour and label.
    pub fn solid(color: &str, label: &str) -> Self {
        Self { color: color.to_string(), width: 2.0, dash: String::new(), label: label.to_string() }
    }

    /// A dashed style with the given colour and label.
    pub fn dashed(color: &str, label: &str) -> Self {
        Self { color: color.to_string(), width: 2.0, dash: "6,4".into(), label: label.to_string() }
    }
}

/// Renders a case-study sample as an SVG map: AOI circles, location
/// dots (coloured by AOI), the courier start, and one polyline per
/// `(route, style)` overlay. Routes are visit sequences over
/// `sample.query.orders`.
///
/// # Panics
/// Panics if a route is not index-compatible with the sample.
pub fn render_case_svg(
    city: &City,
    sample: &RtpSample,
    routes: &[(Vec<usize>, RouteStyle)],
) -> String {
    let q = &sample.query;
    let n = q.orders.len();
    for (route, _) in routes {
        assert_eq!(route.len(), n, "route length must match the sample");
    }
    // bounding box over locations + courier + involved AOI circles
    let aois = q.distinct_aois();
    let mut min_x = q.courier_pos.x;
    let mut max_x = q.courier_pos.x;
    let mut min_y = q.courier_pos.y;
    let mut max_y = q.courier_pos.y;
    let mut extend = |x: f32, y: f32| {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    };
    for o in &q.orders {
        extend(o.pos.x, o.pos.y);
    }
    for &a in &aois {
        let aoi = city.aoi(a);
        extend(aoi.center.x - aoi.radius, aoi.center.y - aoi.radius);
        extend(aoi.center.x + aoi.radius, aoi.center.y + aoi.radius);
    }
    let pad = 0.08 * ((max_x - min_x).max(max_y - min_y)).max(0.2);
    let (min_x, max_x, min_y, max_y) = (min_x - pad, max_x + pad, min_y - pad, max_y + pad);
    let (w, h) = (760.0f32, 560.0f32);
    let legend_h = 22.0 * routes.len() as f32 + 10.0;
    let sx = w / (max_x - min_x);
    let sy = (h - legend_h) / (max_y - min_y);
    let s = sx.min(sy);
    let px = |x: f32| (x - min_x) * s + 4.0;
    // SVG y grows downward; flip so north is up
    let py = |y: f32| (max_y - y) * s + 4.0 + legend_h;

    let palette = [
        "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
        "#bab0ac", "#d37295",
    ];
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"sans-serif\" font-size=\"12\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
    ));
    // AOI circles
    for (k, &a) in aois.iter().enumerate() {
        let aoi = city.aoi(a);
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"{:.1}\" fill=\"{}\" fill-opacity=\"0.12\" \
             stroke=\"{}\" stroke-opacity=\"0.5\"/>\n",
            px(aoi.center.x),
            py(aoi.center.y),
            aoi.radius * s,
            palette[k % palette.len()],
            palette[k % palette.len()],
        ));
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" fill=\"{}\" font-weight=\"bold\">AOI {}</text>\n",
            px(aoi.center.x) + aoi.radius * s + 3.0,
            py(aoi.center.y),
            palette[k % palette.len()],
            a
        ));
    }
    // route polylines
    let loc_to_aoi = q.order_aoi_indices();
    for (route, style) in routes {
        let mut points = format!("{:.1},{:.1}", px(q.courier_pos.x), py(q.courier_pos.y));
        for &i in route {
            points.push_str(&format!(" {:.1},{:.1}", px(q.orders[i].pos.x), py(q.orders[i].pos.y)));
        }
        svg.push_str(&format!(
            "<polyline points=\"{points}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\" \
             stroke-dasharray=\"{}\" stroke-opacity=\"0.85\"/>\n",
            style.color, style.width, style.dash
        ));
    }
    // location dots on top, coloured by AOI
    for (i, o) in q.orders.iter().enumerate() {
        let c = palette[loc_to_aoi[i] % palette.len()];
        svg.push_str(&format!(
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{c}\" stroke=\"black\" \
             stroke-width=\"0.6\"/>\n",
            px(o.pos.x),
            py(o.pos.y)
        ));
    }
    // courier start marker
    svg.push_str(&format!(
        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"9\" height=\"9\" fill=\"black\"/>\n\
         <text x=\"{:.1}\" y=\"{:.1}\">courier</text>\n",
        px(q.courier_pos.x) - 4.5,
        py(q.courier_pos.y) - 4.5,
        px(q.courier_pos.x) + 8.0,
        py(q.courier_pos.y) - 6.0
    ));
    // legend
    for (k, (_, style)) in routes.iter().enumerate() {
        let y = 18.0 + 22.0 * k as f32;
        svg.push_str(&format!(
            "<line x1=\"12\" y1=\"{y}\" x2=\"52\" y2=\"{y}\" stroke=\"{}\" stroke-width=\"{}\" \
             stroke-dasharray=\"{}\"/>\n<text x=\"60\" y=\"{:.1}\">{}</text>\n",
            style.color,
            style.width,
            style.dash,
            y + 4.0,
            style.label
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn svg_contains_all_structural_elements() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(131)).build();
        let s = &d.test[0];
        let truth = s.truth.route.clone();
        let mut other = truth.clone();
        other.reverse();
        let svg = render_case_svg(
            &d.city,
            s,
            &[
                (truth, RouteStyle::solid("#333333", "real route")),
                (other, RouteStyle::dashed("#e15759", "predicted")),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2, "one polyline per route");
        assert!(svg.matches("<circle").count() >= s.query.num_locations(), "location dots");
        assert!(svg.contains("courier"));
        assert!(svg.contains("real route"));
        assert!(svg.contains("predicted"));
        // every coordinate is finite (no NaN leaked into the document)
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "route length must match")]
    fn svg_rejects_incompatible_routes() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(132)).build();
        let s = &d.test[0];
        render_case_svg(&d.city, s, &[(vec![0], RouteStyle::solid("red", "bad"))]);
    }
}
