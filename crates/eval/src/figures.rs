//! Regeneration of the paper's figures: Fig. 4 (data distribution),
//! Fig. 5 (component analysis / ablations) and Fig. 6 (case study).

use m2g4rtp::{M2G4Rtp, ModelConfig, Trainer, Variant};
use rtp_metrics::{acc_at, hr_at_k, krc, lsd, mae, rmse};
use rtp_sim::stats::{data_distribution, DataDistribution};
use rtp_sim::{Dataset, RtpSample};
use serde::{Deserialize, Serialize};

use crate::experiment::{evaluate_method, ExperimentConfig, M2gPredictor, Zoo};
use crate::render::{render_case_svg, RouteStyle};

// -------------------------------------------------------------------
// Fig. 4
// -------------------------------------------------------------------

/// Computes and renders Fig. 4: arrival-time histograms, sample-size
/// histograms and the §V.A transfer analysis.
pub fn fig4_distribution(dataset: &Dataset) -> (String, DataDistribution) {
    let dist = data_distribution(dataset);
    let mut out = String::from("Figure 4: Data Distribution\n\n");
    out.push_str(&render_hist(
        "(a) location arrival time (min)",
        &dist.location_arrival.counts,
        dist.location_arrival.start,
        dist.location_arrival.width,
        dist.location_arrival.mean,
    ));
    out.push_str(&render_hist(
        "(b) AOI arrival time (min)",
        &dist.aoi_arrival.counts,
        dist.aoi_arrival.start,
        dist.aoi_arrival.width,
        dist.aoi_arrival.mean,
    ));
    out.push_str(&render_hist(
        "(c) locations per sample",
        &dist.locations_per_sample.counts,
        dist.locations_per_sample.start,
        dist.locations_per_sample.width,
        dist.locations_per_sample.mean,
    ));
    out.push_str(&render_hist(
        "(d) AOIs per sample",
        &dist.aois_per_sample.counts,
        dist.aois_per_sample.start,
        dist.aois_per_sample.width,
        dist.aois_per_sample.mean,
    ));
    out.push_str(&format!(
        "\nTransfer analysis (paper SV.A: 50.97 vs 6.20):\n  avg location transfers per courier-day: {:.2}\n  avg AOI transfers per courier-day:      {:.2}\n",
        dist.avg_location_transfers_per_day, dist.avg_aoi_transfers_per_day
    ));
    (out, dist)
}

fn render_hist(title: &str, counts: &[u64], start: f32, width: f32, mean: f32) -> String {
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = format!("{title}   (mean {mean:.2})\n");
    for (i, &c) in counts.iter().enumerate() {
        let lo = start + i as f32 * width;
        let bar = "#".repeat((c * 40 / max) as usize);
        out.push_str(&format!("  {lo:>6.0}+ |{bar:<40} {c}\n"));
    }
    out.push('\n');
    out
}

// -------------------------------------------------------------------
// Fig. 5
// -------------------------------------------------------------------

/// One ablation variant's full metric set (Fig. 5 plots all six).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// HR@3 (%), all-bucket.
    pub hr3: f64,
    /// KRC, all-bucket.
    pub krc: f64,
    /// LSD, all-bucket.
    pub lsd: f64,
    /// RMSE (min), all-bucket.
    pub rmse: f64,
    /// MAE (min), all-bucket.
    pub mae: f64,
    /// acc@20 (%), all-bucket.
    pub acc20: f64,
}

/// Trains every ablation variant of Fig. 5 with identical data,
/// hyperparameters and seed, and evaluates on the test split.
pub fn ablation_study(config: &ExperimentConfig, dataset: &Dataset) -> (String, Vec<AblationRow>) {
    let mut rows = Vec::new();
    for variant in Variant::ALL {
        eprintln!("== ablation: training {} ==", variant.label());
        let cfg = ModelConfig::for_dataset(dataset).with_variant(variant);
        let mut model = M2G4Rtp::new(cfg, config.model_seed);
        Trainer::new(config.train.clone()).fit(&mut model, dataset);
        let pred = M2gPredictor::new(model, variant.label());
        let eval = evaluate_method(dataset, &pred);
        let r = eval
            .route
            .iter()
            .find(|(b, _)| *b == rtp_metrics::Bucket::All)
            .map(|(_, r)| *r)
            .unwrap_or_default();
        let t = eval
            .time
            .iter()
            .find(|(b, _)| *b == rtp_metrics::Bucket::All)
            .map(|(_, t)| *t)
            .unwrap_or_default();
        rows.push(AblationRow {
            variant: variant.label().to_string(),
            hr3: r.hr3,
            krc: r.krc,
            lsd: r.lsd,
            rmse: t.rmse,
            mae: t.mae,
            acc20: t.acc20,
        });
    }
    let mut out = String::from("Figure 5: Component Analysis (all-bucket test metrics)\n\n");
    out.push_str(&format!(
        "{:<18}{:>8}{:>8}{:>8}{:>9}{:>8}{:>9}\n",
        "Variant", "HR@3", "KRC", "LSD", "RMSE", "MAE", "acc@20"
    ));
    out.push_str(&"-".repeat(68));
    out.push('\n');
    for r in &rows {
        out.push_str(&format!(
            "{:<18}{:>8.2}{:>8.3}{:>8.2}{:>9.2}{:>8.2}{:>9.2}\n",
            r.variant, r.hr3, r.krc, r.lsd, r.rmse, r.mae, r.acc20
        ));
    }
    (out, rows)
}

// -------------------------------------------------------------------
// Fig. 6
// -------------------------------------------------------------------

/// The case study: two test samples, the first comparing AOI-block
/// structure against Graph2Route, the second comparing per-sample time
/// errors against FDNET.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudy {
    /// Rendered report.
    pub text: String,
    /// Case 1: AOI transfer counts (truth, M2G4RTP, Graph2Route).
    pub case1_transfers: (usize, usize, usize),
    /// Case 2: (RMSE, MAE) for FDNET and M2G4RTP on one sample.
    pub case2_fdnet: (f64, f64),
    /// Case 2 M2G4RTP errors.
    pub case2_m2g: (f64, f64),
    /// SVG map of case 1 (real vs M2G4RTP vs Graph2Route routes) —
    /// the reproduction of the paper's Fig. 6 map panels.
    pub case1_svg: String,
    /// SVG map of case 2 (real vs M2G4RTP vs FDNET routes).
    pub case2_svg: String,
}

/// Counts AOI-boundary crossings along a route.
fn aoi_switches(sample: &RtpSample, route: &[usize]) -> usize {
    let order_aoi = sample.query.order_aoi_indices();
    route.windows(2).filter(|w| order_aoi[w[0]] != order_aoi[w[1]]).count()
}

/// Builds Fig. 6 from the trained zoo. Requires the zoo to contain
/// predictors named `Graph2Route`, `FDNET` and `M2G4RTP`.
pub fn case_study(dataset: &Dataset, zoo: &Zoo) -> CaseStudy {
    let find = |name: &str| {
        zoo.predictors
            .iter()
            .find(|p| p.name() == name)
            .unwrap_or_else(|| panic!("zoo is missing {name}"))
    };
    let g2r = find("Graph2Route");
    let fdnet = find("FDNET");
    let m2g = find("M2G4RTP");

    // Case 1: the test sample with the most AOIs (block structure is
    // most visible there).
    let case1 = dataset
        .test
        .iter()
        .max_by_key(|s| s.query.distinct_aois().len())
        .expect("non-empty test split");
    let p_m2g = m2g.predict(dataset, case1);
    let p_g2r = g2r.predict(dataset, case1);
    let truth_sw = aoi_switches(case1, &case1.truth.route);
    let m2g_sw = aoi_switches(case1, &p_m2g.route);
    let g2r_sw = aoi_switches(case1, &p_g2r.route);

    // Case 2: the longest test sample (time-error accumulation).
    let case2 =
        dataset.test.iter().max_by_key(|s| s.query.num_locations()).expect("non-empty test split");
    let p_fd = fdnet.predict(dataset, case2);
    let p_m2 = m2g.predict(dataset, case2);
    let fd = (rmse(&p_fd.times, &case2.truth.arrival), mae(&p_fd.times, &case2.truth.arrival));
    let m2 = (rmse(&p_m2.times, &case2.truth.arrival), mae(&p_m2.times, &case2.truth.arrival));

    let mut text = String::from("Figure 6: Case Study\n\n");
    text.push_str(&format!(
        "Case 1 — AOI block structure (sample with {} locations / {} AOIs)\n",
        case1.query.num_locations(),
        case1.query.distinct_aois().len()
    ));
    text.push_str(&format!("  real route AOI transfers:        {truth_sw}\n"));
    text.push_str(&format!("  M2G4RTP route AOI transfers:     {m2g_sw}\n"));
    text.push_str(&format!("  Graph2Route route AOI transfers: {g2r_sw}\n"));
    text.push_str(&format!(
        "  route quality: M2G4RTP KRC {:.3} / HR@3 {:.2} | Graph2Route KRC {:.3} / HR@3 {:.2}\n\n",
        krc(&p_m2g.route, &case1.truth.route),
        hr_at_k(&p_m2g.route, &case1.truth.route, 3) * 100.0,
        krc(&p_g2r.route, &case1.truth.route),
        hr_at_k(&p_g2r.route, &case1.truth.route, 3) * 100.0,
    ));
    text.push_str(&format!(
        "Case 2 — time error accumulation (sample with {} locations)\n",
        case2.query.num_locations()
    ));
    text.push_str(&format!(
        "  FDNET:   RMSE {:.2}  MAE {:.2}  acc@20 {:.1}\n",
        fd.0,
        fd.1,
        acc_at(&p_fd.times, &case2.truth.arrival, 20.0)
    ));
    text.push_str(&format!(
        "  M2G4RTP: RMSE {:.2}  MAE {:.2}  acc@20 {:.1}\n",
        m2.0,
        m2.1,
        acc_at(&p_m2.times, &case2.truth.arrival, 20.0)
    ));
    text.push_str(&format!(
        "  (route LSD for context: FDNET {:.2}, M2G4RTP {:.2})\n",
        lsd(&p_fd.route, &case2.truth.route),
        lsd(&p_m2.route, &case2.truth.route)
    ));
    let case1_svg = render_case_svg(
        &dataset.city,
        case1,
        &[
            (case1.truth.route.clone(), RouteStyle::solid("#333333", "real route")),
            (p_m2g.route.clone(), RouteStyle::solid("#4e79a7", "M2G4RTP")),
            (p_g2r.route.clone(), RouteStyle::dashed("#e15759", "Graph2Route")),
        ],
    );
    let case2_svg = render_case_svg(
        &dataset.city,
        case2,
        &[
            (case2.truth.route.clone(), RouteStyle::solid("#333333", "real route")),
            (p_m2.route.clone(), RouteStyle::solid("#4e79a7", "M2G4RTP")),
            (p_fd.route.clone(), RouteStyle::dashed("#f28e2b", "FDNET")),
        ],
    );
    CaseStudy {
        text,
        case1_transfers: (truth_sw, m2g_sw, g2r_sw),
        case2_fdnet: fd,
        case2_m2g: m2,
        case1_svg,
        case2_svg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtp_sim::{DatasetBuilder, DatasetConfig};

    #[test]
    fn fig4_renders_all_panels() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(111)).build();
        let (text, dist) = fig4_distribution(&d);
        for panel in ["(a)", "(b)", "(c)", "(d)", "Transfer analysis"] {
            assert!(text.contains(panel), "missing {panel}");
        }
        assert!(dist.avg_location_transfers_per_day > dist.avg_aoi_transfers_per_day);
    }

    #[test]
    fn aoi_switches_counts_boundaries() {
        let d = DatasetBuilder::new(DatasetConfig::tiny(112)).build();
        let s = &d.test[0];
        // the ground-truth route's switches must be >= m-1
        let m = s.query.distinct_aois().len();
        assert!(aoi_switches(s, &s.truth.route) >= m - 1);
    }
}
