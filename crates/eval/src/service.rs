//! The §VI deployment pipeline, reproduced in-process: a **Feature
//! Extraction Layer** (query → multi-level graph, the paper's Graph
//! Builder with its distance tool), an **Inference Layer** (the trained
//! M²G4RTP service module) and an **Application Layer** with the two
//! launched products — Intelligent Order Sorting for couriers and
//! Minute-Level ETA push messages for users.
//!
//! One [`RtpService`] is a *single inference lane*: it shares the model
//! read-only (via `Arc`, so a worker pool clones the handle, not the
//! weights) and owns one pooled no-grad [`Tape`]. The serve layer
//! builds one service per worker thread, so concurrent requests never
//! contend on a tape mutex.

use m2g4rtp::M2G4Rtp;
use rtp_sim::{City, Courier, RtpQuery};
use rtp_tensor::Tape;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// An ETA push message of the Minute-Level ETA service (Fig. 8b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EtaMessage {
    /// Index of the order in the query.
    pub order_index: usize,
    /// Predicted arrival gap from "now", minutes.
    pub eta_minutes: f32,
    /// How many stops away the courier is.
    pub stops_away: usize,
    /// The user-facing message body.
    pub text: String,
}

/// The response of one RTP request through the deployed pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceResponse {
    /// Intelligent Order Sorting (Fig. 8a): order indices in the
    /// predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence (indices into the query's distinct
    /// AOI list).
    pub aoi_sequence: Vec<usize>,
    /// One ETA message per order.
    pub etas: Vec<EtaMessage>,
    /// End-to-end handling latency, milliseconds.
    pub latency_ms: f64,
}

/// The in-process RTP inference service.
pub struct RtpService {
    model: Arc<M2G4Rtp>,
    /// No-grad tape reused (cleared, not reallocated) across requests:
    /// after the first request the Inference Layer runs allocation-free
    /// out of the tape's buffer pool.
    tape: Mutex<Tape>,
}

impl RtpService {
    /// Wraps a trained model (it must have its feature pipeline
    /// attached, which [`m2g4rtp::Trainer::fit`] does).
    ///
    /// # Panics
    /// Panics if the model has no pipeline.
    pub fn new(model: M2G4Rtp) -> Self {
        Self::shared(Arc::new(model))
    }

    /// Wraps an already-shared trained model — the worker-pool
    /// constructor: every worker gets its own service (own tape), all
    /// reading the same weights.
    ///
    /// # Panics
    /// Panics if the model has no pipeline.
    pub fn shared(model: Arc<M2G4Rtp>) -> Self {
        assert!(model.has_pipeline(), "service needs a trained model with a pipeline");
        Self { model, tape: Mutex::new(Tape::inference()) }
    }

    /// The shared model handle (e.g. to build another per-worker
    /// service over the same weights).
    pub fn model(&self) -> &Arc<M2G4Rtp> {
        &self.model
    }

    /// Locks the inference tape, recovering from poisoning: if a
    /// previous request panicked mid-prediction the tape's node list
    /// may be in an arbitrary state, but the tape is only a buffer
    /// cache — correctness never depends on its history (cleared-tape
    /// reuse is bit-identical to a fresh tape) — so we swap in a fresh
    /// no-grad tape and keep serving instead of dying on
    /// `.expect("poisoned")` for every later request.
    fn lock_tape(&self) -> MutexGuard<'_, Tape> {
        match self.tape.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.tape.clear_poison();
                let mut guard = poisoned.into_inner();
                *guard = Tape::inference();
                guard
            }
        }
    }

    /// Buffer-pool statistics `(hits, misses)` of the pooled inference
    /// tape — the serving layer exports these as registry gauges so the
    /// `stats` request can report the steady-state hit rate.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.lock_tape().pool_stats()
    }

    /// Handles one RTP request end to end.
    pub fn handle(&self, city: &City, courier: &Courier, query: &RtpQuery) -> ServiceResponse {
        let t0 = std::time::Instant::now();
        // Feature Extraction Layer
        let graph = self.model.build_graph(city, courier, query);
        // Inference Layer — pooled no-grad tape
        let prediction = {
            let mut tape = self.lock_tape();
            self.model.predict_into(&mut tape, &graph)
        };
        // Application Layer
        let sorted_orders = prediction.route.clone();
        let mut stops_away = vec![0usize; query.orders.len()];
        for (pos, &i) in prediction.route.iter().enumerate() {
            stops_away[i] = pos + 1;
        }
        let etas = (0..query.orders.len())
            .map(|i| {
                let eta = prediction.times[i];
                EtaMessage {
                    order_index: i,
                    eta_minutes: eta,
                    stops_away: stops_away[i],
                    text: format!(
                        "Your courier is {} stop(s) away and is expected in about {} minutes.",
                        stops_away[i],
                        eta.round() as i64
                    ),
                }
            })
            .collect();
        ServiceResponse {
            sorted_orders,
            aoi_sequence: prediction.aoi_route,
            etas,
            latency_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2g4rtp::{ModelConfig, TrainConfig, Trainer};
    use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};

    fn trained(seed: u64) -> (Dataset, M2G4Rtp) {
        let d = DatasetBuilder::new(DatasetConfig::tiny(seed)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = m2g4rtp::M2G4Rtp::new(cfg, 1);
        Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, &d);
        (d, model)
    }

    #[test]
    fn service_serves_sorted_orders_and_etas() {
        let (d, model) = trained(121);
        let service = RtpService::new(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let resp = service.handle(&d.city, courier, &s.query);
        assert_eq!(resp.sorted_orders.len(), s.query.num_locations());
        assert_eq!(resp.etas.len(), s.query.num_locations());
        assert!(resp.latency_ms > 0.0);
        for e in &resp.etas {
            assert!(e.eta_minutes >= 0.0);
            assert!(e.stops_away >= 1 && e.stops_away <= s.query.num_locations());
            assert!(e.text.contains("minutes"));
        }
        // sorted orders are a permutation
        let mut seen = vec![false; s.query.num_locations()];
        for &i in &resp.sorted_orders {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn poisoned_tape_recovers_instead_of_dying_forever() {
        let (d, model) = trained(122);
        let service = RtpService::new(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let before = service.handle(&d.city, courier, &s.query);

        // Poison the tape mutex the way a panicking handler would:
        // panic while holding the lock.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = service.tape.lock().unwrap();
            panic!("simulated mid-prediction panic");
        }));
        assert!(poison.is_err());
        assert!(service.tape.is_poisoned(), "lock must actually be poisoned");

        // Every later request must still be served — and identically.
        let after = service.handle(&d.city, courier, &s.query);
        assert_eq!(before.sorted_orders, after.sorted_orders);
        assert_eq!(before.aoi_sequence, after.aoi_sequence);
        let bits = |v: &[EtaMessage]| v.iter().map(|e| e.eta_minutes.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before.etas), bits(&after.etas), "recovery must not change numerics");
        // pool_stats must not panic either
        let _ = service.pool_stats();
    }

    #[test]
    fn per_worker_services_share_weights_and_agree() {
        let (d, model) = trained(123);
        let model = Arc::new(model);
        let a = RtpService::shared(Arc::clone(&model));
        let b = RtpService::shared(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let ra = a.handle(&d.city, courier, &s.query);
        let rb = b.handle(&d.city, courier, &s.query);
        assert_eq!(ra.sorted_orders, rb.sorted_orders);
        let bits = |v: &[EtaMessage]| v.iter().map(|e| e.eta_minutes.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ra.etas), bits(&rb.etas), "separate tapes must not change numerics");
    }
}
