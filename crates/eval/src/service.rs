//! The §VI deployment pipeline, reproduced in-process: a **Feature
//! Extraction Layer** (query → multi-level graph, the paper's Graph
//! Builder with its distance tool), an **Inference Layer** (the trained
//! M²G4RTP service module) and an **Application Layer** with the two
//! launched products — Intelligent Order Sorting for couriers and
//! Minute-Level ETA push messages for users.
//!
//! One [`RtpService`] is a *single inference lane*: it shares the model
//! read-only (via `Arc`, so a worker pool clones the handle, not the
//! weights) and owns one pooled no-grad [`Tape`]. The serve layer
//! builds one service per worker thread, so concurrent requests never
//! contend on a tape mutex.

use m2g4rtp::{EncodedQuery, M2G4Rtp, Prediction};
use rtp_graph::MultiLevelGraph;
use rtp_sim::{City, Courier, RtpQuery};
use rtp_tensor::{Numerics, Tape};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex, MutexGuard};

/// An ETA push message of the Minute-Level ETA service (Fig. 8b).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EtaMessage {
    /// Index of the order in the query.
    pub order_index: usize,
    /// Predicted arrival gap from "now", minutes.
    pub eta_minutes: f32,
    /// How many stops away the courier is.
    pub stops_away: usize,
    /// The user-facing message body.
    pub text: String,
}

/// The response of one RTP request through the deployed pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceResponse {
    /// Intelligent Order Sorting (Fig. 8a): order indices in the
    /// predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence (indices into the query's distinct
    /// AOI list).
    pub aoi_sequence: Vec<usize>,
    /// One ETA message per order.
    pub etas: Vec<EtaMessage>,
    /// End-to-end handling latency, milliseconds.
    pub latency_ms: f64,
}

/// The in-process RTP inference service.
pub struct RtpService {
    model: Arc<M2G4Rtp>,
    /// Numerics tier every prediction of this lane runs under
    /// (exact by default; fast/quantized are serve-time opt-ins).
    numerics: Numerics,
    /// No-grad tape reused (cleared, not reallocated) across requests:
    /// after the first request the Inference Layer runs allocation-free
    /// out of the tape's buffer pool.
    tape: Mutex<Tape>,
}

impl RtpService {
    /// Wraps a trained model (it must have its feature pipeline
    /// attached, which [`m2g4rtp::Trainer::fit`] does).
    ///
    /// # Panics
    /// Panics if the model has no pipeline.
    pub fn new(model: M2G4Rtp) -> Self {
        Self::shared(Arc::new(model))
    }

    /// Wraps an already-shared trained model — the worker-pool
    /// constructor: every worker gets its own service (own tape), all
    /// reading the same weights.
    ///
    /// # Panics
    /// Panics if the model has no pipeline.
    pub fn shared(model: Arc<M2G4Rtp>) -> Self {
        Self::with_numerics(model, Numerics::Exact)
    }

    /// Like [`RtpService::shared`], but running the given numerics
    /// tier: every prediction of this lane uses the corresponding
    /// inference tape (fast-tier kernels, or the quantized parameter
    /// snapshot the model caches on first use).
    ///
    /// # Panics
    /// Panics if the model has no pipeline.
    pub fn with_numerics(model: Arc<M2G4Rtp>, numerics: Numerics) -> Self {
        assert!(model.has_pipeline(), "service needs a trained model with a pipeline");
        let tape = Mutex::new(model.inference_tape(numerics));
        Self { model, numerics, tape }
    }

    /// The numerics tier this lane serves under.
    pub fn numerics(&self) -> Numerics {
        self.numerics
    }

    /// The shared model handle (e.g. to build another per-worker
    /// service over the same weights).
    pub fn model(&self) -> &Arc<M2G4Rtp> {
        &self.model
    }

    /// Locks the inference tape, recovering from poisoning: if a
    /// previous request panicked mid-prediction the tape's node list
    /// may be in an arbitrary state, but the tape is only a buffer
    /// cache — correctness never depends on its history (cleared-tape
    /// reuse is bit-identical to a fresh tape) — so we swap in a fresh
    /// no-grad tape and keep serving instead of dying on
    /// `.expect("poisoned")` for every later request.
    fn lock_tape(&self) -> MutexGuard<'_, Tape> {
        match self.tape.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.tape.clear_poison();
                rtp_obs::flight::record(
                    rtp_obs::flight::Kind::Recovery,
                    "service.tape_poison",
                    0,
                    || "poisoned inference tape replaced with a fresh no-grad tape".to_string(),
                );
                let mut guard = poisoned.into_inner();
                *guard = self.model.inference_tape(self.numerics);
                guard
            }
        }
    }

    /// Buffer-pool statistics `(hits, misses)` of the pooled inference
    /// tape — the serving layer exports these as registry gauges so the
    /// `stats` request can report the steady-state hit rate.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.lock_tape().pool_stats()
    }

    /// Handles one RTP request end to end.
    ///
    /// Returns `Err` when the model's prediction does not line up with
    /// the query (see [`apply_prediction`]) — the serving layer turns
    /// that into a structured error reply instead of a panic.
    pub fn handle(
        &self,
        city: &City,
        courier: &Courier,
        query: &RtpQuery,
    ) -> Result<ServiceResponse, String> {
        let t0 = std::time::Instant::now();
        // Feature Extraction Layer
        let graph = self.build_graph(city, courier, query);
        // Inference Layer — pooled no-grad tape
        let prediction = self.predict(&graph);
        // Application Layer
        let app = apply_prediction(query, &prediction)?;
        Ok(app.into_response(t0.elapsed().as_secs_f64() * 1e3))
    }

    /// Feature Extraction Layer only: query → scaled multi-level graph.
    /// Split out so a batching serve layer can extract features on the
    /// worker thread and ship the graph to a shared inference engine.
    pub fn build_graph(&self, city: &City, courier: &Courier, query: &RtpQuery) -> MultiLevelGraph {
        self.model.build_graph(city, courier, query)
    }

    /// Inference Layer only, on this lane's pooled no-grad tape.
    pub fn predict(&self, graph: &MultiLevelGraph) -> Prediction {
        let mut tape = self.lock_tape();
        self.model.predict_into(&mut tape, graph)
    }

    /// Inference Layer replaying cached encoder activations on this
    /// lane's pooled tape — the serve cache's hit path. Bit-identical
    /// to [`RtpService::predict`] when `enc` came from the same
    /// (graph, weights); see [`M2G4Rtp::predict_encoded_into`].
    pub fn predict_encoded(&self, graph: &MultiLevelGraph, enc: &EncodedQuery) -> Prediction {
        let mut tape = self.lock_tape();
        self.model.predict_encoded_into(&mut tape, graph, enc)
    }
}

/// The Application Layer's products for one request, before latency
/// stamping: the two launched services of §VI (order sorting + ETA
/// push messages).
#[derive(Debug, Clone)]
pub struct AppOutput {
    /// Order indices in predicted service sequence.
    pub sorted_orders: Vec<usize>,
    /// Predicted AOI visit sequence.
    pub aoi_sequence: Vec<usize>,
    /// One ETA message per order in the query.
    pub etas: Vec<EtaMessage>,
}

impl AppOutput {
    /// Stamps the end-to-end latency onto the products.
    pub fn into_response(self, latency_ms: f64) -> ServiceResponse {
        ServiceResponse {
            sorted_orders: self.sorted_orders,
            aoi_sequence: self.aoi_sequence,
            etas: self.etas,
            latency_ms,
        }
    }
}

/// The Application Layer: turns a raw [`Prediction`] into the courier's
/// sorted order list and one ETA push message per order.
///
/// The route is validated against the query before any indexing:
///
/// - a route position pointing past the query's order list, or visiting
///   the same order twice, is a **misaligned prediction** and returns a
///   named `Err` (the serving layer reports it as an internal error
///   rather than panicking or emitting garbage ETAs);
/// - an order that is *absent* from the route gets a well-defined
///   "already served" message (`stops_away == 0`, `eta_minutes == 0.0`)
///   instead of the old silent `0 stop(s) away` default that read like
///   an imminent arrival.
pub fn apply_prediction(query: &RtpQuery, p: &Prediction) -> Result<AppOutput, String> {
    let n = query.orders.len();
    // stops_away[i] = Some(position) iff order i appears in the route.
    let mut stops_away: Vec<Option<usize>> = vec![None; n];
    for (pos, &i) in p.route.iter().enumerate() {
        let slot = stops_away.get_mut(i).ok_or_else(|| {
            format!(
                "misaligned prediction: route position {pos} points at location {i}, \
                 but the query has only {n} order(s)"
            )
        })?;
        if slot.is_some() {
            return Err(format!("misaligned prediction: route visits location {i} twice"));
        }
        *slot = Some(pos + 1);
    }
    let etas = (0..n)
        .map(|i| match stops_away[i] {
            Some(stops) => {
                let eta = p.times.get(i).copied().unwrap_or(0.0);
                EtaMessage {
                    order_index: i,
                    eta_minutes: eta,
                    stops_away: stops,
                    text: format!(
                        "Your courier is {} stop(s) away and is expected in about {} minutes.",
                        stops,
                        eta.round() as i64
                    ),
                }
            }
            None => EtaMessage {
                order_index: i,
                eta_minutes: 0.0,
                stops_away: 0,
                text: "This order is no longer in the courier's planned route; \
                       it has likely already been served."
                    .to_string(),
            },
        })
        .collect();
    Ok(AppOutput { sorted_orders: p.route.clone(), aoi_sequence: p.aoi_route.clone(), etas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2g4rtp::{ModelConfig, TrainConfig, Trainer};
    use rtp_sim::{Dataset, DatasetBuilder, DatasetConfig};

    fn trained(seed: u64) -> (Dataset, M2G4Rtp) {
        let d = DatasetBuilder::new(DatasetConfig::tiny(seed)).build();
        let mut cfg = ModelConfig::for_dataset(&d);
        cfg.d_loc = 16;
        cfg.d_aoi = 16;
        cfg.n_heads = 2;
        cfg.n_layers = 1;
        let mut model = m2g4rtp::M2G4Rtp::new(cfg, 1);
        Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::quick() }).fit(&mut model, &d);
        (d, model)
    }

    #[test]
    fn service_serves_sorted_orders_and_etas() {
        let (d, model) = trained(121);
        let service = RtpService::new(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let resp = service.handle(&d.city, courier, &s.query).expect("aligned prediction");
        assert_eq!(resp.sorted_orders.len(), s.query.num_locations());
        assert_eq!(resp.etas.len(), s.query.num_locations());
        // `>= 0.0`, not `> 0.0`: a tiny model can predict inside one
        // timer tick on coarse clocks, legitimately reporting 0.0 ms.
        assert!(resp.latency_ms >= 0.0 && resp.latency_ms.is_finite());
        for e in &resp.etas {
            assert!(e.eta_minutes >= 0.0);
            assert!(e.stops_away >= 1 && e.stops_away <= s.query.num_locations());
            assert!(e.text.contains("minutes"));
        }
        // sorted orders are a permutation
        let mut seen = vec![false; s.query.num_locations()];
        for &i in &resp.sorted_orders {
            assert!(!seen[i]);
            seen[i] = true;
        }
    }

    #[test]
    fn poisoned_tape_recovers_instead_of_dying_forever() {
        let (d, model) = trained(122);
        let service = RtpService::new(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let before = service.handle(&d.city, courier, &s.query).expect("aligned prediction");

        // Poison the tape mutex the way a panicking handler would:
        // panic while holding the lock.
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = service.tape.lock().unwrap();
            panic!("simulated mid-prediction panic");
        }));
        assert!(poison.is_err());
        assert!(service.tape.is_poisoned(), "lock must actually be poisoned");

        // Every later request must still be served — and identically.
        let after = service.handle(&d.city, courier, &s.query).expect("aligned prediction");
        assert_eq!(before.sorted_orders, after.sorted_orders);
        assert_eq!(before.aoi_sequence, after.aoi_sequence);
        let bits = |v: &[EtaMessage]| v.iter().map(|e| e.eta_minutes.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&before.etas), bits(&after.etas), "recovery must not change numerics");
        // pool_stats must not panic either
        let _ = service.pool_stats();
    }

    #[test]
    fn per_worker_services_share_weights_and_agree() {
        let (d, model) = trained(123);
        let model = Arc::new(model);
        let a = RtpService::shared(Arc::clone(&model));
        let b = RtpService::shared(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let ra = a.handle(&d.city, courier, &s.query).expect("aligned prediction");
        let rb = b.handle(&d.city, courier, &s.query).expect("aligned prediction");
        assert_eq!(ra.sorted_orders, rb.sorted_orders);
        let bits = |v: &[EtaMessage]| v.iter().map(|e| e.eta_minutes.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ra.etas), bits(&rb.etas), "separate tapes must not change numerics");
    }

    #[test]
    fn cached_encoder_replay_matches_cold_service_path() {
        let (d, model) = trained(124);
        let service = RtpService::new(model);
        let s = &d.test[0];
        let courier = &d.couriers[s.query.courier_id];
        let graph = service.build_graph(&d.city, courier, &s.query);
        let cold = service.predict(&graph);
        let mut tape = Tape::inference();
        let batched = service.model().predict_batch_encoded_into(&mut tape, &[&graph]);
        let (batched_pred, enc) = &batched[0];
        let hot = service.predict_encoded(&graph, enc);
        assert_eq!(cold.route, batched_pred.route);
        assert_eq!(cold.route, hot.route);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&cold.times), bits(&batched_pred.times), "batched must match cold bits");
        assert_eq!(bits(&cold.times), bits(&hot.times), "cache replay must match cold bits");
    }

    fn query_with_orders(d: &Dataset, n: usize) -> RtpQuery {
        let mut q = d.test[0].query.clone();
        assert!(q.orders.len() >= n, "test query too small");
        q.orders.truncate(n);
        q
    }

    #[test]
    fn unrouted_order_reports_already_served_not_zero_stops() {
        let (d, _) = trained(125);
        let q = query_with_orders(&d, 3);
        // Route covers orders 2 and 0 only; order 1 was served already.
        let p = Prediction {
            route: vec![2, 0],
            times: vec![5.0, 7.0, 9.0],
            aoi_route: vec![0],
            aoi_times: vec![5.0],
        };
        let app = apply_prediction(&q, &p).expect("partial route is not an error");
        assert_eq!(app.etas.len(), 3);
        let served = &app.etas[1];
        assert_eq!(served.stops_away, 0);
        assert_eq!(served.eta_minutes, 0.0);
        assert!(
            served.text.contains("no longer in the courier's planned route"),
            "unrouted order must get the explicit already-served message, got: {}",
            served.text
        );
        // Routed orders still report 1-based stop counts and their ETAs.
        assert_eq!(app.etas[2].stops_away, 1);
        assert_eq!(app.etas[0].stops_away, 2);
        assert_eq!(app.etas[0].eta_minutes, 5.0);
        assert!(app.etas[0].text.contains("2 stop(s) away"));
    }

    #[test]
    fn out_of_range_and_duplicate_route_positions_are_named_errors() {
        let (d, _) = trained(126);
        let q = query_with_orders(&d, 2);
        let oob = Prediction {
            route: vec![0, 5],
            times: vec![1.0, 2.0],
            aoi_route: vec![0],
            aoi_times: vec![1.0],
        };
        let err = apply_prediction(&q, &oob).expect_err("index 5 must not be applied");
        assert!(err.contains("misaligned prediction"), "got: {err}");
        assert!(err.contains("position 1") && err.contains("location 5"), "got: {err}");

        let dup = Prediction {
            route: vec![1, 1],
            times: vec![1.0, 2.0],
            aoi_route: vec![0],
            aoi_times: vec![1.0],
        };
        let err = apply_prediction(&q, &dup).expect_err("duplicate visit must not be applied");
        assert!(err.contains("twice"), "got: {err}");
    }
}
