//! Regenerates paper Fig. 6 (case study): block structure vs
//! Graph2Route, time-error accumulation vs FDNET.

use rtp_eval::{case_study, scale_from_args, train_zoo, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::for_scale(scale_from_args(), 2023);
    let (dataset, zoo) = train_zoo(&config);
    let cs = case_study(&dataset, &zoo);
    println!("{}", cs.text);
    rtp_eval::write_artifact("fig6.txt", &cs.text);
    rtp_eval::write_artifact("fig6_case1.svg", &cs.case1_svg);
    rtp_eval::write_artifact("fig6_case2.svg", &cs.case2_svg);
    rtp_eval::write_artifact("fig6.json", &serde_json::to_string_pretty(&cs).unwrap());
}
