//! Regenerates paper Table I (qualitative method comparison).

fn main() {
    let text = rtp_eval::comparison_matrix();
    println!("{text}");
    rtp_eval::write_artifact("table1.txt", &text);
}
