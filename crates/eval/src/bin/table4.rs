//! Regenerates paper Table IV (time prediction results): trains the
//! full model zoo and evaluates RMSE / MAE / acc@20 per size bucket.

use rtp_eval::{
    aggregate_rows_with_std, evaluate_zoo, scale_from_args, seeds_from_args, time_table, train_zoo,
    ExperimentConfig,
};

fn main() {
    let seeds = seeds_from_args();
    let mut all_rows = Vec::new();
    for k in 0..seeds {
        let config = ExperimentConfig::for_scale(scale_from_args(), 2023 + k as u64);
        let (dataset, zoo) = train_zoo(&config);
        let outcome = evaluate_zoo(&dataset, &zoo);
        let (text, rows) = time_table(&outcome);
        if seeds == 1 {
            println!("{text}");
            rtp_eval::write_artifact("table4.txt", &text);
        }
        all_rows.push(rows);
    }
    if seeds > 1 {
        let text = aggregate_rows_with_std(&all_rows, "Table IV: Time Prediction Results");
        println!("{text}");
        rtp_eval::write_artifact("table4_multiseed.txt", &text);
    }
    rtp_eval::write_artifact("table4.json", &serde_json::to_string_pretty(&all_rows).unwrap());
}
