//! Regenerates paper Fig. 4 (data distribution) and the §V.A transfer
//! analysis from the synthetic dataset.

use rtp_eval::{fig4_distribution, scale_from_args, ExperimentConfig};
use rtp_sim::DatasetBuilder;

fn main() {
    let config = ExperimentConfig::for_scale(scale_from_args(), 2023);
    let dataset = DatasetBuilder::new(config.dataset.clone()).build();
    let (text, dist) = fig4_distribution(&dataset);
    println!("{text}");
    rtp_eval::write_artifact("fig4.txt", &text);
    rtp_eval::write_artifact("fig4.json", &serde_json::to_string_pretty(&dist).unwrap());
}
