//! Regenerates paper Table V (scalability analysis): inference time
//! complexity plus measured per-query latency for every method.

use rtp_eval::{evaluate_zoo, scalability_table, scale_from_args, train_zoo, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::for_scale(scale_from_args(), 2023);
    let (dataset, zoo) = train_zoo(&config);
    let outcome = evaluate_zoo(&dataset, &zoo);
    let (text, rows) = scalability_table(&outcome, &zoo);
    println!("{text}");
    rtp_eval::write_artifact("table5.txt", &text);
    rtp_eval::write_artifact("table5.json", &serde_json::to_string_pretty(&rows).unwrap());
}
