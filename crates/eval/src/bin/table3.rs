//! Regenerates paper Table III (route prediction results): trains the
//! full model zoo and evaluates HR@3 / KRC / LSD per size bucket.

use rtp_eval::{
    aggregate_rows_with_std, evaluate_zoo, route_table, scale_from_args, seeds_from_args,
    train_zoo, ExperimentConfig,
};

fn main() {
    let seeds = seeds_from_args();
    let mut all_rows = Vec::new();
    for k in 0..seeds {
        let config = ExperimentConfig::for_scale(scale_from_args(), 2023 + k as u64);
        let (dataset, zoo) = train_zoo(&config);
        let outcome = evaluate_zoo(&dataset, &zoo);
        let (text, rows) = route_table(&outcome);
        if seeds == 1 {
            println!("{text}");
            rtp_eval::write_artifact("table3.txt", &text);
        }
        all_rows.push(rows);
    }
    if seeds > 1 {
        let text = aggregate_rows_with_std(&all_rows, "Table III: Route Prediction Results");
        println!("{text}");
        rtp_eval::write_artifact("table3_multiseed.txt", &text);
    }
    rtp_eval::write_artifact("table3.json", &serde_json::to_string_pretty(&all_rows).unwrap());
}
