//! Runs every table and figure of the paper's evaluation section with a
//! single shared zoo training, writing all artifacts under `results/`.

use rtp_eval::*;
use rtp_sim::DatasetBuilder;

fn main() {
    let scale = scale_from_args();
    let config = ExperimentConfig::for_scale(scale, 2023);

    // Per-stage span tracing: the memory sink collects every span the
    // harness (and the instrumented trainers below it) opens, and the
    // closed events become `results/run_all_timings.json`.
    rtp_obs::trace::attach_memory();

    // Table I (static) and Fig. 4 (dataset only)
    let t1 = {
        let _s = rtp_obs::span!("run_all.table1");
        comparison_matrix()
    };
    println!("{t1}");
    write_artifact("table1.txt", &t1);

    {
        let _s = rtp_obs::span!("run_all.fig4");
        let dataset_for_fig4 = DatasetBuilder::new(config.dataset.clone()).build();
        let (f4, dist) = fig4_distribution(&dataset_for_fig4);
        println!("{f4}");
        write_artifact("fig4.txt", &f4);
        write_artifact("fig4.json", &serde_json::to_string_pretty(&dist).unwrap());
    }

    // one zoo training shared by Tables III/IV/V and Fig. 6
    let (dataset, zoo) = {
        let _s = rtp_obs::span!("run_all.train_zoo");
        train_zoo(&config)
    };
    let outcome = {
        let _s = rtp_obs::span!("run_all.evaluate_zoo");
        evaluate_zoo(&dataset, &zoo)
    };

    {
        let _s = rtp_obs::span!("run_all.tables");
        let (t3, rows3) = route_table(&outcome);
        println!("{t3}");
        write_artifact("table3.txt", &t3);
        write_artifact("table3.json", &serde_json::to_string_pretty(&rows3).unwrap());

        let (t4, rows4) = time_table(&outcome);
        println!("{t4}");
        write_artifact("table4.txt", &t4);
        write_artifact("table4.json", &serde_json::to_string_pretty(&rows4).unwrap());

        let (t5, rows5) = scalability_table(&outcome, &zoo);
        println!("{t5}");
        write_artifact("table5.txt", &t5);
        write_artifact("table5.json", &serde_json::to_string_pretty(&rows5).unwrap());
    }

    {
        let _s = rtp_obs::span!("run_all.fig6");
        let cs = case_study(&dataset, &zoo);
        println!("{}", cs.text);
        write_artifact("fig6.txt", &cs.text);
        write_artifact("fig6_case1.svg", &cs.case1_svg);
        write_artifact("fig6_case2.svg", &cs.case2_svg);
        write_artifact("fig6.json", &serde_json::to_string_pretty(&cs).unwrap());
    }

    // Fig. 5 trains its own ablation variants
    {
        let _s = rtp_obs::span!("run_all.fig5_ablation");
        let (f5, rows5f) = ablation_study(&config, &dataset);
        println!("{f5}");
        write_artifact("fig5.txt", &f5);
        write_artifact("fig5.json", &serde_json::to_string_pretty(&rows5f).unwrap());
    }

    let events = rtp_obs::trace::detach();
    let body: Vec<String> = events.iter().map(|e| format!("  {}", e.to_json_line())).collect();
    write_artifact("run_all_timings.json", &format!("[\n{}\n]\n", body.join(",\n")));
    eprintln!("stage timings ({} span(s)) -> results/run_all_timings.json", events.len());

    let secs: Vec<String> =
        zoo.train_seconds.iter().map(|(n, s)| format!("  {n}: {s:.1}s")).collect();
    eprintln!("training wall-clock:\n{}", secs.join("\n"));
}
