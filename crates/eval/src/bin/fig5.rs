//! Regenerates paper Fig. 5 (component analysis): trains every ablation
//! variant with identical data/seed and reports all six metrics.

use rtp_eval::{ablation_study, scale_from_args, ExperimentConfig};
use rtp_sim::DatasetBuilder;

fn main() {
    let config = ExperimentConfig::for_scale(scale_from_args(), 2023);
    let dataset = DatasetBuilder::new(config.dataset.clone()).build();
    let (text, rows) = ablation_study(&config, &dataset);
    println!("{text}");
    rtp_eval::write_artifact("fig5.txt", &text);
    rtp_eval::write_artifact("fig5.json", &serde_json::to_string_pretty(&rows).unwrap());
}
