//! # rtp-metrics
//!
//! Evaluation metrics of the M²G4RTP paper (§V.C):
//!
//! * Route prediction — [`hr_at_k`] (Eq. 42), [`krc`] (Kendall Rank
//!   Correlation, Eq. 43), [`lsd`] (Location Square Deviation, Eq. 44).
//! * Time prediction — [`rmse`], [`mae`], [`acc_at`] (accuracy within a
//!   tolerance, the paper uses 20 minutes), Eq. 45.
//!
//! Plus the bucketed accumulators ([`RouteMetricAccumulator`],
//! [`TimeMetricAccumulator`], [`Bucket`]) Tables III/IV aggregate with:
//! the paper reports each metric for `n ∈ (3,10]`, `n ∈ (10,20]` and
//! `all`.
//!
//! Route arguments are *visit sequences*: `route[j] = i` means item `i`
//! is served at step `j` — the same convention as `rtp_sim::GroundTruth`.

use serde::{Deserialize, Serialize};

/// HR@k (Eq. 42): fraction of the first `k` predicted items that appear
/// among the first `k` items of the label.
///
/// If the route is shorter than `k`, the effective k is the route length
/// (the paper evaluates HR@3 on routes with n ≥ 4, so this is a guard,
/// not a behaviour change).
///
/// # Panics
/// Panics if the sequences have different lengths or are empty.
pub fn hr_at_k(pred: &[usize], label: &[usize], k: usize) -> f64 {
    assert_eq!(pred.len(), label.len(), "route length mismatch");
    assert!(!pred.is_empty(), "empty route");
    let k = k.min(pred.len());
    let hits = pred[..k].iter().filter(|i| label[..k].contains(i)).count();
    hits as f64 / k as f64
}

/// Kendall Rank Correlation (Eq. 43): concordant minus discordant pairs
/// over all pairs, comparing the predicted visit order against the label
/// order. 1.0 = identical order, -1.0 = reversed.
///
/// # Panics
/// Panics if the sequences have different lengths.
pub fn krc(pred: &[usize], label: &[usize]) -> f64 {
    assert_eq!(pred.len(), label.len(), "route length mismatch");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let pred_rank = ranks_of(pred);
    let label_rank = ranks_of(label);
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dp = pred_rank[i] as i64 - pred_rank[j] as i64;
            let dl = label_rank[i] as i64 - label_rank[j] as i64;
            if dp * dl > 0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (concordant + discordant) as f64
}

/// Location Square Deviation (Eq. 44): mean squared difference between
/// each item's predicted and labelled route position.
///
/// # Panics
/// Panics if the sequences have different lengths or are empty.
pub fn lsd(pred: &[usize], label: &[usize]) -> f64 {
    assert_eq!(pred.len(), label.len(), "route length mismatch");
    assert!(!pred.is_empty(), "empty route");
    let pred_rank = ranks_of(pred);
    let label_rank = ranks_of(label);
    let n = pred.len();
    (0..n)
        .map(|i| {
            let d = pred_rank[i] as f64 - label_rank[i] as f64;
            d * d
        })
        .sum::<f64>()
        / n as f64
}

/// Converts a visit sequence into per-item ranks:
/// `ranks[i] = position of item i in the route`.
///
/// # Panics
/// Panics if `route` is not a permutation of `0..len`.
pub fn ranks_of(route: &[usize]) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; route.len()];
    for (pos, &item) in route.iter().enumerate() {
        assert!(item < route.len(), "route item {item} out of range");
        assert_eq!(ranks[item], usize::MAX, "duplicate item {item} in route");
        ranks[item] = pos;
    }
    ranks
}

/// Root Mean Square Error over paired predictions (Eq. 45).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(pred: &[f32], label: &[f32]) -> f64 {
    assert_eq!(pred.len(), label.len(), "time vector length mismatch");
    assert!(!pred.is_empty(), "empty time vectors");
    let s: f64 = pred
        .iter()
        .zip(label)
        .map(|(p, y)| {
            let d = (*p - *y) as f64;
            d * d
        })
        .sum();
    (s / pred.len() as f64).sqrt()
}

/// Mean Absolute Error (Eq. 45).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mae(pred: &[f32], label: &[f32]) -> f64 {
    assert_eq!(pred.len(), label.len(), "time vector length mismatch");
    assert!(!pred.is_empty(), "empty time vectors");
    pred.iter().zip(label).map(|(p, y)| (*p - *y).abs() as f64).sum::<f64>() / pred.len() as f64
}

/// acc@tol (Eq. 45): percentage of predictions whose absolute error is
/// strictly within `tol`. The paper reports acc@20 (minutes), in percent.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn acc_at(pred: &[f32], label: &[f32], tol: f32) -> f64 {
    assert_eq!(pred.len(), label.len(), "time vector length mismatch");
    assert!(!pred.is_empty(), "empty time vectors");
    let hits = pred.iter().zip(label).filter(|(p, y)| (**p - **y).abs() < tol).count();
    hits as f64 / pred.len() as f64 * 100.0
}

/// The size buckets of Tables III/IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bucket {
    /// `n ∈ (3, 10]`.
    Short,
    /// `n ∈ (10, 20]`.
    Long,
    /// Every sample.
    All,
}

impl Bucket {
    /// The buckets in table-column order.
    pub const ALL: [Bucket; 3] = [Bucket::Short, Bucket::Long, Bucket::All];

    /// Whether a sample with `n` locations belongs to this bucket.
    pub fn contains(self, n: usize) -> bool {
        match self {
            Bucket::Short => n > 3 && n <= 10,
            Bucket::Long => n > 10 && n <= 20,
            Bucket::All => true,
        }
    }

    /// Column header used by the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::Short => "n in (3-10]",
            Bucket::Long => "n in (10-20]",
            Bucket::All => "all",
        }
    }
}

/// Route metrics of one bucket, averaged over samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RouteMetrics {
    /// HR@3 in percent (paper prints e.g. 74.46).
    pub hr3: f64,
    /// Kendall rank correlation.
    pub krc: f64,
    /// Location square deviation.
    pub lsd: f64,
    /// Samples aggregated.
    pub count: usize,
}

/// Time metrics of one bucket. RMSE/MAE are computed over the pooled
/// per-location errors (matching Eq. 45, which sums over locations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeMetrics {
    /// Root mean squared error, minutes.
    pub rmse: f64,
    /// Mean absolute error, minutes.
    pub mae: f64,
    /// acc@20 in percent.
    pub acc20: f64,
    /// Locations aggregated.
    pub count: usize,
}

/// Accumulates per-sample route metrics into the three buckets.
#[derive(Debug, Clone, Default)]
pub struct RouteMetricAccumulator {
    sums: [(f64, f64, f64, usize); 3],
}

impl RouteMetricAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample's predicted and labelled route.
    pub fn add(&mut self, pred: &[usize], label: &[usize]) {
        let h = hr_at_k(pred, label, 3);
        let k = krc(pred, label);
        let l = lsd(pred, label);
        let n = pred.len();
        for (b, bucket) in Bucket::ALL.iter().enumerate() {
            if bucket.contains(n) {
                self.sums[b].0 += h;
                self.sums[b].1 += k;
                self.sums[b].2 += l;
                self.sums[b].3 += 1;
            }
        }
    }

    /// Averaged metrics for a bucket (`None` if it saw no samples).
    pub fn finish(&self, bucket: Bucket) -> Option<RouteMetrics> {
        let b = Bucket::ALL.iter().position(|x| *x == bucket).expect("valid bucket");
        let (h, k, l, c) = self.sums[b];
        if c == 0 {
            return None;
        }
        Some(RouteMetrics {
            hr3: h / c as f64 * 100.0,
            krc: k / c as f64,
            lsd: l / c as f64,
            count: c,
        })
    }
}

/// Accumulates per-location time errors into the three buckets.
#[derive(Debug, Clone, Default)]
pub struct TimeMetricAccumulator {
    // (sum squared error, sum abs error, hits within 20, count)
    sums: [(f64, f64, usize, usize); 3],
}

impl TimeMetricAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample's predicted and labelled arrival gaps (aligned by
    /// location index). `n` is the sample's location count, deciding its
    /// bucket.
    pub fn add(&mut self, pred: &[f32], label: &[f32], n: usize) {
        assert_eq!(pred.len(), label.len(), "time vector length mismatch");
        for (b, bucket) in Bucket::ALL.iter().enumerate() {
            if bucket.contains(n) {
                for (p, y) in pred.iter().zip(label) {
                    let d = (*p - *y) as f64;
                    self.sums[b].0 += d * d;
                    self.sums[b].1 += d.abs();
                    if d.abs() < 20.0 {
                        self.sums[b].2 += 1;
                    }
                    self.sums[b].3 += 1;
                }
            }
        }
    }

    /// Pooled metrics for a bucket (`None` if it saw no locations).
    pub fn finish(&self, bucket: Bucket) -> Option<TimeMetrics> {
        let b = Bucket::ALL.iter().position(|x| *x == bucket).expect("valid bucket");
        let (sq, ab, hits, c) = self.sums[b];
        if c == 0 {
            return None;
        }
        Some(TimeMetrics {
            rmse: (sq / c as f64).sqrt(),
            mae: ab / c as f64,
            acc20: hits as f64 / c as f64 * 100.0,
            count: c,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hr_at_k_perfect_and_disjoint() {
        assert_eq!(hr_at_k(&[0, 1, 2, 3], &[0, 1, 2, 3], 3), 1.0);
        // top-3 of pred = {0,1,2}; label top-3 = {3,2,1} -> 2 hits
        assert_eq!(hr_at_k(&[0, 1, 2, 3], &[3, 2, 1, 0], 3), 2.0 / 3.0);
        // completely disjoint top-k
        assert_eq!(hr_at_k(&[0, 1, 2, 3, 4, 5], &[3, 4, 5, 0, 1, 2], 3), 0.0);
    }

    #[test]
    fn hr_is_order_insensitive_within_topk() {
        // HR@k is a set metric over the first k items.
        assert_eq!(hr_at_k(&[2, 1, 0, 3], &[0, 1, 2, 3], 3), 1.0);
    }

    #[test]
    fn krc_extremes_and_midpoint() {
        assert_eq!(krc(&[0, 1, 2, 3], &[0, 1, 2, 3]), 1.0);
        assert_eq!(krc(&[3, 2, 1, 0], &[0, 1, 2, 3]), -1.0);
        // single swap of adjacent ranks flips 1 of 6 pairs: (5-1)/6
        let v = krc(&[1, 0, 2, 3], &[0, 1, 2, 3]);
        assert!((v - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn krc_singleton_is_one() {
        assert_eq!(krc(&[0], &[0]), 1.0);
    }

    #[test]
    fn lsd_zero_and_known_value() {
        assert_eq!(lsd(&[0, 1, 2], &[0, 1, 2]), 0.0);
        // reversed 3-route: ranks (2,1,0) vs (0,1,2) -> (4+0+4)/3
        assert!((lsd(&[2, 1, 0], &[0, 1, 2]) - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_metrics_known_values() {
        let p = [10.0f32, 20.0, 50.0];
        let y = [12.0f32, 10.0, 80.0];
        assert!((mae(&p, &y) - (2.0 + 10.0 + 30.0) / 3.0).abs() < 1e-9);
        let expect_rmse = ((4.0 + 100.0 + 900.0f64) / 3.0).sqrt();
        assert!((rmse(&p, &y) - expect_rmse).abs() < 1e-9);
        assert!((acc_at(&p, &y, 20.0) - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn acc_tolerance_is_strict() {
        assert_eq!(acc_at(&[0.0], &[20.0], 20.0), 0.0, "|err| == tol must not count");
        assert_eq!(acc_at(&[0.0], &[19.99], 20.0), 100.0);
    }

    #[test]
    fn buckets_partition_correctly() {
        assert!(!Bucket::Short.contains(3));
        assert!(Bucket::Short.contains(4));
        assert!(Bucket::Short.contains(10));
        assert!(!Bucket::Short.contains(11));
        assert!(Bucket::Long.contains(11));
        assert!(Bucket::Long.contains(20));
        assert!(!Bucket::Long.contains(21));
        assert!(Bucket::All.contains(3) && Bucket::All.contains(21));
    }

    #[test]
    fn route_accumulator_buckets_and_averages() {
        let mut acc = RouteMetricAccumulator::new();
        acc.add(&[0, 1, 2, 3], &[0, 1, 2, 3]); // short, perfect
        acc.add(&[10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]); // long, reversed
        let short = acc.finish(Bucket::Short).unwrap();
        assert_eq!(short.count, 1);
        assert_eq!(short.hr3, 100.0);
        assert_eq!(short.krc, 1.0);
        let long = acc.finish(Bucket::Long).unwrap();
        assert_eq!(long.count, 1);
        assert_eq!(long.krc, -1.0);
        let all = acc.finish(Bucket::All).unwrap();
        assert_eq!(all.count, 2);
        assert!((all.krc - 0.0).abs() < 1e-12);
    }

    #[test]
    fn time_accumulator_pools_locations() {
        let mut acc = TimeMetricAccumulator::new();
        acc.add(&[10.0, 10.0], &[10.0, 40.0], 5); // short sample, errors 0 and 30
        let short = acc.finish(Bucket::Short).unwrap();
        assert_eq!(short.count, 2);
        assert!((short.mae - 15.0).abs() < 1e-9);
        assert!((short.acc20 - 50.0).abs() < 1e-9);
        assert!(acc.finish(Bucket::Long).is_none(), "no long samples seen");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        krc(&[0, 1], &[0, 1, 2]);
    }
}
