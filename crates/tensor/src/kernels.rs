//! Cache-blocked matmul kernels for the tape's hot loop.
//!
//! Three kernels cover the forward product and both backward
//! accumulations of `C = A @ B`:
//!
//! * [`matmul`] — `out = A @ B` (overwrite), B packed into column
//!   panels with a register-tile accumulator; full-width panels run
//!   the AVX2 body in [`crate::simd`] when the CPU has it.
//! * [`matmul_grad_a`] — `gA += G @ Bᵀ`. B is transposed once per call
//!   into a `[c,k]` scratch so each `g != 0` term becomes a contiguous
//!   saxpy into a per-row accumulator — the same memory shape as the
//!   forward kernel, instead of the strided dot grid it used to be.
//! * [`matmul_grad_b`] — `gB += Aᵀ @ G`, a blocked saxpy accumulation
//!   that keeps a small panel of `gB` rows hot while streaming `G`.
//!
//! [`matmul_fast`] is the opt-in fast-tier forward (FMA contraction,
//! see `crate::simd`); it is never called where gradients flow.
//!
//! **Determinism contract.** Every default kernel performs, for each
//! output element, *exactly* the same sequence of float operations as
//! its `*_naive` reference (single left-to-right accumulator over the
//! contraction index; same zero-skip conditions). Blocking, packing
//! and AVX2 lanes only reorder *independent* elements, never the
//! summands of one element, so results are bit-identical to the
//! reference — which is what keeps `tests/determinism.rs` meaningful
//! and is enforced by the `kernel_props` proptests.
//!
//! The `*_naive` references are kept `pub` on purpose: the equivalence
//! proptests and the `tensor_kernels` bench both compare against them.

use crate::simd;
use std::cell::RefCell;

/// Column-tile width of the forward kernel's register accumulator.
/// 16 f32 = four SSE / two AVX registers; edge tiles take a slower
/// variable-width path.
const NR: usize = 16;

thread_local! {
    /// Per-thread scratch for the packed B panel (`k × NR` floats).
    /// Thread-local keeps the kernel allocation-free after warm-up
    /// without threading a scratch buffer through every call site.
    static PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Reference forward product `out = A @ B` (`A [r,k]`, `B [k,c]`,
/// `out [r,c]`, all row-major). The i-k-j saxpy loop this replaces as
/// the hot kernel; per output element the accumulation is a single
/// left-to-right sum over `kk` starting from 0.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), k * c);
    debug_assert_eq!(out.len(), r * c);
    out.iter_mut().for_each(|o| *o = 0.0);
    for i in 0..r {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * c..(i + 1) * c];
        for (kk, &av) in arow.iter().enumerate() {
            let brow = &b[kk * c..(kk + 1) * c];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked forward product `out = A @ B` (overwrite). Bit-identical to
/// [`matmul_naive`].
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), k * c);
    debug_assert_eq!(out.len(), r * c);
    rtp_obs::counter!("tensor.matmul.fwd").inc();
    if r == 0 || c == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    if c == 1 {
        // B is a contiguous column vector: plain dot products.
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(b) {
                acc += av * bv;
            }
            out[i] = acc;
        }
        return;
    }
    PACK.with(|p| {
        let mut pack = p.borrow_mut();
        let mut jb = 0;
        while jb < c {
            let nr = NR.min(c - jb);
            // Pack the B column panel [k × nr] contiguously; reused by
            // every row of A, so the pack cost amortises over r.
            pack.clear();
            pack.reserve(k * nr);
            for kk in 0..k {
                pack.extend_from_slice(&b[kk * c + jb..kk * c + jb + nr]);
            }
            if nr == NR {
                #[cfg(target_arch = "x86_64")]
                if simd::have_avx2() {
                    // SAFETY: AVX2 just checked; pack is k×NR and the
                    // out/a bounds hold by the matmul contract.
                    unsafe { simd::fwd_panel_avx2(a, &pack, out, r, k, c, jb) };
                    jb += nr;
                    continue;
                }
                // 4×NR register tile: four rows of A share each packed-B
                // load, giving eight independent vector accumulators so
                // the FMA latency chains overlap. Each row's acc is still
                // a single left-to-right sum over kk — bit-identical to
                // the reference.
                let mut i = 0;
                while i + 4 <= r {
                    let a0 = &a[i * k..(i + 1) * k];
                    let a1 = &a[(i + 1) * k..(i + 2) * k];
                    let a2 = &a[(i + 2) * k..(i + 3) * k];
                    let a3 = &a[(i + 3) * k..(i + 4) * k];
                    let mut c0 = [0.0f32; NR];
                    let mut c1 = [0.0f32; NR];
                    let mut c2 = [0.0f32; NR];
                    let mut c3 = [0.0f32; NR];
                    for kk in 0..k {
                        let bp: &[f32; NR] =
                            pack[kk * NR..(kk + 1) * NR].try_into().expect("panel tile");
                        let (v0, v1, v2, v3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                        for j in 0..NR {
                            c0[j] += v0 * bp[j];
                            c1[j] += v1 * bp[j];
                            c2[j] += v2 * bp[j];
                            c3[j] += v3 * bp[j];
                        }
                    }
                    out[i * c + jb..i * c + jb + NR].copy_from_slice(&c0);
                    out[(i + 1) * c + jb..(i + 1) * c + jb + NR].copy_from_slice(&c1);
                    out[(i + 2) * c + jb..(i + 2) * c + jb + NR].copy_from_slice(&c2);
                    out[(i + 3) * c + jb..(i + 3) * c + jb + NR].copy_from_slice(&c3);
                    i += 4;
                }
                while i < r {
                    let arow = &a[i * k..(i + 1) * k];
                    let mut acc = [0.0f32; NR];
                    for (kk, &av) in arow.iter().enumerate() {
                        let bp: &[f32; NR] =
                            pack[kk * NR..(kk + 1) * NR].try_into().expect("panel tile");
                        for (ac, &bv) in acc.iter_mut().zip(bp) {
                            *ac += av * bv;
                        }
                    }
                    out[i * c + jb..i * c + jb + NR].copy_from_slice(&acc);
                    i += 1;
                }
            } else {
                for i in 0..r {
                    let arow = &a[i * k..(i + 1) * k];
                    let mut acc = [0.0f32; NR];
                    for (kk, &av) in arow.iter().enumerate() {
                        let bp = &pack[kk * nr..(kk + 1) * nr];
                        for (ac, &bv) in acc.iter_mut().zip(bp) {
                            *ac += av * bv;
                        }
                    }
                    out[i * c + jb..i * c + jb + nr].copy_from_slice(&acc[..nr]);
                }
            }
            jb += nr;
        }
    });
}

/// Fast-tier forward product `out = A @ B` (overwrite): FMA
/// contraction and multi-accumulator dots via [`crate::simd`]. NOT
/// bit-identical to [`matmul_naive`] — rounding differs (typically it
/// is *more* accurate) — so this is only reachable through the opt-in
/// `Numerics::Fast`/`Numerics::Quantized` inference tiers, never where
/// gradients flow. Falls back to the exact blocked kernel when the CPU
/// lacks AVX2+FMA, so the fast tier is exact-by-fallback there.
pub fn matmul_fast(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(b.len(), k * c);
    debug_assert_eq!(out.len(), r * c);
    rtp_obs::counter!("tensor.matmul.fwd_fast").inc();
    if r == 0 || c == 0 {
        return;
    }
    if k == 0 {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    if !simd::matmul_fast(a, b, out, r, k, c) {
        matmul(a, b, out, r, k, c);
    }
}

/// Reference backward accumulation `gA += G @ Bᵀ` (`G [r,c]`,
/// `B [k,c]`, `gA [r,k]`): per element, a zero-initialised dot over
/// `j` (skipping `g == 0` terms) added once into `gA`.
pub fn matmul_grad_a_naive(g: &[f32], b: &[f32], ga: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(g.len(), r * c);
    debug_assert_eq!(b.len(), k * c);
    debug_assert_eq!(ga.len(), r * k);
    for i in 0..r {
        let grow = &g[i * c..(i + 1) * c];
        let garow = &mut ga[i * k..(i + 1) * k];
        for (kk, gout) in garow.iter_mut().enumerate() {
            let brow = &b[kk * c..(kk + 1) * c];
            let mut acc = 0.0f32;
            for (&gv, &bv) in grow.iter().zip(brow) {
                if gv != 0.0 {
                    acc += gv * bv;
                }
            }
            *gout += acc;
        }
    }
}

thread_local! {
    /// Per-thread scratch for [`matmul_grad_a`]: `(Bᵀ [c,k], acc [k])`.
    static GRAD_A_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Panel-wise `gA += G @ Bᵀ`, bit-identical to
/// [`matmul_grad_a_naive`].
///
/// The old kernel walked `B` column-wise (stride `c`) inside dot
/// products, so every inner step was a strided load — ~9× slower than
/// the forward kernel. Here `B` is transposed **once per call** into a
/// `[c,k]` scratch; for each output row, a zeroed accumulator row
/// collects `acc[kk] += g[i,j] * Bᵀ[j,kk]` as contiguous saxpies
/// (vectorized across the independent `kk` outputs via
/// [`crate::simd::axpy`]) and lands in `gA` with one final add.
///
/// Per element `(i,kk)` that is *exactly* the reference sequence: a
/// zero-initialised left-to-right sum over ascending `j` with the same
/// `g != 0` skip, then a single `+=` into `gA` — only independent
/// elements were reordered, so bits match with or without AVX2.
pub fn matmul_grad_a(g: &[f32], b: &[f32], ga: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(g.len(), r * c);
    debug_assert_eq!(b.len(), k * c);
    debug_assert_eq!(ga.len(), r * k);
    rtp_obs::counter!("tensor.matmul.grad_a").inc();
    if r == 0 || k == 0 {
        return;
    }
    GRAD_A_SCRATCH.with(|s| {
        let (bt, acc) = &mut *s.borrow_mut();
        bt.clear();
        bt.resize(c * k, 0.0);
        for kk in 0..k {
            let brow = &b[kk * c..(kk + 1) * c];
            for (j, &bv) in brow.iter().enumerate() {
                bt[j * k + kk] = bv;
            }
        }
        for i in 0..r {
            let grow = &g[i * c..(i + 1) * c];
            let garow = &mut ga[i * k..(i + 1) * k];
            acc.clear();
            acc.resize(k, 0.0);
            for (j, &gv) in grow.iter().enumerate() {
                if gv != 0.0 {
                    simd::axpy(acc, &bt[j * k..(j + 1) * k], gv);
                }
            }
            for (gout, &av) in garow.iter_mut().zip(acc.iter()) {
                *gout += av;
            }
        }
    });
}

/// Reference backward accumulation `gB += Aᵀ @ G` (`A [r,k]`,
/// `G [r,c]`, `gB [k,c]`): streaming saxpy, per element accumulated in
/// ascending `i` (skipping `a == 0` rows).
pub fn matmul_grad_b_naive(a: &[f32], g: &[f32], gb: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(g.len(), r * c);
    debug_assert_eq!(gb.len(), k * c);
    for i in 0..r {
        let grow = &g[i * c..(i + 1) * c];
        for kk in 0..k {
            let av = a[i * k + kk];
            if av != 0.0 {
                let gbrow = &mut gb[kk * c..(kk + 1) * c];
                for (gbv, &gv) in gbrow.iter_mut().zip(grow) {
                    *gbv += av * gv;
                }
            }
        }
    }
}

/// Blocked `gB += Aᵀ @ G`: processes `gB` in panels of 8 rows so the
/// panel stays cache-hot while `G` streams through once per panel.
/// Bit-identical to [`matmul_grad_b_naive`].
pub fn matmul_grad_b(a: &[f32], g: &[f32], gb: &mut [f32], r: usize, k: usize, c: usize) {
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(g.len(), r * c);
    debug_assert_eq!(gb.len(), k * c);
    rtp_obs::counter!("tensor.matmul.grad_b").inc();
    const KB: usize = 8;
    let mut kk0 = 0;
    while kk0 < k {
        let kb = KB.min(k - kk0);
        let panel = &mut gb[kk0 * c..(kk0 + kb) * c];
        for i in 0..r {
            let grow = &g[i * c..(i + 1) * c];
            let arow = &a[i * k + kk0..i * k + kk0 + kb];
            for (dk, &av) in arow.iter().enumerate() {
                if av != 0.0 {
                    let gbrow = &mut panel[dk * c..(dk + 1) * c];
                    for (gbv, &gv) in gbrow.iter_mut().zip(grow) {
                        *gbv += av * gv;
                    }
                }
            }
        }
        kk0 += kb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        // tiny deterministic LCG; values in [-1, 1)
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn blocked_forward_matches_naive_bitwise() {
        for &(r, k, c) in
            &[(1, 1, 1), (3, 5, 7), (16, 16, 16), (17, 33, 19), (2, 64, 1), (40, 24, 48)]
        {
            let a = fill(r * k, 1 + r as u32);
            let b = fill(k * c, 2 + c as u32);
            let mut out1 = vec![f32::NAN; r * c];
            let mut out2 = vec![f32::NAN; r * c];
            matmul_naive(&a, &b, &mut out1, r, k, c);
            matmul(&a, &b, &mut out2, r, k, c);
            assert_eq!(bits(&out1), bits(&out2), "forward mismatch at ({r},{k},{c})");
        }
    }

    #[test]
    fn blocked_backward_kernels_match_naive_bitwise() {
        for &(r, k, c) in &[(1, 1, 1), (3, 5, 7), (17, 33, 19), (8, 4, 32)] {
            let a = fill(r * k, 3);
            let b = fill(k * c, 4);
            let g = fill(r * c, 5);
            let mut ga1 = fill(r * k, 6);
            let mut ga2 = ga1.clone();
            matmul_grad_a_naive(&g, &b, &mut ga1, r, k, c);
            matmul_grad_a(&g, &b, &mut ga2, r, k, c);
            assert_eq!(bits(&ga1), bits(&ga2), "grad_a mismatch at ({r},{k},{c})");
            let mut gb1 = fill(k * c, 7);
            let mut gb2 = gb1.clone();
            matmul_grad_b_naive(&a, &g, &mut gb1, r, k, c);
            matmul_grad_b(&a, &g, &mut gb2, r, k, c);
            assert_eq!(bits(&gb1), bits(&gb2), "grad_b mismatch at ({r},{k},{c})");
        }
    }
}
