//! The autodiff tape: a flat arena of tensor nodes plus reverse-mode
//! gradient propagation.
//!
//! Every op is a method on [`Tape`] that appends a node and returns a
//! [`TensorId`]. [`Tape::backward`] seeds the gradient of a scalar loss
//! with 1 and walks the arena in reverse, accumulating into each node's
//! gradient buffer and finally into the [`ParamStore`] for `Param` leaves.
//!
//! # Memory model
//!
//! Storage is split into parallel arenas: `nodes` holds shapes and op
//! metadata, `bufs` holds the value buffers, and `grads` (grad mode
//! only) holds one gradient buffer per node. Nodes reference their
//! value buffer by index, so views ([`Tape::reshape`]) share a buffer
//! instead of copying, and backward can borrow one node's gradient
//! mutably while reading another node's values — no cloning.
//!
//! [`Tape::clear`] moves every buffer into a free-list pool; the next
//! forward pass pops from the pool instead of hitting the allocator.
//! A tape reused via `clear()` across samples/epochs is allocation-free
//! in steady state. [`Tape::inference`] builds a no-grad tape that
//! skips gradient allocation and op-payload recording entirely;
//! [`Tape::backward`] on such a tape panics.

use std::sync::Arc;

use crate::kernels;
use crate::params::{ParamId, ParamStore};
use crate::simd::{self, QuantSet};

/// Numerics tier of a tape (see DESIGN.md "Numerics policy").
///
/// * `Exact` — the default everywhere: every kernel is bit-identical
///   to its naive reference, so training is deterministic across
///   thread counts and twin servers byte-match. Gradients only ever
///   flow on exact tapes ([`Tape::new`] is always exact).
/// * `Fast` — opt-in inference-only forward kernels with FMA
///   contraction and multi-accumulator reductions; same math, freer
///   rounding.
/// * `Quantized` — `Fast`, plus matmuls whose RHS is a model parameter
///   with a quantized snapshot run as i8×i8→i32 dots
///   ([`crate::simd::matmul_q8`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Numerics {
    /// Bit-exact tier (default; the only tier gradients may use).
    #[default]
    Exact,
    /// FMA/multi-accumulator f32 forward kernels (inference only).
    Fast,
    /// i8-quantized param matmuls over the fast tier (inference only).
    Quantized,
}

impl Numerics {
    /// Canonical lowercase name, as used by `--numerics` flags and
    /// reply tags.
    pub fn as_str(self) -> &'static str {
        match self {
            Numerics::Exact => "exact",
            Numerics::Fast => "fast",
            Numerics::Quantized => "quantized",
        }
    }
}

impl std::fmt::Display for Numerics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Numerics {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Numerics::Exact),
            "fast" => Ok(Numerics::Fast),
            "quantized" => Ok(Numerics::Quantized),
            other => Err(format!("unknown numerics tier `{other}` (exact|fast|quantized)")),
        }
    }
}

/// Handle to a tensor on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(u32);

impl TensorId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Param(ParamId),
    Matmul(TensorId, TensorId),
    Add(TensorId, TensorId),
    AddRow(TensorId, TensorId),
    AddCol(TensorId, TensorId),
    AddOuter(TensorId, TensorId),
    Sub(TensorId, TensorId),
    Mul(TensorId, TensorId),
    MulScalarT(TensorId, TensorId),
    MulRow(TensorId, TensorId),
    Scale(TensorId, f32),
    AddScalar(TensorId),
    Abs(TensorId),
    Relu(TensorId),
    LeakyRelu(TensorId, f32),
    Tanh(TensorId),
    Sigmoid(TensorId),
    Exp(TensorId),
    Ln(TensorId),
    ConcatCols(Vec<TensorId>),
    ConcatRows(Vec<TensorId>),
    GatherRows(TensorId, Vec<usize>),
    RepeatRows(TensorId, usize),
    RepeatInterleaveRows(TensorId, usize),
    Transpose(TensorId),
    Reshape(TensorId),
    SumAll(TensorId),
    MeanAll(TensorId),
    RowSum(TensorId),
    RowMean(TensorId),
    MaskedSoftmaxRows(TensorId, Vec<bool>),
    MaskedLogSoftmaxRows(TensorId, Vec<bool>),
    PickElements(TensorId, Vec<(usize, usize)>),
    LayerNormRows(TensorId, f32),
}

#[derive(Debug)]
struct Node {
    rows: usize,
    cols: usize,
    /// Index into `Tape::bufs` of this node's value buffer. Views
    /// (reshape) share the producing node's buffer index.
    buf: u32,
    op: Op,
}

/// A single forward pass: an append-only arena of tensors and the ops
/// that produced them. See the module docs for the memory model.
#[derive(Debug)]
pub struct Tape {
    nodes: Vec<Node>,
    /// Value buffers, indexed by `Node::buf`.
    bufs: Vec<Vec<f32>>,
    /// One gradient buffer per node (grad mode only; empty otherwise).
    grads: Vec<Vec<f32>>,
    /// Free list of recycled buffers, refilled by [`Tape::clear`].
    pool: Vec<Vec<f32>>,
    grad_enabled: bool,
    pool_hits: u64,
    pool_misses: u64,
    /// Numerics tier (always [`Numerics::Exact`] on grad tapes).
    numerics: Numerics,
    /// Quantized parameter snapshots for [`Numerics::Quantized`].
    quant: Option<Arc<QuantSet>>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    fn with_grad(grad_enabled: bool) -> Self {
        Self {
            nodes: Vec::new(),
            bufs: Vec::new(),
            grads: Vec::new(),
            pool: Vec::new(),
            grad_enabled,
            pool_hits: 0,
            pool_misses: 0,
            numerics: Numerics::Exact,
            quant: None,
        }
    }

    /// Creates an empty tape that records gradients.
    pub fn new() -> Self {
        Self::with_grad(true)
    }

    /// Creates an empty no-grad tape for inference: gradient buffers
    /// are never allocated and op payloads (concat lists, gather
    /// indices, softmax masks) are not recorded. [`Tape::backward`] and
    /// [`Tape::grad`] panic on such a tape.
    pub fn inference() -> Self {
        Self::with_grad(false)
    }

    /// Creates a no-grad tape running the given numerics tier. Only
    /// inference tapes can leave the exact tier: [`Tape::new`] is
    /// always exact, so gradients structurally never see fast or
    /// quantized kernels.
    pub fn inference_with(numerics: Numerics) -> Self {
        let mut t = Self::with_grad(false);
        t.numerics = numerics;
        t
    }

    /// The tape's numerics tier.
    pub fn numerics(&self) -> Numerics {
        self.numerics
    }

    /// Attaches quantized parameter snapshots; matmuls whose RHS is a
    /// parameter present in `quant` (with matching shape) will run the
    /// i8 path when the tape's tier is [`Numerics::Quantized`].
    ///
    /// # Panics
    /// Panics on a grad tape — quantization is inference-only.
    pub fn attach_quant(&mut self, quant: Arc<QuantSet>) {
        assert!(!self.grad_enabled, "quantized numerics on a grad tape");
        self.quant = Some(quant);
    }

    /// Creates an empty tape with room for `cap` nodes (hot loops).
    pub fn with_capacity(cap: usize) -> Self {
        let mut t = Self::new();
        t.nodes.reserve(cap);
        t.bufs.reserve(cap);
        t.grads.reserve(cap);
        t
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether this tape records gradients (false for [`Tape::inference`]).
    pub fn is_grad_enabled(&self) -> bool {
        self.grad_enabled
    }

    /// Forgets all nodes but keeps every buffer in the free-list pool,
    /// so the next forward pass on this tape reuses their allocations.
    /// Reusing a cleared tape is bit-identical to using a fresh one.
    ///
    /// The pool is capped at the pass that just finished: one pass can
    /// consume at most as many pooled buffers as it records, but it may
    /// *record* more than it consumed — ops fed caller-built vectors
    /// ([`Tape::constant`] and friends) push buffers that never came
    /// from the pool. Without the cap those extras pile up as dead
    /// weight behind the LIFO's working end — roughly one buffer set
    /// per forward pass, which on a long-lived serving tape grew
    /// resident memory by hundreds of kilobytes *per request* until a
    /// model swap happened to rebuild the tape. The oldest (coldest)
    /// buffers are dropped first; the warm tail keeps its capacities.
    pub fn clear(&mut self) {
        self.nodes.clear();
        let used = self.bufs.len() + self.grads.len();
        self.pool.append(&mut self.bufs);
        self.pool.append(&mut self.grads);
        if self.pool.len() > used {
            self.pool.drain(..self.pool.len() - used);
        }
    }

    /// `(pool hits, pool misses)` — buffer requests served from the
    /// free list vs. fresh heap allocations, over the tape's lifetime.
    pub fn pool_stats(&self) -> (u64, u64) {
        (self.pool_hits, self.pool_misses)
    }

    /// Number of buffers currently parked in the free-list pool.
    /// Bounded by the last pass's buffer count (see [`Tape::clear`]);
    /// a steadily growing value here is a leak.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Pops a recycled buffer from the pool (cleared, capacity kept)
    /// or allocates an empty one.
    fn alloc(&mut self) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                self.pool_hits += 1;
                v
            }
            None => {
                self.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// A pooled buffer of `len` copies of `fill`.
    fn alloc_filled(&mut self, len: usize, fill: f32) -> Vec<f32> {
        let mut v = self.alloc();
        v.resize(len, fill);
        v
    }

    fn push(&mut self, rows: usize, cols: usize, data: Vec<f32>, op: Op) -> TensorId {
        debug_assert_eq!(data.len(), rows * cols);
        let buf = self.bufs.len() as u32;
        self.bufs.push(data);
        self.push_view(rows, cols, buf, op)
    }

    /// Appends a node that references an existing buffer (zero-copy
    /// views). In no-grad mode ops are dropped in favour of `Leaf` —
    /// except `Op::Param`, which is payload-free and lets the
    /// quantized tier recognise parameter operands ([`Tape::matmul`]).
    fn push_view(&mut self, rows: usize, cols: usize, buf: u32, op: Op) -> TensorId {
        let id = TensorId(self.nodes.len() as u32);
        if self.grad_enabled {
            let grad = self.alloc_filled(rows * cols, 0.0);
            self.grads.push(grad);
            self.nodes.push(Node { rows, cols, buf, op });
        } else {
            let op = match op {
                Op::Param(pid) => Op::Param(pid),
                _ => Op::Leaf,
            };
            self.nodes.push(Node { rows, cols, buf, op });
        }
        id
    }

    /// Buffer index of a tensor's values.
    fn bufi(&self, t: TensorId) -> usize {
        self.nodes[t.idx()].buf as usize
    }

    /// Shape of a tensor as `(rows, cols)`.
    pub fn shape(&self, t: TensorId) -> (usize, usize) {
        let n = &self.nodes[t.idx()];
        (n.rows, n.cols)
    }

    /// Read-only view of a tensor's values.
    pub fn data(&self, t: TensorId) -> &[f32] {
        &self.bufs[self.bufi(t)]
    }

    /// Read-only view of a tensor's gradient (valid after `backward`).
    pub fn grad(&self, t: TensorId) -> &[f32] {
        assert!(self.grad_enabled, "grad() on a no-grad (inference) tape");
        &self.grads[t.idx()]
    }

    /// The single value of a `[1,1]` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1×1`.
    pub fn scalar(&self, t: TensorId) -> f32 {
        assert_eq!(self.shape(t), (1, 1), "scalar() on a non-1x1 tensor");
        self.data(t)[0]
    }

    // ---------------------------------------------------------------
    // Leaves
    // ---------------------------------------------------------------

    /// Records a constant (non-differentiable-into) input tensor.
    pub fn constant(&mut self, rows: usize, cols: usize, data: Vec<f32>) -> TensorId {
        assert_eq!(data.len(), rows * cols, "constant data length mismatch");
        self.push(rows, cols, data, Op::Leaf)
    }

    /// Records a `[1,1]` constant.
    pub fn scalar_const(&mut self, v: f32) -> TensorId {
        let mut out = self.alloc();
        out.push(v);
        self.push(1, 1, out, Op::Leaf)
    }

    /// Leases a parameter from `store` onto this tape. Gradients flowing
    /// into the returned tensor are accumulated back into the store by
    /// [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> TensorId {
        let (rows, cols) = store.shape(id);
        let mut out = self.alloc();
        out.extend_from_slice(store.data(id));
        self.push(rows, cols, out, Op::Param(id))
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// Matrix product `a @ b`: `[r,k] x [k,c] -> [r,c]`, via the
    /// cache-blocked kernel in [`crate::kernels`] — or, on non-exact
    /// inference tapes, the fast-tier FMA kernel / the i8 quantized
    /// kernel when `b` is a parameter with a quantized snapshot.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ak) = self.shape(a);
        let (bk, bc) = self.shape(b);
        assert_eq!(ak, bk, "matmul inner dim mismatch: [{ar},{ak}] x [{bk},{bc}]");
        let mut out = self.alloc_filled(ar * bc, 0.0);
        match self.numerics {
            Numerics::Exact => {
                kernels::matmul(self.data(a), self.data(b), &mut out, ar, ak, bc);
            }
            Numerics::Fast => {
                kernels::matmul_fast(self.data(a), self.data(b), &mut out, ar, ak, bc);
            }
            Numerics::Quantized => {
                let qm = match self.nodes[b.idx()].op {
                    Op::Param(pid) => self
                        .quant
                        .as_ref()
                        .and_then(|qs| qs.get(pid))
                        .filter(|qm| qm.k == ak && qm.c == bc),
                    _ => None,
                };
                match qm {
                    Some(qm) => simd::matmul_q8(self.data(a), qm, &mut out, ar, ak, bc),
                    None => kernels::matmul_fast(self.data(a), self.data(b), &mut out, ar, ak, bc),
                }
            }
        }
        self.push(ar, bc, out, Op::Matmul(a, b))
    }

    /// Transpose `[r,c] -> [c,r]`.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc_filled(r * c, 0.0);
        let da = self.data(a);
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = da[i * c + j];
            }
        }
        self.push(c, r, out, Op::Transpose(a))
    }

    /// Reinterprets the data with a new shape (`rows*cols` must match).
    /// Zero-copy: the view node shares the source buffer.
    pub fn reshape(&mut self, a: TensorId, rows: usize, cols: usize) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(r * c, rows * cols, "reshape element count mismatch");
        let buf = self.nodes[a.idx()].buf;
        self.push_view(rows, cols, buf, Op::Reshape(a))
    }

    // ---------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------

    fn binary_same_shape(&mut self, a: TensorId, b: TensorId, op_name: &str) -> (usize, usize) {
        let sa = self.shape(a);
        let sb = self.shape(b);
        assert_eq!(sa, sb, "{op_name} shape mismatch: {sa:?} vs {sb:?}");
        sa
    }

    /// Zips two same-shape tensors through `f` into a pooled buffer.
    fn binary(
        &mut self,
        a: TensorId,
        b: TensorId,
        op: Op,
        name: &str,
        f: impl Fn(f32, f32) -> f32,
    ) -> TensorId {
        let (r, c) = self.binary_same_shape(a, b, name);
        let mut out = self.alloc();
        out.extend(self.data(a).iter().zip(self.data(b)).map(|(&x, &y)| f(x, y)));
        self.push(r, c, out, op)
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.binary(a, b, Op::Add(a, b), "add", |x, y| x + y)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.binary(a, b, Op::Sub(a, b), "sub", |x, y| x - y)
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        self.binary(a, b, Op::Mul(a, b), "mul", |x, y| x * y)
    }

    /// Broadcast add of a row vector: `[r,c] + [1,c]`.
    #[allow(clippy::needless_range_loop)] // explicit i,j indexing matches the math
    pub fn add_row(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (1, c), "add_row expects [1,{c}], got [{br},{bc}]");
        let mut out = self.alloc();
        let da = self.data(a);
        let db = self.data(b);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] + db[j]);
            }
        }
        self.push(r, c, out, Op::AddRow(a, b))
    }

    /// Broadcast add of a column vector: `[r,c] + [r,1]`.
    pub fn add_col(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (r, 1), "add_col expects [{r},1], got [{br},{bc}]");
        let mut out = self.alloc();
        let da = self.data(a);
        let db = self.data(b);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] + db[i]);
            }
        }
        self.push(r, c, out, Op::AddCol(a, b))
    }

    /// Outer sum of two column vectors: `a [r,1] ⊕ b [c,1] -> [r,c]`,
    /// `out[i][j] = a[i] + b[j]`. This is how pairwise attention logits
    /// (`a_left·h_i + a_right·h_j`) are vectorised.
    pub fn add_outer(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, ac) = self.shape(a);
        let (c, bc) = self.shape(b);
        assert_eq!(ac, 1, "add_outer lhs must be a column vector");
        assert_eq!(bc, 1, "add_outer rhs must be a column vector");
        rtp_obs::counter!("tensor.op.add_outer.calls").inc();
        rtp_obs::counter!("tensor.op.add_outer.flops").add((r * c) as u64);
        let mut out = self.alloc();
        let da = self.data(a);
        let db = self.data(b);
        for &ai in da.iter().take(r) {
            for &bj in db.iter().take(c) {
                out.push(ai + bj);
            }
        }
        self.push(r, c, out, Op::AddOuter(a, b))
    }

    /// Multiplies every element of `a` by a learnable `[1,1]` scalar `s`.
    pub fn mul_scalar_t(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(self.shape(s), (1, 1), "mul_scalar_t scale must be 1x1");
        let mut out = self.alloc();
        let sv = self.data(s)[0];
        out.extend(self.data(a).iter().map(|x| x * sv));
        self.push(r, c, out, Op::MulScalarT(a, s))
    }

    /// Broadcast elementwise multiply by a row vector: `[r,c] * [1,c]`
    /// (layer-norm gain, feature gates).
    pub fn mul_row(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (1, c), "mul_row expects [1,{c}], got [{br},{bc}]");
        let mut out = self.alloc();
        let da = self.data(a);
        let db = self.data(b);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] * db[j]);
            }
        }
        self.push(r, c, out, Op::MulRow(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: TensorId, k: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        out.extend(self.data(a).iter().map(|x| x * k));
        self.push(r, c, out, Op::Scale(a, k))
    }

    /// Adds a compile-time constant to every element.
    pub fn add_scalar(&mut self, a: TensorId, k: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        out.extend(self.data(a).iter().map(|x| x + k));
        self.push(r, c, out, Op::AddScalar(a))
    }

    /// Elementwise negation (`scale(a, -1)`).
    pub fn neg(&mut self, a: TensorId) -> TensorId {
        self.scale(a, -1.0)
    }

    // ---------------------------------------------------------------
    // Activations and pointwise nonlinearities
    // ---------------------------------------------------------------

    fn unary(&mut self, a: TensorId, op: Op, f: impl Fn(f32) -> f32) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        out.extend(self.data(a).iter().map(|&x| f(x)));
        self.push(r, c, out, op)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Abs(a), f32::abs)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Elementwise LeakyReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: TensorId, slope: f32) -> TensorId {
        self.unary(a, Op::LeakyRelu(a, slope), move |x| if x > 0.0 { x } else { slope * x })
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Tanh(a), f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Sigmoid(a), |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Exp(a), f32::exp)
    }

    /// Elementwise natural logarithm. Inputs must be strictly positive.
    pub fn ln(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Ln(a), f32::ln)
    }

    // ---------------------------------------------------------------
    // Structural ops
    // ---------------------------------------------------------------

    /// Concatenates tensors with equal row counts along the column axis.
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let (r, _) = self.shape(parts[0]);
        let total_c: usize = parts
            .iter()
            .map(|&p| {
                let (pr, pc) = self.shape(p);
                assert_eq!(pr, r, "concat_cols row mismatch");
                pc
            })
            .sum();
        let mut out = self.alloc();
        for i in 0..r {
            for &p in parts {
                let (_, pc) = self.shape(p);
                let d = self.data(p);
                out.extend_from_slice(&d[i * pc..(i + 1) * pc]);
            }
        }
        let op = if self.grad_enabled { Op::ConcatCols(parts.to_vec()) } else { Op::Leaf };
        self.push(r, total_c, out, op)
    }

    /// Concatenates tensors with equal column counts along the row axis.
    pub fn concat_rows(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let (_, c) = self.shape(parts[0]);
        let total_r: usize = parts
            .iter()
            .map(|&p| {
                let (pr, pc) = self.shape(p);
                assert_eq!(pc, c, "concat_rows column mismatch");
                pr
            })
            .sum();
        let mut out = self.alloc();
        for &p in parts {
            out.extend_from_slice(self.data(p));
        }
        let op = if self.grad_enabled { Op::ConcatRows(parts.to_vec()) } else { Op::Leaf };
        self.push(total_r, c, out, op)
    }

    /// Gathers rows of `a` by index (rows may repeat — embedding lookup,
    /// route-ordered re-sorting for the SortLSTM).
    pub fn gather_rows(&mut self, a: TensorId, indices: &[usize]) -> TensorId {
        let (r, c) = self.shape(a);
        rtp_obs::counter!("tensor.op.gather_rows.calls").inc();
        // read + write of every gathered row, in f32 bytes
        rtp_obs::counter!("tensor.op.gather_rows.bytes").add((2 * indices.len() * c * 4) as u64);
        let mut out = self.alloc();
        let da = self.data(a);
        for &i in indices {
            assert!(i < r, "gather_rows index {i} out of bounds for {r} rows");
            out.extend_from_slice(&da[i * c..(i + 1) * c]);
        }
        let op = if self.grad_enabled { Op::GatherRows(a, indices.to_vec()) } else { Op::Leaf };
        self.push(indices.len(), c, out, op)
    }

    /// Extracts a single row as a `[1,c]` tensor.
    pub fn row(&mut self, a: TensorId, i: usize) -> TensorId {
        self.gather_rows(a, &[i])
    }

    /// Tiles the whole matrix `k` times vertically: `[r,c] -> [k*r,c]`.
    pub fn repeat_rows(&mut self, a: TensorId, k: usize) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        let da = self.data(a);
        for _ in 0..k {
            out.extend_from_slice(da);
        }
        self.push(k * r, c, out, Op::RepeatRows(a, k))
    }

    /// Repeats each row `k` times consecutively: `[r,c] -> [r*k,c]`.
    pub fn repeat_interleave_rows(&mut self, a: TensorId, k: usize) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        let da = self.data(a);
        for i in 0..r {
            for _ in 0..k {
                out.extend_from_slice(&da[i * c..(i + 1) * c]);
            }
        }
        self.push(r * k, c, out, Op::RepeatInterleaveRows(a, k))
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    /// Sum of all elements -> `[1,1]`.
    pub fn sum_all(&mut self, a: TensorId) -> TensorId {
        let mut out = self.alloc();
        out.push(self.data(a).iter().sum());
        self.push(1, 1, out, Op::SumAll(a))
    }

    /// Mean of all elements -> `[1,1]`.
    pub fn mean_all(&mut self, a: TensorId) -> TensorId {
        let mut out = self.alloc();
        let da = self.data(a);
        out.push(da.iter().sum::<f32>() / da.len().max(1) as f32);
        self.push(1, 1, out, Op::MeanAll(a))
    }

    /// Per-row sum: `[r,c] -> [r,1]`.
    pub fn row_sum(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        let da = self.data(a);
        out.extend((0..r).map(|i| da[i * c..(i + 1) * c].iter().sum::<f32>()));
        self.push(r, 1, out, Op::RowSum(a))
    }

    /// Per-row mean: `[r,c] -> [r,1]`.
    pub fn row_mean(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        let da = self.data(a);
        out.extend((0..r).map(|i| da[i * c..(i + 1) * c].iter().sum::<f32>() / c as f32));
        self.push(r, 1, out, Op::RowMean(a))
    }

    // ---------------------------------------------------------------
    // Softmax family
    // ---------------------------------------------------------------

    /// Row-wise softmax over the entries where `mask` is `true`; masked
    /// entries get probability 0. A fully masked row yields all zeros.
    ///
    /// `mask.len()` must equal `rows*cols`. This single op covers both
    /// graph-attention (adjacency mask) and pointer decoding
    /// (visited-node mask).
    pub fn masked_softmax_rows(&mut self, a: TensorId, mask: &[bool]) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(mask.len(), r * c, "mask length mismatch");
        rtp_obs::counter!("tensor.op.masked_softmax_rows.calls").inc();
        // per element: max-scan, subtract, exp (~2 flop), sum, divide
        rtp_obs::counter!("tensor.op.masked_softmax_rows.flops").add((5 * r * c) as u64);
        let mut out = self.alloc_filled(r * c, 0.0);
        let da = self.data(a);
        for i in 0..r {
            softmax_row(
                &da[i * c..(i + 1) * c],
                &mask[i * c..(i + 1) * c],
                &mut out[i * c..(i + 1) * c],
            );
        }
        let op = if self.grad_enabled { Op::MaskedSoftmaxRows(a, mask.to_vec()) } else { Op::Leaf };
        self.push(r, c, out, op)
    }

    /// Row-wise log-softmax over unmasked entries; masked entries are set
    /// to `f32::NEG_INFINITY` in the output but receive zero gradient.
    /// Use with [`Tape::pick_elements`] for numerically stable
    /// cross-entropy.
    pub fn masked_log_softmax_rows(&mut self, a: TensorId, mask: &[bool]) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(mask.len(), r * c, "mask length mismatch");
        let mut out = self.alloc_filled(r * c, f32::NEG_INFINITY);
        let da = self.data(a);
        for i in 0..r {
            log_softmax_row(
                &da[i * c..(i + 1) * c],
                &mask[i * c..(i + 1) * c],
                &mut out[i * c..(i + 1) * c],
            );
        }
        let op =
            if self.grad_enabled { Op::MaskedLogSoftmaxRows(a, mask.to_vec()) } else { Op::Leaf };
        self.push(r, c, out, op)
    }

    /// Picks elements `(row, col)` into a `[k,1]` column vector.
    pub fn pick_elements(&mut self, a: TensorId, coords: &[(usize, usize)]) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc();
        let da = self.data(a);
        for &(i, j) in coords {
            assert!(i < r && j < c, "pick_elements ({i},{j}) out of bounds [{r},{c}]");
            out.push(da[i * c + j]);
        }
        let op = if self.grad_enabled { Op::PickElements(a, coords.to_vec()) } else { Op::Leaf };
        self.push(coords.len(), 1, out, op)
    }

    /// Row-wise layer normalisation (zero mean, unit variance per row).
    /// Affine gain/bias, when wanted, are applied with [`Tape::mul_row`] /
    /// [`Tape::add_row`] on `[1,c]` parameters.
    pub fn layer_norm_rows(&mut self, a: TensorId, eps: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let mut out = self.alloc_filled(r * c, 0.0);
        let da = self.data(a);
        for i in 0..r {
            let row = &da[i * c..(i + 1) * c];
            let mean = row.iter().sum::<f32>() / c as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for j in 0..c {
                out[i * c + j] = (row[j] - mean) * inv;
            }
        }
        self.push(r, c, out, Op::LayerNormRows(a, eps))
    }

    // ---------------------------------------------------------------
    // Loss helpers
    // ---------------------------------------------------------------

    /// Mean absolute error between `pred` and `target` (same shape) ->
    /// `[1,1]`. Used for the time losses (Eqs. 39–40 of the paper).
    pub fn mae_loss(&mut self, pred: TensorId, target: TensorId) -> TensorId {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean_all(a)
    }

    /// Mean squared error -> `[1,1]`.
    pub fn mse_loss(&mut self, pred: TensorId, target: TensorId) -> TensorId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// Cross-entropy of a single decoding step: `-log softmax(logits)[target]`
    /// restricted to unmasked candidates. `logits` is `[1,c]`.
    pub fn masked_cross_entropy(
        &mut self,
        logits: TensorId,
        mask: &[bool],
        target: usize,
    ) -> TensorId {
        let (r, c) = self.shape(logits);
        assert_eq!(r, 1, "masked_cross_entropy expects [1,c] logits");
        assert!(target < c && mask[target], "cross-entropy target must be an unmasked candidate");
        let logp = self.masked_log_softmax_rows(logits, mask);
        let picked = self.pick_elements(logp, &[(0, target)]);
        self.scale(picked, -1.0)
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    /// Reverse-mode gradient propagation from scalar `loss` (must be
    /// `[1,1]`). Parameter gradients are **accumulated** into `store`
    /// (call [`ParamStore::zero_grad`] when starting a new step).
    pub fn backward(&mut self, loss: TensorId, store: &mut ParamStore) {
        self.backward_into(loss, store);
    }

    /// Like [`Tape::backward`], but accumulates parameter gradients
    /// into any [`GradSink`] — a worker-local
    /// [`crate::GradBuffer`] in data-parallel training, or the
    /// [`ParamStore`] itself. The propagation itself is identical;
    /// only the destination of `Op::Param` gradients differs.
    pub fn backward_into<S: crate::GradSink>(&mut self, loss: TensorId, store: &mut S) {
        assert!(self.grad_enabled, "backward on a no-grad (inference) tape");
        {
            let n = &self.nodes[loss.idx()];
            assert_eq!((n.rows, n.cols), (1, 1), "backward() expects a scalar loss");
            self.grads[loss.idx()][0] += 1.0;
        }
        for i in (0..=loss.idx()).rev() {
            // Take the node's gradient out so input gradients can be
            // borrowed mutably while it is read. Ops are dispatched by
            // reference: payload Vecs (concat lists, gather indices,
            // masks) are never cloned, and because `nodes`, `bufs` and
            // `grads` are separate fields, input values are read
            // straight from `bufs` while `grads` is written — no data
            // clones either.
            let grad = std::mem::take(&mut self.grads[i]);
            if grad.iter().all(|&g| g == 0.0) {
                self.grads[i] = grad;
                continue;
            }
            let (rows, cols) = (self.nodes[i].rows, self.nodes[i].cols);
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Param(pid) => store.accumulate_grad(*pid, &grad),
                &Op::Matmul(a, b) => {
                    let (ar, ak) = self.shape(a);
                    let (_, bc) = self.shape(b);
                    let (ba, bb) = (self.bufi(a), self.bufi(b));
                    kernels::matmul_grad_a(
                        &grad,
                        &self.bufs[bb],
                        &mut self.grads[a.idx()],
                        ar,
                        ak,
                        bc,
                    );
                    kernels::matmul_grad_b(
                        &self.bufs[ba],
                        &grad,
                        &mut self.grads[b.idx()],
                        ar,
                        ak,
                        bc,
                    );
                }
                &Op::Add(a, b) => {
                    add_assign(&mut self.grads[a.idx()], &grad);
                    add_assign(&mut self.grads[b.idx()], &grad);
                }
                &Op::Sub(a, b) => {
                    add_assign(&mut self.grads[a.idx()], &grad);
                    sub_assign(&mut self.grads[b.idx()], &grad);
                }
                &Op::Mul(a, b) => {
                    let (ba, bb) = (self.bufi(a), self.bufi(b));
                    mul_add_assign(&mut self.grads[a.idx()], &grad, &self.bufs[bb]);
                    mul_add_assign(&mut self.grads[b.idx()], &grad, &self.bufs[ba]);
                }
                &Op::AddRow(a, b) => {
                    add_assign(&mut self.grads[a.idx()], &grad);
                    let gb = &mut self.grads[b.idx()];
                    for i2 in 0..rows {
                        for j in 0..cols {
                            gb[j] += grad[i2 * cols + j];
                        }
                    }
                }
                &Op::AddCol(a, b) => {
                    add_assign(&mut self.grads[a.idx()], &grad);
                    let gb = &mut self.grads[b.idx()];
                    for i2 in 0..rows {
                        for j in 0..cols {
                            gb[i2] += grad[i2 * cols + j];
                        }
                    }
                }
                &Op::AddOuter(a, b) => {
                    {
                        let ga = &mut self.grads[a.idx()];
                        for i2 in 0..rows {
                            ga[i2] += grad[i2 * cols..(i2 + 1) * cols].iter().sum::<f32>();
                        }
                    }
                    {
                        let gb = &mut self.grads[b.idx()];
                        for j in 0..cols {
                            for i2 in 0..rows {
                                gb[j] += grad[i2 * cols + j];
                            }
                        }
                    }
                }
                &Op::MulScalarT(a, s) => {
                    let sv = self.bufs[self.bufi(s)][0];
                    for (g, gr) in self.grads[a.idx()].iter_mut().zip(&grad) {
                        *g += gr * sv;
                    }
                    let ba = self.bufi(a);
                    let gs: f32 = grad.iter().zip(&self.bufs[ba]).map(|(g, x)| g * x).sum();
                    self.grads[s.idx()][0] += gs;
                }
                &Op::MulRow(a, b) => {
                    let (ba, bb) = (self.bufi(a), self.bufi(b));
                    {
                        let (ga, db) = (&mut self.grads[a.idx()], &self.bufs[bb]);
                        for i2 in 0..rows {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[i2 * cols + j] * db[j];
                            }
                        }
                    }
                    {
                        let (gb, da) = (&mut self.grads[b.idx()], &self.bufs[ba]);
                        for i2 in 0..rows {
                            for j in 0..cols {
                                gb[j] += grad[i2 * cols + j] * da[i2 * cols + j];
                            }
                        }
                    }
                }
                &Op::Scale(a, k) => {
                    for (g, gr) in self.grads[a.idx()].iter_mut().zip(&grad) {
                        *g += gr * k;
                    }
                }
                &Op::AddScalar(a) => add_assign(&mut self.grads[a.idx()], &grad),
                &Op::Abs(a) => {
                    let ba = self.bufi(a);
                    let (ga, da) = (&mut self.grads[a.idx()], &self.bufs[ba]);
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(da) {
                        *g += gr * if *x >= 0.0 { 1.0 } else { -1.0 };
                    }
                }
                &Op::Relu(a) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(out) {
                        if *o > 0.0 {
                            *g += gr;
                        }
                    }
                }
                &Op::LeakyRelu(a, slope) => {
                    let ba = self.bufi(a);
                    let (ga, da) = (&mut self.grads[a.idx()], &self.bufs[ba]);
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(da) {
                        *g += gr * if *x > 0.0 { 1.0 } else { slope };
                    }
                }
                &Op::Tanh(a) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(out) {
                        *g += gr * (1.0 - o * o);
                    }
                }
                &Op::Sigmoid(a) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(out) {
                        *g += gr * o * (1.0 - o);
                    }
                }
                &Op::Exp(a) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(out) {
                        *g += gr * o;
                    }
                }
                &Op::Ln(a) => {
                    let ba = self.bufi(a);
                    let (ga, da) = (&mut self.grads[a.idx()], &self.bufs[ba]);
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(da) {
                        *g += gr / x;
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut col_off = 0;
                    for &p in parts {
                        let (pr, pc) = self.shape(p);
                        let gp = &mut self.grads[p.idx()];
                        for i2 in 0..pr {
                            for j in 0..pc {
                                gp[i2 * pc + j] += grad[i2 * cols + col_off + j];
                            }
                        }
                        col_off += pc;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut row_off = 0;
                    for &p in parts {
                        let (pr, pc) = self.shape(p);
                        let gp = &mut self.grads[p.idx()];
                        for i2 in 0..pr {
                            for j in 0..pc {
                                gp[i2 * pc + j] += grad[(row_off + i2) * cols + j];
                            }
                        }
                        row_off += pr;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let ga = &mut self.grads[a.idx()];
                    for (k, &src) in indices.iter().enumerate() {
                        for j in 0..cols {
                            ga[src * cols + j] += grad[k * cols + j];
                        }
                    }
                }
                &Op::RepeatRows(a, k) => {
                    let (ar, _) = self.shape(a);
                    let ga = &mut self.grads[a.idx()];
                    for rep in 0..k {
                        for i2 in 0..ar {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[(rep * ar + i2) * cols + j];
                            }
                        }
                    }
                }
                &Op::RepeatInterleaveRows(a, k) => {
                    let (ar, _) = self.shape(a);
                    let ga = &mut self.grads[a.idx()];
                    for i2 in 0..ar {
                        for rep in 0..k {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[(i2 * k + rep) * cols + j];
                            }
                        }
                    }
                }
                &Op::Transpose(a) => {
                    let ga = &mut self.grads[a.idx()];
                    // out is [rows, cols]; a is [cols, rows]
                    for i2 in 0..rows {
                        for j in 0..cols {
                            ga[j * rows + i2] += grad[i2 * cols + j];
                        }
                    }
                }
                &Op::Reshape(a) => add_assign(&mut self.grads[a.idx()], &grad),
                &Op::SumAll(a) => {
                    let g = grad[0];
                    self.grads[a.idx()].iter_mut().for_each(|x| *x += g);
                }
                &Op::MeanAll(a) => {
                    let (ar, ac) = self.shape(a);
                    let g = grad[0] / (ar * ac).max(1) as f32;
                    self.grads[a.idx()].iter_mut().for_each(|x| *x += g);
                }
                &Op::RowSum(a) => {
                    let (_, ac) = self.shape(a);
                    let ga = &mut self.grads[a.idx()];
                    for i2 in 0..rows {
                        for j in 0..ac {
                            ga[i2 * ac + j] += grad[i2];
                        }
                    }
                }
                &Op::RowMean(a) => {
                    let (_, ac) = self.shape(a);
                    let ga = &mut self.grads[a.idx()];
                    for i2 in 0..rows {
                        for j in 0..ac {
                            ga[i2 * ac + j] += grad[i2] / ac as f32;
                        }
                    }
                }
                Op::MaskedSoftmaxRows(a, mask) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for i2 in 0..rows {
                        let p = &out[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let m = &mask[i2 * cols..(i2 + 1) * cols];
                        let dot: f32 = p.iter().zip(g).map(|(pi, gi)| pi * gi).sum();
                        for j in 0..cols {
                            if m[j] {
                                ga[i2 * cols + j] += p[j] * (g[j] - dot);
                            }
                        }
                    }
                }
                Op::MaskedLogSoftmaxRows(a, mask) => {
                    let bo = self.nodes[i].buf as usize;
                    let (ga, out) = (&mut self.grads[a.idx()], &self.bufs[bo]);
                    for i2 in 0..rows {
                        let lp = &out[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let m = &mask[i2 * cols..(i2 + 1) * cols];
                        let gsum: f32 = (0..cols).filter(|&j| m[j]).map(|j| g[j]).sum();
                        for j in 0..cols {
                            if m[j] {
                                ga[i2 * cols + j] += g[j] - lp[j].exp() * gsum;
                            }
                        }
                    }
                }
                Op::PickElements(a, coords) => {
                    let (_, ac) = self.shape(*a);
                    let ga = &mut self.grads[a.idx()];
                    for (k, &(i2, j)) in coords.iter().enumerate() {
                        ga[i2 * ac + j] += grad[k];
                    }
                }
                &Op::LayerNormRows(a, eps) => {
                    let ba = self.bufi(a);
                    let (ga, da) = (&mut self.grads[a.idx()], &self.bufs[ba]);
                    for i2 in 0..rows {
                        let row = &da[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let c = cols as f32;
                        let mean = row.iter().sum::<f32>() / c;
                        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c;
                        let inv = 1.0 / (var + eps).sqrt();
                        let g_mean = g.iter().sum::<f32>() / c;
                        let gx_mean: f32 =
                            row.iter().zip(g).map(|(x, gi)| gi * (x - mean) * inv).sum::<f32>() / c;
                        for j in 0..cols {
                            let xhat = (row[j] - mean) * inv;
                            ga[i2 * cols + j] += inv * (g[j] - g_mean - xhat * gx_mean);
                        }
                    }
                }
            }
            self.grads[i] = grad;
        }
    }
}

// -------------------------------------------------------------------
// free helpers
// -------------------------------------------------------------------

fn add_assign(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn sub_assign(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d -= s;
    }
}

fn mul_add_assign(dst: &mut [f32], g: &[f32], other: &[f32]) {
    for ((d, gi), o) in dst.iter_mut().zip(g).zip(other) {
        *d += gi * o;
    }
}

fn softmax_row(x: &[f32], mask: &[bool], out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (v, &m) in x.iter().zip(mask) {
        if m && *v > max {
            max = *v;
        }
    }
    if max == f32::NEG_INFINITY {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let mut sum = 0.0;
    for ((o, v), &m) in out.iter_mut().zip(x).zip(mask) {
        if m {
            *o = (v - max).exp();
            sum += *o;
        } else {
            *o = 0.0;
        }
    }
    if sum > 0.0 {
        out.iter_mut().for_each(|o| *o /= sum);
    }
}

fn log_softmax_row(x: &[f32], mask: &[bool], out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (v, &m) in x.iter().zip(mask) {
        if m && *v > max {
            max = *v;
        }
    }
    if max == f32::NEG_INFINITY {
        return; // all entries stay -inf
    }
    let mut sum = 0.0f32;
    for (v, &m) in x.iter().zip(mask) {
        if m {
            sum += (v - max).exp();
        }
    }
    let log_z = max + sum.ln();
    for ((o, v), &m) in out.iter_mut().zip(x).zip(mask) {
        if m {
            *o = v - log_z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn matmul_forward() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t.constant(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = t.matmul(a, b);
        assert_eq!(t.shape(c), (2, 2));
        assert_eq!(t.data(c), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A @ B); dL/dA = ones @ B^T, dL/dB = A^T @ ones
        let mut store = ParamStore::new(0);
        let pa = store.add_param("a", 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let pb = store.add_param("b", 2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut t = Tape::new();
        let a = t.param(&store, pa);
        let b = t.param(&store, pb);
        let c = t.matmul(a, b);
        let l = t.sum_all(c);
        t.backward(l, &mut store);
        assert_eq!(store.grad(pa), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(store.grad(pb), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let mask = vec![true, true, false, true, true, true];
        let s = t.masked_softmax_rows(a, &mask);
        let d = t.data(s);
        assert!((d[0] + d[1] - 1.0).abs() < 1e-6);
        assert_eq!(d[2], 0.0, "masked entry must have zero probability");
        assert!((d[3] + d[4] + d[5] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_softmax_row_is_zero() {
        let mut t = Tape::new();
        let a = t.constant(1, 3, vec![1.0, 2.0, 3.0]);
        let s = t.masked_softmax_rows(a, &[false, false, false]);
        assert_eq!(t.data(s), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("logits", 1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        let mut t = Tape::new();
        let logits = t.param(&store, p);
        let mask = [true; 4];
        let loss = t.masked_cross_entropy(logits, &mask, 2);
        t.backward(loss, &mut store);
        // analytic: softmax - onehot
        let mut probs = [0.0f32; 4];
        softmax_row(&[0.1, 0.2, 0.3, 0.4], &mask, &mut probs);
        let expect: Vec<f32> =
            probs.iter().enumerate().map(|(j, pj)| pj - if j == 2 { 1.0 } else { 0.0 }).collect();
        assert!(
            approx_eq_slice(store.grad(p), &expect, 1e-5),
            "{:?} vs {:?}",
            store.grad(p),
            expect
        );
    }

    #[test]
    fn add_outer_forward_backward() {
        let mut store = ParamStore::new(0);
        let pa = store.add_param("a", 2, 1, vec![1.0, 2.0]);
        let pb = store.add_param("b", 3, 1, vec![10.0, 20.0, 30.0]);
        let mut t = Tape::new();
        let a = t.param(&store, pa);
        let b = t.param(&store, pb);
        let o = t.add_outer(a, b);
        assert_eq!(t.data(o), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
        let l = t.sum_all(o);
        t.backward(l, &mut store);
        assert_eq!(store.grad(pa), &[3.0, 3.0]);
        assert_eq!(store.grad(pb), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_rows_scatter_gradient() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("emb", 3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let e = t.param(&store, p);
        let g = t.gather_rows(e, &[2, 0, 2]);
        assert_eq!(t.data(g), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let l = t.sum_all(g);
        t.backward(l, &mut store);
        // row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(store.grad(p), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn layer_norm_rows_zero_mean_unit_var() {
        let mut t = Tape::new();
        let a = t.constant(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let n = t.layer_norm_rows(a, 1e-5);
        let d = t.data(n);
        let mean: f32 = d.iter().sum::<f32>() / 4.0;
        let var: f32 = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn repeat_and_interleave_rows() {
        let mut t = Tape::new();
        let a = t.constant(2, 1, vec![1.0, 2.0]);
        let r = t.repeat_rows(a, 2);
        assert_eq!(t.data(r), &[1.0, 2.0, 1.0, 2.0]);
        let i = t.repeat_interleave_rows(a, 2);
        assert_eq!(t.data(i), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_check_composite_expression() {
        // loss = mean(tanh(X W + b) ⊙ sigmoid(X W + b)) — exercises many ops.
        let mut store = ParamStore::new(3);
        let w = store.add_xavier("w", 3, 4);
        let b = store.add_zeros("b", 1, 4);
        let x_data: Vec<f32> = (0..6).map(|i| (i as f32) / 3.0 - 1.0).collect();

        let forward = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let x = t.constant(2, 3, x_data.clone());
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let h = t.matmul(x, wv);
            let h = t.add_row(h, bv);
            let a = t.tanh(h);
            let s = t.sigmoid(h);
            let m = t.mul(a, s);
            let l = t.mean_all(m);
            t.scalar(l)
        };

        // analytic grads
        let mut t = Tape::new();
        let x = t.constant(2, 3, x_data.clone());
        let wv = t.param(&store, w);
        let bv = t.param(&store, b);
        let h = t.matmul(x, wv);
        let h = t.add_row(h, bv);
        let a = t.tanh(h);
        let s = t.sigmoid(h);
        let m = t.mul(a, s);
        let l = t.mean_all(m);
        store.zero_grad();
        t.backward(l, &mut store);
        let gw = store.grad(w).to_vec();
        let gb = store.grad(b).to_vec();

        let worst_w = crate::grad_check(&mut store, w, &gw, 1e-2, forward);
        let worst_b = crate::grad_check(&mut store, b, &gb, 1e-2, forward);
        assert!(worst_w < 2e-3, "w gradient check failed: {worst_w}");
        assert!(worst_b < 2e-3, "b gradient check failed: {worst_b}");
    }

    #[test]
    fn grad_check_log_softmax_pick() {
        let mut store = ParamStore::new(5);
        let w = store.add_xavier("w", 1, 5);
        let mask = vec![true, true, false, true, true];
        let forward = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let logits = t.param(store, w);
            let loss = t.masked_cross_entropy(logits, &mask, 3);
            t.scalar(loss)
        };
        let mut t = Tape::new();
        let logits = t.param(&store, w);
        let loss = t.masked_cross_entropy(logits, &mask, 3);
        store.zero_grad();
        t.backward(loss, &mut store);
        let g = store.grad(w).to_vec();
        let worst = crate::grad_check(&mut store, w, &g, 1e-2, forward);
        assert!(worst < 2e-3, "log-softmax grad check failed: {worst}");
        assert_eq!(g[2], 0.0, "masked logit must receive no gradient");
    }

    #[test]
    fn mae_mse_losses() {
        let mut t = Tape::new();
        let p = t.constant(2, 1, vec![1.0, 4.0]);
        let y = t.constant(2, 1, vec![2.0, 2.0]);
        let mae = t.mae_loss(p, y);
        let mse = t.mse_loss(p, y);
        assert!((t.scalar(mae) - 1.5).abs() < 1e-6);
        assert!((t.scalar(mse) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t.transpose(a);
        let c = t.transpose(b);
        assert_eq!(t.data(a), t.data(c));
        assert_eq!(t.shape(b), (3, 2));
        assert_eq!(t.data(b), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_shape_panics() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![0.0; 6]);
        let b = t.constant(2, 2, vec![0.0; 4]);
        t.matmul(a, b);
    }

    #[test]
    fn reshape_is_zero_copy_view() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let bufs_before = t.bufs.len();
        let r = t.reshape(a, 3, 2);
        assert_eq!(t.bufs.len(), bufs_before, "reshape must not allocate a buffer");
        assert_eq!(t.shape(r), (3, 2));
        assert_eq!(t.data(r), t.data(a));
    }

    #[test]
    fn reshape_backward_flows_through_view() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("p", 2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let x = t.param(&store, p);
        let v = t.reshape(x, 3, 2);
        let w = t.scale(v, 2.0);
        let l = t.sum_all(w);
        t.backward(l, &mut store);
        assert_eq!(store.grad(p), &[2.0; 6]);
    }

    /// Builds a small expression exercising matmul, broadcast, masked
    /// softmax, gather, reshape and a loss; returns the loss id.
    fn sample_program(t: &mut Tape, store: &ParamStore, w: ParamId, b: ParamId) -> TensorId {
        let x = t.constant(2, 3, vec![0.3, -0.2, 0.9, -1.1, 0.5, 0.4]);
        let wv = t.param(store, w);
        let bv = t.param(store, b);
        let h = t.matmul(x, wv);
        let h = t.add_row(h, bv);
        let h = t.tanh(h);
        let mask = vec![true, false, true, true, true, true, false, true];
        let s = t.masked_softmax_rows(h, &mask);
        let g = t.gather_rows(s, &[1, 0]);
        let v = t.reshape(g, 4, 2);
        let n = t.layer_norm_rows(v, 1e-3);
        t.mean_all(n)
    }

    #[test]
    fn cleared_tape_is_bit_identical_to_fresh_and_reuses_buffers() {
        let mut store = ParamStore::new(11);
        let w = store.add_xavier("w", 3, 4);
        let b = store.add_zeros("b", 1, 4);

        let mut fresh = Tape::new();
        let loss_f = sample_program(&mut fresh, &store, w, b);
        store.zero_grad();
        fresh.backward(loss_f, &mut store);
        let grads_fresh: Vec<u32> =
            store.grad(w).iter().chain(store.grad(b)).map(|g| g.to_bits()).collect();

        // Reused tape: run a *different* program first, clear, rerun.
        let mut reused = Tape::new();
        let warm = reused.constant(5, 7, vec![1.5; 35]);
        let warm_t = reused.transpose(warm);
        let warm2 = reused.matmul(warm, warm_t);
        let warm_l = reused.mean_all(warm2);
        assert!(reused.scalar(warm_l).is_finite());
        reused.clear();
        let loss_r = sample_program(&mut reused, &store, w, b);
        store.zero_grad();
        reused.backward(loss_r, &mut store);
        let grads_reused: Vec<u32> =
            store.grad(w).iter().chain(store.grad(b)).map(|g| g.to_bits()).collect();

        let fb: Vec<u32> = fresh.data(loss_f).iter().map(|x| x.to_bits()).collect();
        let rb: Vec<u32> = reused.data(loss_r).iter().map(|x| x.to_bits()).collect();
        assert_eq!(fb, rb, "forward data must be bit-identical after clear()");
        assert_eq!(grads_fresh, grads_reused, "grads must be bit-identical after clear()");

        // Steady state: rerunning the same program after clear() is
        // served entirely from the pool — zero fresh allocations.
        reused.clear();
        let (_, misses_before) = reused.pool_stats();
        let loss_r2 = sample_program(&mut reused, &store, w, b);
        store.zero_grad();
        reused.backward(loss_r2, &mut store);
        let (hits_after, misses_after) = reused.pool_stats();
        assert!(hits_after > 0, "cleared tape must serve buffers from the pool");
        assert_eq!(misses_before, misses_after, "steady-state rerun must not hit the allocator");
    }

    /// Regression: passes that feed the tape caller-built vectors
    /// (`constant`) push buffers the pool never handed out. The pool
    /// must not accumulate those across `clear()` cycles — unbounded
    /// growth here was a per-request memory leak on long-lived serving
    /// tapes (only a model hot-swap's tape rebuild ever freed it).
    #[test]
    fn pool_stays_bounded_across_passes_with_constant_inputs() {
        let mut store = ParamStore::new(11);
        let w = store.add_xavier("w", 6, 6);
        let mut t = Tape::inference();
        let mut high_water = 0usize;
        for pass in 0..50 {
            t.clear();
            // Two caller-built buffers per pass, plus pooled op outputs.
            let x = t.constant(4, 6, vec![0.25; 24]);
            let y = t.constant(4, 6, vec![1.75; 24]);
            let wp = t.param(&store, w);
            let h = t.matmul(x, wp);
            let s = t.add(h, y);
            let l = t.mean_all(s);
            assert!(t.scalar(l).is_finite());
            if pass == 1 {
                // Bound set by one full pass: nodes + their buffers.
                t.clear();
                high_water = t.pool_len();
            } else if pass > 1 {
                assert!(
                    t.pool_len() <= high_water,
                    "pool grew past one pass's worth of buffers: {} > {high_water} (pass {pass})",
                    t.pool_len(),
                );
            }
        }
        // Pooling still works: a warmed steady state stops allocating.
        let misses_before = t.pool_stats().1;
        t.clear();
        let x = t.constant(4, 6, vec![0.5; 24]);
        let wp = t.param(&store, w);
        let h = t.matmul(x, wp);
        let l = t.mean_all(h);
        assert!(t.scalar(l).is_finite());
        assert_eq!(t.pool_stats().1, misses_before, "warmed pool must still serve allocations");
    }

    #[test]
    fn inference_tape_matches_training_forward_and_allocates_no_grads() {
        let mut store = ParamStore::new(7);
        let w = store.add_xavier("w", 3, 4);
        let b = store.add_zeros("b", 1, 4);
        let mut train = Tape::new();
        let lt = sample_program(&mut train, &store, w, b);
        let mut inf = Tape::inference();
        let li = sample_program(&mut inf, &store, w, b);
        assert_eq!(train.scalar(lt).to_bits(), inf.scalar(li).to_bits());
        assert!(inf.grads.is_empty(), "no-grad tape must not allocate gradient buffers");
        assert!(!inf.is_grad_enabled());
    }

    #[test]
    #[should_panic(expected = "no-grad")]
    fn backward_on_inference_tape_panics() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("p", 1, 1, vec![2.0]);
        let mut t = Tape::inference();
        let x = t.param(&store, p);
        let l = t.sum_all(x);
        t.backward(l, &mut store);
    }
}
