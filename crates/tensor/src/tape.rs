//! The autodiff tape: a flat arena of tensor nodes plus reverse-mode
//! gradient propagation.
//!
//! Every op is a method on [`Tape`] that appends a node and returns a
//! [`TensorId`]. [`Tape::backward`] seeds the gradient of a scalar loss
//! with 1 and walks the arena in reverse, accumulating into each node's
//! gradient buffer and finally into the [`ParamStore`] for `Param` leaves.

use crate::params::{ParamId, ParamStore};

/// Handle to a tensor on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(u32);

impl TensorId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Param(ParamId),
    Matmul(TensorId, TensorId),
    Add(TensorId, TensorId),
    AddRow(TensorId, TensorId),
    AddCol(TensorId, TensorId),
    AddOuter(TensorId, TensorId),
    Sub(TensorId, TensorId),
    Mul(TensorId, TensorId),
    MulScalarT(TensorId, TensorId),
    MulRow(TensorId, TensorId),
    Scale(TensorId, f32),
    AddScalar(TensorId),
    Abs(TensorId),
    Relu(TensorId),
    LeakyRelu(TensorId, f32),
    Tanh(TensorId),
    Sigmoid(TensorId),
    Exp(TensorId),
    Ln(TensorId),
    ConcatCols(Vec<TensorId>),
    ConcatRows(Vec<TensorId>),
    GatherRows(TensorId, Vec<usize>),
    RepeatRows(TensorId, usize),
    RepeatInterleaveRows(TensorId, usize),
    Transpose(TensorId),
    Reshape(TensorId),
    SumAll(TensorId),
    MeanAll(TensorId),
    RowSum(TensorId),
    RowMean(TensorId),
    MaskedSoftmaxRows(TensorId, Vec<bool>),
    MaskedLogSoftmaxRows(TensorId, Vec<bool>),
    PickElements(TensorId, Vec<(usize, usize)>),
    LayerNormRows(TensorId, f32),
}

#[derive(Debug)]
struct Node {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    grad: Vec<f32>,
    op: Op,
}

/// A single forward pass: an append-only arena of tensors and the ops
/// that produced them.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates an empty tape with room for `cap` nodes (hot loops).
    pub fn with_capacity(cap: usize) -> Self {
        Self { nodes: Vec::with_capacity(cap) }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, rows: usize, cols: usize, data: Vec<f32>, op: Op) -> TensorId {
        debug_assert_eq!(data.len(), rows * cols);
        let id = TensorId(self.nodes.len() as u32);
        let grad = vec![0.0; data.len()];
        self.nodes.push(Node { rows, cols, data, grad, op });
        id
    }

    /// Shape of a tensor as `(rows, cols)`.
    pub fn shape(&self, t: TensorId) -> (usize, usize) {
        let n = &self.nodes[t.idx()];
        (n.rows, n.cols)
    }

    /// Read-only view of a tensor's values.
    pub fn data(&self, t: TensorId) -> &[f32] {
        &self.nodes[t.idx()].data
    }

    /// Read-only view of a tensor's gradient (valid after `backward`).
    pub fn grad(&self, t: TensorId) -> &[f32] {
        &self.nodes[t.idx()].grad
    }

    /// The single value of a `[1,1]` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1×1`.
    pub fn scalar(&self, t: TensorId) -> f32 {
        let n = &self.nodes[t.idx()];
        assert_eq!((n.rows, n.cols), (1, 1), "scalar() on a non-1x1 tensor");
        n.data[0]
    }

    // ---------------------------------------------------------------
    // Leaves
    // ---------------------------------------------------------------

    /// Records a constant (non-differentiable-into) input tensor.
    pub fn constant(&mut self, rows: usize, cols: usize, data: Vec<f32>) -> TensorId {
        assert_eq!(data.len(), rows * cols, "constant data length mismatch");
        self.push(rows, cols, data, Op::Leaf)
    }

    /// Records a `[1,1]` constant.
    pub fn scalar_const(&mut self, v: f32) -> TensorId {
        self.push(1, 1, vec![v], Op::Leaf)
    }

    /// Leases a parameter from `store` onto this tape. Gradients flowing
    /// into the returned tensor are accumulated back into the store by
    /// [`Tape::backward`].
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> TensorId {
        let (rows, cols) = store.shape(id);
        self.push(rows, cols, store.data(id).to_vec(), Op::Param(id))
    }

    // ---------------------------------------------------------------
    // Linear algebra
    // ---------------------------------------------------------------

    /// Matrix product `a @ b`: `[r,k] x [k,c] -> [r,c]`.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (ar, ak) = self.shape(a);
        let (bk, bc) = self.shape(b);
        assert_eq!(ak, bk, "matmul inner dim mismatch: [{ar},{ak}] x [{bk},{bc}]");
        let mut out = vec![0.0f32; ar * bc];
        {
            let da = &self.nodes[a.idx()].data;
            let db = &self.nodes[b.idx()].data;
            matmul_into(da, db, &mut out, ar, ak, bc);
        }
        self.push(ar, bc, out, Op::Matmul(a, b))
    }

    /// Transpose `[r,c] -> [c,r]`.
    pub fn transpose(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = da[i * c + j];
            }
        }
        self.push(c, r, out, Op::Transpose(a))
    }

    /// Reinterprets the data with a new shape (`rows*cols` must match).
    pub fn reshape(&mut self, a: TensorId, rows: usize, cols: usize) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(r * c, rows * cols, "reshape element count mismatch");
        let data = self.nodes[a.idx()].data.clone();
        self.push(rows, cols, data, Op::Reshape(a))
    }

    // ---------------------------------------------------------------
    // Elementwise arithmetic
    // ---------------------------------------------------------------

    fn binary_same_shape(&mut self, a: TensorId, b: TensorId, op_name: &str) -> (usize, usize) {
        let sa = self.shape(a);
        let sb = self.shape(b);
        assert_eq!(sa, sb, "{op_name} shape mismatch: {sa:?} vs {sb:?}");
        sa
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.binary_same_shape(a, b, "add");
        let out = zip_map(&self.nodes[a.idx()].data, &self.nodes[b.idx()].data, |x, y| x + y);
        self.push(r, c, out, Op::Add(a, b))
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.binary_same_shape(a, b, "sub");
        let out = zip_map(&self.nodes[a.idx()].data, &self.nodes[b.idx()].data, |x, y| x - y);
        self.push(r, c, out, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.binary_same_shape(a, b, "mul");
        let out = zip_map(&self.nodes[a.idx()].data, &self.nodes[b.idx()].data, |x, y| x * y);
        self.push(r, c, out, Op::Mul(a, b))
    }

    /// Broadcast add of a row vector: `[r,c] + [1,c]`.
    #[allow(clippy::needless_range_loop)] // explicit i,j indexing matches the math
    pub fn add_row(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (1, c), "add_row expects [1,{c}], got [{br},{bc}]");
        let da = &self.nodes[a.idx()].data;
        let db = &self.nodes[b.idx()].data;
        let mut out = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] + db[j]);
            }
        }
        self.push(r, c, out, Op::AddRow(a, b))
    }

    /// Broadcast add of a column vector: `[r,c] + [r,1]`.
    pub fn add_col(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (r, 1), "add_col expects [{r},1], got [{br},{bc}]");
        let da = &self.nodes[a.idx()].data;
        let db = &self.nodes[b.idx()].data;
        let mut out = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] + db[i]);
            }
        }
        self.push(r, c, out, Op::AddCol(a, b))
    }

    /// Outer sum of two column vectors: `a [r,1] ⊕ b [c,1] -> [r,c]`,
    /// `out[i][j] = a[i] + b[j]`. This is how pairwise attention logits
    /// (`a_left·h_i + a_right·h_j`) are vectorised.
    pub fn add_outer(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, ac) = self.shape(a);
        let (c, bc) = self.shape(b);
        assert_eq!(ac, 1, "add_outer lhs must be a column vector");
        assert_eq!(bc, 1, "add_outer rhs must be a column vector");
        let da = &self.nodes[a.idx()].data;
        let db = &self.nodes[b.idx()].data;
        let mut out = Vec::with_capacity(r * c);
        for &ai in da.iter().take(r) {
            for &bj in db.iter().take(c) {
                out.push(ai + bj);
            }
        }
        self.push(r, c, out, Op::AddOuter(a, b))
    }

    /// Multiplies every element of `a` by a learnable `[1,1]` scalar `s`.
    pub fn mul_scalar_t(&mut self, a: TensorId, s: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(self.shape(s), (1, 1), "mul_scalar_t scale must be 1x1");
        let sv = self.nodes[s.idx()].data[0];
        let out = self.nodes[a.idx()].data.iter().map(|x| x * sv).collect();
        self.push(r, c, out, Op::MulScalarT(a, s))
    }

    /// Broadcast elementwise multiply by a row vector: `[r,c] * [1,c]`
    /// (layer-norm gain, feature gates).
    pub fn mul_row(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let (br, bc) = self.shape(b);
        assert_eq!((br, bc), (1, c), "mul_row expects [1,{c}], got [{br},{bc}]");
        let da = &self.nodes[a.idx()].data;
        let db = &self.nodes[b.idx()].data;
        let mut out = Vec::with_capacity(r * c);
        for i in 0..r {
            for j in 0..c {
                out.push(da[i * c + j] * db[j]);
            }
        }
        self.push(r, c, out, Op::MulRow(a, b))
    }

    /// Multiplies by a compile-time constant.
    pub fn scale(&mut self, a: TensorId, k: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let out = self.nodes[a.idx()].data.iter().map(|x| x * k).collect();
        self.push(r, c, out, Op::Scale(a, k))
    }

    /// Adds a compile-time constant to every element.
    pub fn add_scalar(&mut self, a: TensorId, k: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let out = self.nodes[a.idx()].data.iter().map(|x| x + k).collect();
        self.push(r, c, out, Op::AddScalar(a))
    }

    /// Elementwise negation (`scale(a, -1)`).
    pub fn neg(&mut self, a: TensorId) -> TensorId {
        self.scale(a, -1.0)
    }

    // ---------------------------------------------------------------
    // Activations and pointwise nonlinearities
    // ---------------------------------------------------------------

    fn unary(&mut self, a: TensorId, op: Op, f: impl Fn(f32) -> f32) -> TensorId {
        let (r, c) = self.shape(a);
        let out = self.nodes[a.idx()].data.iter().map(|&x| f(x)).collect();
        self.push(r, c, out, op)
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Abs(a), f32::abs)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Relu(a), |x| x.max(0.0))
    }

    /// Elementwise LeakyReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: TensorId, slope: f32) -> TensorId {
        self.unary(a, Op::LeakyRelu(a, slope), move |x| if x > 0.0 { x } else { slope * x })
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Tanh(a), f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Sigmoid(a), |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Exp(a), f32::exp)
    }

    /// Elementwise natural logarithm. Inputs must be strictly positive.
    pub fn ln(&mut self, a: TensorId) -> TensorId {
        self.unary(a, Op::Ln(a), f32::ln)
    }

    // ---------------------------------------------------------------
    // Structural ops
    // ---------------------------------------------------------------

    /// Concatenates tensors with equal row counts along the column axis.
    pub fn concat_cols(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let (r, _) = self.shape(parts[0]);
        let total_c: usize = parts
            .iter()
            .map(|&p| {
                let (pr, pc) = self.shape(p);
                assert_eq!(pr, r, "concat_cols row mismatch");
                pc
            })
            .sum();
        let mut out = Vec::with_capacity(r * total_c);
        for i in 0..r {
            for &p in parts {
                let (_, pc) = self.shape(p);
                let d = &self.nodes[p.idx()].data;
                out.extend_from_slice(&d[i * pc..(i + 1) * pc]);
            }
        }
        self.push(r, total_c, out, Op::ConcatCols(parts.to_vec()))
    }

    /// Concatenates tensors with equal column counts along the row axis.
    pub fn concat_rows(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let (_, c) = self.shape(parts[0]);
        let total_r: usize = parts
            .iter()
            .map(|&p| {
                let (pr, pc) = self.shape(p);
                assert_eq!(pc, c, "concat_rows column mismatch");
                pr
            })
            .sum();
        let mut out = Vec::with_capacity(total_r * c);
        for &p in parts {
            out.extend_from_slice(&self.nodes[p.idx()].data);
        }
        self.push(total_r, c, out, Op::ConcatRows(parts.to_vec()))
    }

    /// Gathers rows of `a` by index (rows may repeat — embedding lookup,
    /// route-ordered re-sorting for the SortLSTM).
    pub fn gather_rows(&mut self, a: TensorId, indices: &[usize]) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = Vec::with_capacity(indices.len() * c);
        for &i in indices {
            assert!(i < r, "gather_rows index {i} out of bounds for {r} rows");
            out.extend_from_slice(&da[i * c..(i + 1) * c]);
        }
        self.push(indices.len(), c, out, Op::GatherRows(a, indices.to_vec()))
    }

    /// Extracts a single row as a `[1,c]` tensor.
    pub fn row(&mut self, a: TensorId, i: usize) -> TensorId {
        self.gather_rows(a, &[i])
    }

    /// Tiles the whole matrix `k` times vertically: `[r,c] -> [k*r,c]`.
    pub fn repeat_rows(&mut self, a: TensorId, k: usize) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = Vec::with_capacity(k * r * c);
        for _ in 0..k {
            out.extend_from_slice(da);
        }
        self.push(k * r, c, out, Op::RepeatRows(a, k))
    }

    /// Repeats each row `k` times consecutively: `[r,c] -> [r*k,c]`.
    pub fn repeat_interleave_rows(&mut self, a: TensorId, k: usize) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = Vec::with_capacity(k * r * c);
        for i in 0..r {
            for _ in 0..k {
                out.extend_from_slice(&da[i * c..(i + 1) * c]);
            }
        }
        self.push(r * k, c, out, Op::RepeatInterleaveRows(a, k))
    }

    // ---------------------------------------------------------------
    // Reductions
    // ---------------------------------------------------------------

    /// Sum of all elements -> `[1,1]`.
    pub fn sum_all(&mut self, a: TensorId) -> TensorId {
        let s: f32 = self.nodes[a.idx()].data.iter().sum();
        self.push(1, 1, vec![s], Op::SumAll(a))
    }

    /// Mean of all elements -> `[1,1]`.
    pub fn mean_all(&mut self, a: TensorId) -> TensorId {
        let n = self.nodes[a.idx()].data.len().max(1);
        let s: f32 = self.nodes[a.idx()].data.iter().sum();
        self.push(1, 1, vec![s / n as f32], Op::MeanAll(a))
    }

    /// Per-row sum: `[r,c] -> [r,1]`.
    pub fn row_sum(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let out = (0..r).map(|i| da[i * c..(i + 1) * c].iter().sum()).collect();
        self.push(r, 1, out, Op::RowSum(a))
    }

    /// Per-row mean: `[r,c] -> [r,1]`.
    pub fn row_mean(&mut self, a: TensorId) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let out = (0..r).map(|i| da[i * c..(i + 1) * c].iter().sum::<f32>() / c as f32).collect();
        self.push(r, 1, out, Op::RowMean(a))
    }

    // ---------------------------------------------------------------
    // Softmax family
    // ---------------------------------------------------------------

    /// Row-wise softmax over the entries where `mask` is `true`; masked
    /// entries get probability 0. A fully masked row yields all zeros.
    ///
    /// `mask.len()` must equal `rows*cols`. This single op covers both
    /// graph-attention (adjacency mask) and pointer decoding
    /// (visited-node mask).
    pub fn masked_softmax_rows(&mut self, a: TensorId, mask: &[bool]) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(mask.len(), r * c, "mask length mismatch");
        let da = &self.nodes[a.idx()].data;
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            softmax_row(
                &da[i * c..(i + 1) * c],
                &mask[i * c..(i + 1) * c],
                &mut out[i * c..(i + 1) * c],
            );
        }
        self.push(r, c, out, Op::MaskedSoftmaxRows(a, mask.to_vec()))
    }

    /// Row-wise log-softmax over unmasked entries; masked entries are set
    /// to `f32::NEG_INFINITY` in the output but receive zero gradient.
    /// Use with [`Tape::pick_elements`] for numerically stable
    /// cross-entropy.
    pub fn masked_log_softmax_rows(&mut self, a: TensorId, mask: &[bool]) -> TensorId {
        let (r, c) = self.shape(a);
        assert_eq!(mask.len(), r * c, "mask length mismatch");
        let da = &self.nodes[a.idx()].data;
        let mut out = vec![f32::NEG_INFINITY; r * c];
        for i in 0..r {
            log_softmax_row(
                &da[i * c..(i + 1) * c],
                &mask[i * c..(i + 1) * c],
                &mut out[i * c..(i + 1) * c],
            );
        }
        self.push(r, c, out, Op::MaskedLogSoftmaxRows(a, mask.to_vec()))
    }

    /// Picks elements `(row, col)` into a `[k,1]` column vector.
    pub fn pick_elements(&mut self, a: TensorId, coords: &[(usize, usize)]) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = Vec::with_capacity(coords.len());
        for &(i, j) in coords {
            assert!(i < r && j < c, "pick_elements ({i},{j}) out of bounds [{r},{c}]");
            out.push(da[i * c + j]);
        }
        self.push(coords.len(), 1, out, Op::PickElements(a, coords.to_vec()))
    }

    /// Row-wise layer normalisation (zero mean, unit variance per row).
    /// Affine gain/bias, when wanted, are applied with [`Tape::mul_row`] /
    /// [`Tape::add_row`] on `[1,c]` parameters.
    pub fn layer_norm_rows(&mut self, a: TensorId, eps: f32) -> TensorId {
        let (r, c) = self.shape(a);
        let da = &self.nodes[a.idx()].data;
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            let row = &da[i * c..(i + 1) * c];
            let mean = row.iter().sum::<f32>() / c as f32;
            let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for j in 0..c {
                out[i * c + j] = (row[j] - mean) * inv;
            }
        }
        self.push(r, c, out, Op::LayerNormRows(a, eps))
    }

    // ---------------------------------------------------------------
    // Loss helpers
    // ---------------------------------------------------------------

    /// Mean absolute error between `pred` and `target` (same shape) ->
    /// `[1,1]`. Used for the time losses (Eqs. 39–40 of the paper).
    pub fn mae_loss(&mut self, pred: TensorId, target: TensorId) -> TensorId {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean_all(a)
    }

    /// Mean squared error -> `[1,1]`.
    pub fn mse_loss(&mut self, pred: TensorId, target: TensorId) -> TensorId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean_all(sq)
    }

    /// Cross-entropy of a single decoding step: `-log softmax(logits)[target]`
    /// restricted to unmasked candidates. `logits` is `[1,c]`.
    pub fn masked_cross_entropy(
        &mut self,
        logits: TensorId,
        mask: &[bool],
        target: usize,
    ) -> TensorId {
        let (r, c) = self.shape(logits);
        assert_eq!(r, 1, "masked_cross_entropy expects [1,c] logits");
        assert!(target < c && mask[target], "cross-entropy target must be an unmasked candidate");
        let logp = self.masked_log_softmax_rows(logits, mask);
        let picked = self.pick_elements(logp, &[(0, target)]);
        self.scale(picked, -1.0)
    }

    // ---------------------------------------------------------------
    // Backward
    // ---------------------------------------------------------------

    /// Reverse-mode gradient propagation from scalar `loss` (must be
    /// `[1,1]`). Parameter gradients are **accumulated** into `store`
    /// (call [`ParamStore::zero_grad`] when starting a new step).
    pub fn backward(&mut self, loss: TensorId, store: &mut ParamStore) {
        self.backward_into(loss, store);
    }

    /// Like [`Tape::backward`], but accumulates parameter gradients
    /// into any [`GradSink`] — a worker-local
    /// [`crate::GradBuffer`] in data-parallel training, or the
    /// [`ParamStore`] itself. The propagation itself is identical;
    /// only the destination of `Op::Param` gradients differs.
    pub fn backward_into<S: crate::GradSink>(&mut self, loss: TensorId, store: &mut S) {
        {
            let n = &mut self.nodes[loss.idx()];
            assert_eq!((n.rows, n.cols), (1, 1), "backward() expects a scalar loss");
            n.grad[0] += 1.0;
        }
        for i in (0..=loss.idx()).rev() {
            // Split borrows: take the node's grad out, push into inputs.
            let op = self.nodes[i].op.clone();
            let grad = std::mem::take(&mut self.nodes[i].grad);
            if grad.iter().all(|&g| g == 0.0) {
                self.nodes[i].grad = grad;
                continue;
            }
            let (rows, cols) = (self.nodes[i].rows, self.nodes[i].cols);
            match op {
                Op::Leaf => {}
                Op::Param(pid) => store.accumulate_grad(pid, &grad),
                Op::Matmul(a, b) => {
                    let (ar, ak) = self.shape(a);
                    let (_, bc) = self.shape(b);
                    // gA += G @ B^T
                    let db = self.nodes[b.idx()].data.clone();
                    let da = self.nodes[a.idx()].data.clone();
                    {
                        let ga = &mut self.nodes[a.idx()].grad;
                        for i2 in 0..ar {
                            for j in 0..bc {
                                let g = grad[i2 * bc + j];
                                if g != 0.0 {
                                    for k in 0..ak {
                                        ga[i2 * ak + k] += g * db[k * bc + j];
                                    }
                                }
                            }
                        }
                    }
                    // gB += A^T @ G
                    {
                        let gb = &mut self.nodes[b.idx()].grad;
                        for i2 in 0..ar {
                            for k in 0..ak {
                                let av = da[i2 * ak + k];
                                if av != 0.0 {
                                    for j in 0..bc {
                                        gb[k * bc + j] += av * grad[i2 * bc + j];
                                    }
                                }
                            }
                        }
                    }
                }
                Op::Add(a, b) => {
                    add_assign(&mut self.nodes[a.idx()].grad, &grad);
                    add_assign(&mut self.nodes[b.idx()].grad, &grad);
                }
                Op::Sub(a, b) => {
                    add_assign(&mut self.nodes[a.idx()].grad, &grad);
                    sub_assign(&mut self.nodes[b.idx()].grad, &grad);
                }
                Op::Mul(a, b) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let db = self.nodes[b.idx()].data.clone();
                    mul_add_assign(&mut self.nodes[a.idx()].grad, &grad, &db);
                    mul_add_assign(&mut self.nodes[b.idx()].grad, &grad, &da);
                }
                Op::AddRow(a, b) => {
                    add_assign(&mut self.nodes[a.idx()].grad, &grad);
                    let gb = &mut self.nodes[b.idx()].grad;
                    for i2 in 0..rows {
                        for j in 0..cols {
                            gb[j] += grad[i2 * cols + j];
                        }
                    }
                }
                Op::AddCol(a, b) => {
                    add_assign(&mut self.nodes[a.idx()].grad, &grad);
                    let gb = &mut self.nodes[b.idx()].grad;
                    for i2 in 0..rows {
                        for j in 0..cols {
                            gb[i2] += grad[i2 * cols + j];
                        }
                    }
                }
                Op::AddOuter(a, b) => {
                    {
                        let ga = &mut self.nodes[a.idx()].grad;
                        for i2 in 0..rows {
                            ga[i2] += grad[i2 * cols..(i2 + 1) * cols].iter().sum::<f32>();
                        }
                    }
                    {
                        let gb = &mut self.nodes[b.idx()].grad;
                        for j in 0..cols {
                            for i2 in 0..rows {
                                gb[j] += grad[i2 * cols + j];
                            }
                        }
                    }
                }
                Op::MulScalarT(a, s) => {
                    let sv = self.nodes[s.idx()].data[0];
                    let da = self.nodes[a.idx()].data.clone();
                    {
                        let ga = &mut self.nodes[a.idx()].grad;
                        for (g, gr) in ga.iter_mut().zip(&grad) {
                            *g += gr * sv;
                        }
                    }
                    let gs: f32 = grad.iter().zip(&da).map(|(g, x)| g * x).sum();
                    self.nodes[s.idx()].grad[0] += gs;
                }
                Op::MulRow(a, b) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let db = self.nodes[b.idx()].data.clone();
                    {
                        let ga = &mut self.nodes[a.idx()].grad;
                        for i2 in 0..rows {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[i2 * cols + j] * db[j];
                            }
                        }
                    }
                    {
                        let gb = &mut self.nodes[b.idx()].grad;
                        for i2 in 0..rows {
                            for j in 0..cols {
                                gb[j] += grad[i2 * cols + j] * da[i2 * cols + j];
                            }
                        }
                    }
                }
                Op::Scale(a, k) => {
                    let ga = &mut self.nodes[a.idx()].grad;
                    for (g, gr) in ga.iter_mut().zip(&grad) {
                        *g += gr * k;
                    }
                }
                Op::AddScalar(a) => add_assign(&mut self.nodes[a.idx()].grad, &grad),
                Op::Abs(a) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(&da) {
                        *g += gr * if *x >= 0.0 { 1.0 } else { -1.0 };
                    }
                }
                Op::Relu(a) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(&out) {
                        if *o > 0.0 {
                            *g += gr;
                        }
                    }
                }
                Op::LeakyRelu(a, slope) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(&da) {
                        *g += gr * if *x > 0.0 { 1.0 } else { slope };
                    }
                }
                Op::Tanh(a) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(&out) {
                        *g += gr * (1.0 - o * o);
                    }
                }
                Op::Sigmoid(a) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(&out) {
                        *g += gr * o * (1.0 - o);
                    }
                }
                Op::Exp(a) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), o) in ga.iter_mut().zip(&grad).zip(&out) {
                        *g += gr * o;
                    }
                }
                Op::Ln(a) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for ((g, gr), x) in ga.iter_mut().zip(&grad).zip(&da) {
                        *g += gr / x;
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut col_off = 0;
                    for p in parts {
                        let (pr, pc) = self.shape(p);
                        let gp = &mut self.nodes[p.idx()].grad;
                        for i2 in 0..pr {
                            for j in 0..pc {
                                gp[i2 * pc + j] += grad[i2 * cols + col_off + j];
                            }
                        }
                        col_off += pc;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut row_off = 0;
                    for p in parts {
                        let (pr, pc) = self.shape(p);
                        let gp = &mut self.nodes[p.idx()].grad;
                        for i2 in 0..pr {
                            for j in 0..pc {
                                gp[i2 * pc + j] += grad[(row_off + i2) * cols + j];
                            }
                        }
                        row_off += pr;
                    }
                }
                Op::GatherRows(a, indices) => {
                    let ga = &mut self.nodes[a.idx()].grad;
                    for (k, &src) in indices.iter().enumerate() {
                        for j in 0..cols {
                            ga[src * cols + j] += grad[k * cols + j];
                        }
                    }
                }
                Op::RepeatRows(a, k) => {
                    let (ar, _) = self.shape(a);
                    let ga = &mut self.nodes[a.idx()].grad;
                    for rep in 0..k {
                        for i2 in 0..ar {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[(rep * ar + i2) * cols + j];
                            }
                        }
                    }
                }
                Op::RepeatInterleaveRows(a, k) => {
                    let (ar, _) = self.shape(a);
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..ar {
                        for rep in 0..k {
                            for j in 0..cols {
                                ga[i2 * cols + j] += grad[(i2 * k + rep) * cols + j];
                            }
                        }
                    }
                }
                Op::Transpose(a) => {
                    let ga = &mut self.nodes[a.idx()].grad;
                    // out is [rows, cols]; a is [cols, rows]
                    for i2 in 0..rows {
                        for j in 0..cols {
                            ga[j * rows + i2] += grad[i2 * cols + j];
                        }
                    }
                }
                Op::Reshape(a) => add_assign(&mut self.nodes[a.idx()].grad, &grad),
                Op::SumAll(a) => {
                    let g = grad[0];
                    let ga = &mut self.nodes[a.idx()].grad;
                    ga.iter_mut().for_each(|x| *x += g);
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a.idx()].data.len().max(1);
                    let g = grad[0] / n as f32;
                    let ga = &mut self.nodes[a.idx()].grad;
                    ga.iter_mut().for_each(|x| *x += g);
                }
                Op::RowSum(a) => {
                    let (_, ac) = self.shape(a);
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..rows {
                        for j in 0..ac {
                            ga[i2 * ac + j] += grad[i2];
                        }
                    }
                }
                Op::RowMean(a) => {
                    let (_, ac) = self.shape(a);
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..rows {
                        for j in 0..ac {
                            ga[i2 * ac + j] += grad[i2] / ac as f32;
                        }
                    }
                }
                Op::MaskedSoftmaxRows(a, mask) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..rows {
                        let p = &out[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let m = &mask[i2 * cols..(i2 + 1) * cols];
                        let dot: f32 = p.iter().zip(g).map(|(pi, gi)| pi * gi).sum();
                        for j in 0..cols {
                            if m[j] {
                                ga[i2 * cols + j] += p[j] * (g[j] - dot);
                            }
                        }
                    }
                }
                Op::MaskedLogSoftmaxRows(a, mask) => {
                    let out = self.nodes[i].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..rows {
                        let lp = &out[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let m = &mask[i2 * cols..(i2 + 1) * cols];
                        let gsum: f32 = (0..cols).filter(|&j| m[j]).map(|j| g[j]).sum();
                        for j in 0..cols {
                            if m[j] {
                                ga[i2 * cols + j] += g[j] - lp[j].exp() * gsum;
                            }
                        }
                    }
                }
                Op::PickElements(a, coords) => {
                    let (_, ac) = self.shape(a);
                    let ga = &mut self.nodes[a.idx()].grad;
                    for (k, &(i2, j)) in coords.iter().enumerate() {
                        ga[i2 * ac + j] += grad[k];
                    }
                }
                Op::LayerNormRows(a, eps) => {
                    let da = self.nodes[a.idx()].data.clone();
                    let ga = &mut self.nodes[a.idx()].grad;
                    for i2 in 0..rows {
                        let row = &da[i2 * cols..(i2 + 1) * cols];
                        let g = &grad[i2 * cols..(i2 + 1) * cols];
                        let c = cols as f32;
                        let mean = row.iter().sum::<f32>() / c;
                        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / c;
                        let inv = 1.0 / (var + eps).sqrt();
                        let g_mean = g.iter().sum::<f32>() / c;
                        let gx_mean: f32 =
                            row.iter().zip(g).map(|(x, gi)| gi * (x - mean) * inv).sum::<f32>() / c;
                        for j in 0..cols {
                            let xhat = (row[j] - mean) * inv;
                            ga[i2 * cols + j] += inv * (g[j] - g_mean - xhat * gx_mean);
                        }
                    }
                }
            }
            self.nodes[i].grad = grad;
        }
    }
}

// -------------------------------------------------------------------
// free helpers
// -------------------------------------------------------------------

fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) {
    // i-k-j loop order: streams through b and out rows, good locality.
    for i in 0..r {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * c..(i + 1) * c];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                let brow = &b[kk * c..(kk + 1) * c];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

fn zip_map(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32) -> Vec<f32> {
    a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
}

fn add_assign(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn sub_assign(dst: &mut [f32], src: &[f32]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d -= s;
    }
}

fn mul_add_assign(dst: &mut [f32], g: &[f32], other: &[f32]) {
    for ((d, gi), o) in dst.iter_mut().zip(g).zip(other) {
        *d += gi * o;
    }
}

fn softmax_row(x: &[f32], mask: &[bool], out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (v, &m) in x.iter().zip(mask) {
        if m && *v > max {
            max = *v;
        }
    }
    if max == f32::NEG_INFINITY {
        out.iter_mut().for_each(|o| *o = 0.0);
        return;
    }
    let mut sum = 0.0;
    for ((o, v), &m) in out.iter_mut().zip(x).zip(mask) {
        if m {
            *o = (v - max).exp();
            sum += *o;
        } else {
            *o = 0.0;
        }
    }
    if sum > 0.0 {
        out.iter_mut().for_each(|o| *o /= sum);
    }
}

fn log_softmax_row(x: &[f32], mask: &[bool], out: &mut [f32]) {
    let mut max = f32::NEG_INFINITY;
    for (v, &m) in x.iter().zip(mask) {
        if m && *v > max {
            max = *v;
        }
    }
    if max == f32::NEG_INFINITY {
        return; // all entries stay -inf
    }
    let mut sum = 0.0f32;
    for (v, &m) in x.iter().zip(mask) {
        if m {
            sum += (v - max).exp();
        }
    }
    let log_z = max + sum.ln();
    for ((o, v), &m) in out.iter_mut().zip(x).zip(mask) {
        if m {
            *o = v - log_z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn matmul_forward() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t.constant(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = t.matmul(a, b);
        assert_eq!(t.shape(c), (2, 2));
        assert_eq!(t.data(c), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A @ B); dL/dA = ones @ B^T, dL/dB = A^T @ ones
        let mut store = ParamStore::new(0);
        let pa = store.add_param("a", 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let pb = store.add_param("b", 2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut t = Tape::new();
        let a = t.param(&store, pa);
        let b = t.param(&store, pb);
        let c = t.matmul(a, b);
        let l = t.sum_all(c);
        t.backward(l, &mut store);
        assert_eq!(store.grad(pa), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(store.grad(pb), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let mask = vec![true, true, false, true, true, true];
        let s = t.masked_softmax_rows(a, &mask);
        let d = t.data(s);
        assert!((d[0] + d[1] - 1.0).abs() < 1e-6);
        assert_eq!(d[2], 0.0, "masked entry must have zero probability");
        assert!((d[3] + d[4] + d[5] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fully_masked_softmax_row_is_zero() {
        let mut t = Tape::new();
        let a = t.constant(1, 3, vec![1.0, 2.0, 3.0]);
        let s = t.masked_softmax_rows(a, &[false, false, false]);
        assert_eq!(t.data(s), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("logits", 1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        let mut t = Tape::new();
        let logits = t.param(&store, p);
        let mask = [true; 4];
        let loss = t.masked_cross_entropy(logits, &mask, 2);
        t.backward(loss, &mut store);
        // analytic: softmax - onehot
        let mut probs = [0.0f32; 4];
        softmax_row(&[0.1, 0.2, 0.3, 0.4], &mask, &mut probs);
        let expect: Vec<f32> =
            probs.iter().enumerate().map(|(j, pj)| pj - if j == 2 { 1.0 } else { 0.0 }).collect();
        assert!(
            approx_eq_slice(store.grad(p), &expect, 1e-5),
            "{:?} vs {:?}",
            store.grad(p),
            expect
        );
    }

    #[test]
    fn add_outer_forward_backward() {
        let mut store = ParamStore::new(0);
        let pa = store.add_param("a", 2, 1, vec![1.0, 2.0]);
        let pb = store.add_param("b", 3, 1, vec![10.0, 20.0, 30.0]);
        let mut t = Tape::new();
        let a = t.param(&store, pa);
        let b = t.param(&store, pb);
        let o = t.add_outer(a, b);
        assert_eq!(t.data(o), &[11.0, 21.0, 31.0, 12.0, 22.0, 32.0]);
        let l = t.sum_all(o);
        t.backward(l, &mut store);
        assert_eq!(store.grad(pa), &[3.0, 3.0]);
        assert_eq!(store.grad(pb), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_rows_scatter_gradient() {
        let mut store = ParamStore::new(0);
        let p = store.add_param("emb", 3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut t = Tape::new();
        let e = t.param(&store, p);
        let g = t.gather_rows(e, &[2, 0, 2]);
        assert_eq!(t.data(g), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let l = t.sum_all(g);
        t.backward(l, &mut store);
        // row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(store.grad(p), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn layer_norm_rows_zero_mean_unit_var() {
        let mut t = Tape::new();
        let a = t.constant(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let n = t.layer_norm_rows(a, 1e-5);
        let d = t.data(n);
        let mean: f32 = d.iter().sum::<f32>() / 4.0;
        let var: f32 = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn repeat_and_interleave_rows() {
        let mut t = Tape::new();
        let a = t.constant(2, 1, vec![1.0, 2.0]);
        let r = t.repeat_rows(a, 2);
        assert_eq!(t.data(r), &[1.0, 2.0, 1.0, 2.0]);
        let i = t.repeat_interleave_rows(a, 2);
        assert_eq!(t.data(i), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn grad_check_composite_expression() {
        // loss = mean(tanh(X W + b) ⊙ sigmoid(X W + b)) — exercises many ops.
        let mut store = ParamStore::new(3);
        let w = store.add_xavier("w", 3, 4);
        let b = store.add_zeros("b", 1, 4);
        let x_data: Vec<f32> = (0..6).map(|i| (i as f32) / 3.0 - 1.0).collect();

        let forward = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let x = t.constant(2, 3, x_data.clone());
            let wv = t.param(store, w);
            let bv = t.param(store, b);
            let h = t.matmul(x, wv);
            let h = t.add_row(h, bv);
            let a = t.tanh(h);
            let s = t.sigmoid(h);
            let m = t.mul(a, s);
            let l = t.mean_all(m);
            t.scalar(l)
        };

        // analytic grads
        let mut t = Tape::new();
        let x = t.constant(2, 3, x_data.clone());
        let wv = t.param(&store, w);
        let bv = t.param(&store, b);
        let h = t.matmul(x, wv);
        let h = t.add_row(h, bv);
        let a = t.tanh(h);
        let s = t.sigmoid(h);
        let m = t.mul(a, s);
        let l = t.mean_all(m);
        store.zero_grad();
        t.backward(l, &mut store);
        let gw = store.grad(w).to_vec();
        let gb = store.grad(b).to_vec();

        let worst_w = crate::grad_check(&mut store, w, &gw, 1e-2, forward);
        let worst_b = crate::grad_check(&mut store, b, &gb, 1e-2, forward);
        assert!(worst_w < 2e-3, "w gradient check failed: {worst_w}");
        assert!(worst_b < 2e-3, "b gradient check failed: {worst_b}");
    }

    #[test]
    fn grad_check_log_softmax_pick() {
        let mut store = ParamStore::new(5);
        let w = store.add_xavier("w", 1, 5);
        let mask = vec![true, true, false, true, true];
        let forward = |store: &ParamStore| -> f32 {
            let mut t = Tape::new();
            let logits = t.param(store, w);
            let loss = t.masked_cross_entropy(logits, &mask, 3);
            t.scalar(loss)
        };
        let mut t = Tape::new();
        let logits = t.param(&store, w);
        let loss = t.masked_cross_entropy(logits, &mask, 3);
        store.zero_grad();
        t.backward(loss, &mut store);
        let g = store.grad(w).to_vec();
        let worst = crate::grad_check(&mut store, w, &g, 1e-2, forward);
        assert!(worst < 2e-3, "log-softmax grad check failed: {worst}");
        assert_eq!(g[2], 0.0, "masked logit must receive no gradient");
    }

    #[test]
    fn mae_mse_losses() {
        let mut t = Tape::new();
        let p = t.constant(2, 1, vec![1.0, 4.0]);
        let y = t.constant(2, 1, vec![2.0, 2.0]);
        let mae = t.mae_loss(p, y);
        let mse = t.mse_loss(p, y);
        assert!((t.scalar(mae) - 1.5).abs() < 1e-6);
        assert!((t.scalar(mse) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t.transpose(a);
        let c = t.transpose(b);
        assert_eq!(t.data(a), t.data(c));
        assert_eq!(t.shape(b), (3, 2));
        assert_eq!(t.data(b), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner dim mismatch")]
    fn matmul_shape_panics() {
        let mut t = Tape::new();
        let a = t.constant(2, 3, vec![0.0; 6]);
        let b = t.constant(2, 2, vec![0.0; 4]);
        t.matmul(a, b);
    }
}
