//! # rtp-tensor
//!
//! A small, self-contained, tape-based reverse-mode automatic
//! differentiation engine for CPU `f32` tensors.
//!
//! This crate is the deep-learning substrate of the M²G4RTP reproduction:
//! the paper trains its models with PyTorch on GPUs, which is unavailable
//! here, so every neural model in the workspace (M²G4RTP itself plus the
//! DeepRoute / FDNET / Graph2Route baselines) is built on this engine
//! instead.
//!
//! ## Design
//!
//! * **Tape as an arena.** A [`Tape`] owns a flat `Vec` of nodes; tensors
//!   are [`TensorId`] indices into it. Forward passes append nodes,
//!   [`Tape::backward`] walks the arena in reverse. No `Rc<RefCell<…>>`,
//!   no graph pointers — dropping a tape frees the whole forward pass at
//!   once, which matters because the models build one tape per sample
//!   (graphs are dynamic: every query has a different number of nodes).
//! * **Parameters live outside tapes** in a [`ParamStore`]. A forward pass
//!   leases a parameter onto the tape with [`Tape::param`]; `backward`
//!   accumulates the gradient back into the store, and an optimizer
//!   ([`Adam`] / [`Sgd`]) steps the store. This gives mini-batch gradient
//!   accumulation across independent per-sample tapes for free.
//! * **2-D everywhere.** Tensors are `[rows, cols]` row-major. The paper's
//!   3-D edge tensors `E ∈ R^{n×n×d}` are stored as `[n*n, d]`, with
//!   dedicated broadcast ops ([`Tape::add_outer`], [`Tape::repeat_rows`],
//!   [`Tape::repeat_interleave_rows`]) so that attention logits and edge
//!   updates stay vectorised — tape length is O(layers), not O(n²).
//!
//! ## Quick example
//!
//! ```
//! use rtp_tensor::{ParamStore, Tape, optim::Adam, optim::Optimizer};
//!
//! let mut store = ParamStore::new(7);
//! let w = store.add_param("w", 1, 1, vec![0.0]);
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut tape = Tape::new();
//!     let wv = tape.param(&store, w);
//!     let target = tape.constant(1, 1, vec![3.0]);
//!     let diff = tape.sub(wv, target);
//!     let loss = tape.mul(diff, diff);
//!     store.zero_grad();
//!     tape.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.data(w)[0] - 3.0).abs() < 1e-3);
//! ```

mod params;
mod tape;

pub mod kernels;
pub mod nn;
pub mod optim;
pub mod parallel;
pub mod simd;

pub use params::{GradBuffer, GradSink, ParamId, ParamStore};
pub use simd::{QuantSet, QuantizedMatrix};
pub use tape::{Numerics, Tape, TensorId};

/// Numerically compares two f32 slices within a tolerance; used widely by
/// this workspace's tests.
pub fn approx_eq_slice(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Finite-difference gradient check utility.
///
/// `f` must rebuild the forward pass from scratch against the given store
/// and return the scalar loss value. Returns the maximum absolute
/// difference between the analytic gradient already present in the store
/// and a central finite difference, over every coordinate of `pid`.
///
/// Only intended for tests: it is O(param size) forward passes.
#[allow(clippy::needless_range_loop)] // perturbs store in place; iterator borrow rules forbid it
pub fn grad_check<F>(
    store: &mut ParamStore,
    pid: ParamId,
    analytic: &[f32],
    eps: f32,
    mut f: F,
) -> f32
where
    F: FnMut(&ParamStore) -> f32,
{
    let n = store.data(pid).len();
    assert_eq!(analytic.len(), n, "analytic gradient length mismatch");
    let mut worst = 0.0f32;
    for i in 0..n {
        let orig = store.data(pid)[i];
        store.data_mut(pid)[i] = orig + eps;
        let up = f(store);
        store.data_mut(pid)[i] = orig - eps;
        let down = f(store);
        store.data_mut(pid)[i] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let d = (numeric - analytic[i]).abs();
        if d > worst {
            worst = d;
        }
    }
    worst
}
