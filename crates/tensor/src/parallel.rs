//! Deterministic fan-out for data-parallel training.
//!
//! [`parallel_map_ordered`] runs an indexed job list on a fixed number
//! of scoped OS threads and returns the results **in index order**,
//! regardless of which worker computed which index or in what order
//! they finished. Combined with per-sample [`crate::GradBuffer`]s and
//! an index-ordered [`crate::ParamStore::accumulate`] reduction, this
//! makes training results bit-identical for any thread count.
//!
//! Work is distributed by an atomic next-index counter (work stealing
//! in the limit of one-item granularity), so unevenly sized samples —
//! routes vary in length — still balance across workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Resolves a user-facing thread-count setting: `0` means "all
/// available cores", anything else is used as given.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Computes `f(0..n)` on up to `threads` worker threads (`0` = all
/// cores) and returns the outputs ordered by index.
///
/// `f` runs concurrently and must be `Sync`; a panic in any worker
/// propagates after the remaining workers drain.
pub fn parallel_map_ordered<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = resolve_threads(threads).min(n.max(1));
    let mut states = vec![(); workers];
    parallel_map_ordered_with(&mut states, n, |(), i| f(i))
}

/// Like [`parallel_map_ordered`], but each worker thread owns one
/// mutable state from `states` for the duration of the run — the hook
/// for reusing a [`crate::Tape`] (or any scratch buffer) per worker
/// across samples without `Mutex` traffic. The number of workers is
/// `states.len()` (capped at `n`); with a single state the jobs run
/// sequentially on the caller's thread.
///
/// Results are returned in index order, so determinism is unaffected
/// by which worker (and which state) computed which index — provided
/// `f`'s output does not depend on the state's history, which is what
/// `Tape::clear()`'s bit-identical-reuse contract guarantees.
pub fn parallel_map_ordered_with<S, R, F>(states: &mut [S], n: usize, f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut S, usize) -> R + Sync,
{
    assert!(!states.is_empty(), "parallel_map_ordered_with needs at least one worker state");
    let workers = states.len().min(n.max(1));
    if workers <= 1 {
        let state = &mut states[0];
        return (0..n).map(|i| f(state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        for state in states.iter_mut().take(workers) {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if tx.send((i, f(state, i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Receive until every worker has dropped its sender.
        while let Ok((i, r)) = rx.recv() {
            slots[i] = Some(r);
        }
    });
    slots.into_iter().map(|s| s.expect("parallel worker dropped an item")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_zero_to_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_are_index_ordered_for_any_thread_count() {
        let expect: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map_ordered(257, threads, |i| i * i);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_single_jobs() {
        assert_eq!(parallel_map_ordered(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_ordered(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn stateful_map_is_index_ordered_and_touches_all_states() {
        let expect: Vec<usize> = (0..100).map(|i| i * 3).collect();
        for workers in [1, 2, 4] {
            let mut states = vec![0usize; workers];
            let got = parallel_map_ordered_with(&mut states, 100, |s, i| {
                *s += 1;
                i * 3
            });
            assert_eq!(got, expect, "workers={workers}");
            assert_eq!(states.iter().sum::<usize>(), 100, "every job must tick one state");
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_ordered(8, 2, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
