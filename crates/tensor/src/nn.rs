//! Neural-network building blocks on top of the tape: linear layers,
//! embedding tables, LSTM cells, MLPs and sinusoidal positional encodings.
//!
//! Each layer struct only stores [`ParamId`]s; the actual weights live in
//! the model's [`ParamStore`], so layers are `Copy`-cheap to clone and a
//! model is fully described by (layer structs, store).

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, TensorId};

/// Fully-connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a linear layer with Xavier-initialised weights and a zero
    /// bias.
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = store.add_xavier(&format!("{name}.w"), in_dim, out_dim);
        let b = Some(store.add_zeros(&format!("{name}.b"), 1, out_dim));
        Self { w, b, in_dim, out_dim }
    }

    /// Creates a bias-free linear map (used for the attention projections
    /// W1..W9 of the paper, which carry no bias).
    pub fn new_no_bias(store: &mut ParamStore, name: &str, in_dim: usize, out_dim: usize) -> Self {
        let w = store.add_xavier(&format!("{name}.w"), in_dim, out_dim);
        Self { w, b: None, in_dim, out_dim }
    }

    /// Applies the layer to `[batch, in_dim]`, returning `[batch, out_dim]`.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, x: TensorId) -> TensorId {
        let (_, c) = t.shape(x);
        assert_eq!(c, self.in_dim, "Linear input dim mismatch: got {c}, want {}", self.in_dim);
        let w = t.param(store, self.w);
        let h = t.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = t.param(store, b);
                t.add_row(h, bv)
            }
            None => h,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Embedding table: maps integer ids to dense rows.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Creates a table of `vocab` rows of width `dim`, uniform-initialised.
    pub fn new(store: &mut ParamStore, name: &str, vocab: usize, dim: usize) -> Self {
        let scale = 1.0 / (dim as f32).sqrt();
        let table = store.add_uniform(&format!("{name}.table"), vocab, dim, scale);
        Self { table, vocab, dim }
    }

    /// Looks up a batch of ids, returning `[ids.len(), dim]`.
    ///
    /// Out-of-vocabulary ids are clamped to the last row (a deliberate
    /// "unknown" bucket: real AOI id spaces are open-ended).
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, ids: &[usize]) -> TensorId {
        let table = t.param(store, self.table);
        let clamped: Vec<usize> = ids.iter().map(|&i| i.min(self.vocab - 1)).collect();
        t.gather_rows(table, &clamped)
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

/// A single LSTM cell. State is a pair `(h, c)` of `[1, hidden]` tensors.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: ParamId, // [in, 4*hidden]  (i, f, g, o gate blocks)
    wh: ParamId, // [hidden, 4*hidden]
    b: ParamId,  // [1, 4*hidden]
    in_dim: usize,
    hidden: usize,
}

impl LstmCell {
    /// Creates an LSTM cell. The forget-gate bias block is initialised to
    /// 1.0 (standard trick for gradient flow early in training).
    pub fn new(store: &mut ParamStore, name: &str, in_dim: usize, hidden: usize) -> Self {
        let wx = store.add_xavier(&format!("{name}.wx"), in_dim, 4 * hidden);
        let wh = store.add_xavier(&format!("{name}.wh"), hidden, 4 * hidden);
        let mut bias = vec![0.0f32; 4 * hidden];
        for v in bias.iter_mut().skip(hidden).take(hidden) {
            *v = 1.0; // forget gate block
        }
        let b = store.add_param(&format!("{name}.b"), 1, 4 * hidden, bias);
        Self { wx, wh, b, in_dim, hidden }
    }

    /// Zero initial state on the given tape.
    pub fn zero_state(&self, t: &mut Tape) -> (TensorId, TensorId) {
        let h = t.constant(1, self.hidden, vec![0.0; self.hidden]);
        let c = t.constant(1, self.hidden, vec![0.0; self.hidden]);
        (h, c)
    }

    /// One step: input `[1, in_dim]`, state `(h, c)` -> new `(h, c)`.
    pub fn step(
        &self,
        t: &mut Tape,
        store: &ParamStore,
        x: TensorId,
        state: (TensorId, TensorId),
    ) -> (TensorId, TensorId) {
        let (h_prev, c_prev) = state;
        rtp_obs::counter!("tensor.op.lstm_cell.calls").inc();
        // pointwise gate work only (4 activations + 3 muls + 2 adds +
        // bias over 4n lanes ≈ 24n flops); the two matmuls are counted
        // by the matmul kernels themselves.
        rtp_obs::counter!("tensor.op.lstm_cell.flops").add(24 * self.hidden as u64);
        let wx = t.param(store, self.wx);
        let wh = t.param(store, self.wh);
        let b = t.param(store, self.b);
        let gx = t.matmul(x, wx);
        let gh = t.matmul(h_prev, wh);
        let g = t.add(gx, gh);
        let g = t.add_row(g, b);
        let n = self.hidden;
        // split the 4 gate blocks using gather on a reshaped view:
        // g is [1, 4n]; reshape to [4, n] and take rows.
        let g4 = t.reshape(g, 4, n);
        let gi = t.row(g4, 0);
        let gf = t.row(g4, 1);
        let gg = t.row(g4, 2);
        let go = t.row(g4, 3);
        let i = t.sigmoid(gi);
        let f = t.sigmoid(gf);
        let gt = t.tanh(gg);
        let o = t.sigmoid(go);
        let fc = t.mul(f, c_prev);
        let ig = t.mul(i, gt);
        let c = t.add(fc, ig);
        let ct = t.tanh(c);
        let h = t.mul(o, ct);
        (h, c)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
}

/// A feed-forward network with ReLU activations between layers (used for
/// the "plugged" time-prediction heads of the route-only baselines).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[in, 64, 32, 1]`.
    pub fn new(store: &mut ParamStore, name: &str, widths: &[usize]) -> Self {
        assert!(widths.len() >= 2, "MLP needs at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.{i}"), w[0], w[1]))
            .collect();
        Self { layers }
    }

    /// Forward pass; ReLU after every layer except the last.
    pub fn forward(&self, t: &mut Tape, store: &ParamStore, mut x: TensorId) -> TensorId {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(t, store, x);
            if i != last {
                x = t.relu(x);
            }
        }
        x
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Sinusoidal positional encoding (Eq. 32 of the paper / Vaswani et al.).
///
/// Returns a `dim`-wide vector for position `pos` (1-based in the paper;
/// any non-negative integer works).
pub fn positional_encoding(pos: usize, dim: usize) -> Vec<f32> {
    positional_encoding_with_base(pos, dim, 10_000.0)
}

/// Positional encoding with an explicit base `r` (Eq. 32 keeps it
/// symbolic).
#[allow(clippy::needless_range_loop)] // the index k is part of the formula (Eq. 32)
pub fn positional_encoding_with_base(pos: usize, dim: usize, base: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    for k in 0..dim {
        let exponent = (2 * (k / 2)) as f32 / dim as f32;
        let angle = pos as f32 / base.powf(exponent);
        out[k] = if k % 2 == 0 { angle.sin() } else { angle.cos() };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn linear_shapes_and_bias() {
        let mut store = ParamStore::new(1);
        let lin = Linear::new(&mut store, "l", 3, 2);
        let mut t = Tape::new();
        let x = t.constant(4, 3, vec![1.0; 12]);
        let y = lin.forward(&mut t, &store, x);
        assert_eq!(t.shape(y), (4, 2));
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 2);
    }

    #[test]
    fn embedding_lookup_and_oov_clamp() {
        let mut store = ParamStore::new(1);
        let emb = Embedding::new(&mut store, "e", 4, 3);
        let mut t = Tape::new();
        let a = emb.forward(&mut t, &store, &[0, 3, 99]);
        assert_eq!(t.shape(a), (3, 3));
        // OOV id 99 clamps to the last row (id 3).
        let d = t.data(a);
        assert_eq!(&d[3..6], &d[6..9]);
    }

    #[test]
    fn lstm_step_changes_state_and_is_bounded() {
        let mut store = ParamStore::new(1);
        let cell = LstmCell::new(&mut store, "lstm", 3, 5);
        let mut t = Tape::new();
        let (h0, c0) = cell.zero_state(&mut t);
        let x = t.constant(1, 3, vec![0.5, -0.5, 1.0]);
        let (h1, _c1) = cell.step(&mut t, &store, x, (h0, c0));
        assert_eq!(t.shape(h1), (1, 5));
        assert!(t.data(h1).iter().any(|&v| v != 0.0), "state must update");
        assert!(t.data(h1).iter().all(|&v| v.abs() <= 1.0), "h = o*tanh(c) is bounded");
    }

    #[test]
    fn lstm_can_learn_to_remember_first_input() {
        // Task: output after 3 steps should equal the first input scalar.
        let mut store = ParamStore::new(7);
        let cell = LstmCell::new(&mut store, "lstm", 1, 8);
        let head = Linear::new(&mut store, "head", 8, 1);
        let mut opt = Adam::new(0.02);
        let seqs: Vec<[f32; 3]> =
            vec![[1.0, 0.3, -0.2], [-1.0, 0.5, 0.1], [0.5, -0.9, 0.7], [-0.5, 0.2, 0.2]];
        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            store.zero_grad();
            let mut total = 0.0;
            for s in &seqs {
                let mut t = Tape::new();
                let mut state = cell.zero_state(&mut t);
                for &v in s {
                    let x = t.constant(1, 1, vec![v]);
                    state = cell.step(&mut t, &store, x, state);
                }
                let y = head.forward(&mut t, &store, state.0);
                let target = t.constant(1, 1, vec![s[0]]);
                let loss = t.mse_loss(y, target);
                total += t.scalar(loss);
                t.backward(loss, &mut store);
            }
            store.scale_grad(1.0 / seqs.len() as f32);
            opt.step(&mut store);
            final_loss = total / seqs.len() as f32;
        }
        assert!(final_loss < 0.01, "LSTM failed to learn memory task: {final_loss}");
    }

    #[test]
    fn mlp_forward_and_depth() {
        let mut store = ParamStore::new(1);
        let mlp = Mlp::new(&mut store, "m", &[4, 8, 1]);
        assert_eq!(mlp.depth(), 2);
        let mut t = Tape::new();
        let x = t.constant(2, 4, vec![0.1; 8]);
        let y = mlp.forward(&mut t, &store, x);
        assert_eq!(t.shape(y), (2, 1));
    }

    #[test]
    fn positional_encoding_properties() {
        let p0 = positional_encoding(0, 8);
        // pos 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        for (k, v) in p0.iter().enumerate() {
            if k % 2 == 0 {
                assert_eq!(*v, 0.0);
            } else {
                assert_eq!(*v, 1.0);
            }
        }
        let p1 = positional_encoding(1, 8);
        let p2 = positional_encoding(2, 8);
        assert_ne!(p1, p2, "distinct positions must encode differently");
        assert!(p1.iter().all(|v| v.abs() <= 1.0));
    }
}
