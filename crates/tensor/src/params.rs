//! Parameter storage shared across tapes.
//!
//! Model parameters outlive any single forward pass, so they live here
//! rather than on the [`crate::Tape`]. Gradients are accumulated into the
//! store by `Tape::backward`, which makes multi-sample (mini-batch)
//! gradient accumulation trivial: run several tapes, then step once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Index of this parameter within its store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct ParamEntry {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    grad: Vec<f32>,
}

/// Owns every learnable tensor of a model, together with its gradient
/// accumulator and an RNG used for initialisation.
///
/// `Clone` is cheap relative to training cost and gives data-parallel
/// trainers a private copy per worker whose gradients are merged back.
#[derive(Debug, Clone)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store whose initialisers draw from a deterministic
    /// RNG seeded with `seed` (reproducible experiments).
    pub fn new(seed: u64) -> Self {
        Self { entries: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }

    /// Registers a parameter with explicit initial values.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn add_param(&mut self, name: &str, rows: usize, cols: usize, data: Vec<f32>) -> ParamId {
        assert_eq!(data.len(), rows * cols, "param `{name}` data length mismatch");
        let id = ParamId(self.entries.len() as u32);
        self.entries.push(ParamEntry {
            name: name.to_string(),
            rows,
            cols,
            grad: vec![0.0; data.len()],
            data,
        });
        id
    }

    /// Registers a parameter initialised with Xavier/Glorot uniform noise,
    /// the scheme used for every linear map in this workspace.
    pub fn add_xavier(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| self.rng.gen_range(-bound..bound)).collect();
        self.add_param(name, rows, cols, data)
    }

    /// Registers a parameter initialised to zero (biases, log-variances).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add_param(name, rows, cols, vec![0.0; rows * cols])
    }

    /// Registers a parameter with small uniform noise in `[-scale, scale]`
    /// (embedding tables).
    pub fn add_uniform(&mut self, name: &str, rows: usize, cols: usize, scale: f32) -> ParamId {
        let data = (0..rows * cols).map(|_| self.rng.gen_range(-scale..scale)).collect();
        self.add_param(name, rows, cols, data)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Shape of a parameter as `(rows, cols)`.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        let e = &self.entries[id.index()];
        (e.rows, e.cols)
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.index()].name
    }

    /// Read-only view of a parameter's values.
    pub fn data(&self, id: ParamId) -> &[f32] {
        &self.entries[id.index()].data
    }

    /// Mutable view of a parameter's values (used by optimizers and tests).
    pub fn data_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.entries[id.index()].data
    }

    /// Read-only view of a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.entries[id.index()].grad
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &[f32]) {
        let g = &mut self.entries[id.index()].grad;
        debug_assert_eq!(g.len(), delta.len());
        for (gi, di) in g.iter_mut().zip(delta) {
            *gi += di;
        }
    }

    /// Reduces a worker-local [`GradBuffer`] into this store's gradient
    /// accumulators. Data-parallel trainers call this once per sample
    /// buffer, in sample-index order, so the reduction is a fixed
    /// sequence of float additions independent of worker count.
    ///
    /// # Panics
    /// Panics if the buffer was not created for this store's layout.
    pub fn accumulate(&mut self, buffer: &GradBuffer) {
        assert_eq!(self.entries.len(), buffer.grads.len(), "gradient buffer layout mismatch");
        for (e, bg) in self.entries.iter_mut().zip(&buffer.grads) {
            debug_assert_eq!(e.grad.len(), bg.len());
            for (g, d) in e.grad.iter_mut().zip(bg) {
                *g += d;
            }
        }
    }

    /// Clears every gradient accumulator. Call before each optimisation
    /// step's forward/backward passes.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Clears the gradient of a single parameter — the freezing
    /// primitive used by two-phase ("two-step" ablation) training.
    pub fn zero_grad_of(&mut self, id: ParamId) {
        self.entries[id.index()].grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Merges the gradients accumulated in `other` (a clone of this
    /// store) into this store's accumulators.
    ///
    /// # Panics
    /// Panics if the stores have different layouts.
    pub fn merge_grads_from(&mut self, other: &ParamStore) {
        assert_eq!(self.entries.len(), other.entries.len(), "store layout mismatch");
        for (e, o) in self.entries.iter_mut().zip(&other.entries) {
            debug_assert_eq!(e.grad.len(), o.grad.len());
            for (g, og) in e.grad.iter_mut().zip(&o.grad) {
                *g += og;
            }
        }
    }

    /// Scales every gradient by `factor` (used to average accumulated
    /// per-sample gradients into a mean mini-batch gradient).
    pub fn scale_grad(&mut self, factor: f32) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g *= factor);
        }
    }

    /// Global L2 norm of the gradient, over all parameters.
    pub fn grad_norm(&self) -> f32 {
        self.entries.iter().flat_map(|e| e.grad.iter()).map(|g| g * g).sum::<f32>().sqrt()
    }

    /// Clips the global gradient norm to `max_norm` (no-op if already
    /// below). Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                e.grad.iter_mut().for_each(|g| *g *= scale);
            }
        }
        norm
    }

    /// Iterates over `(ParamId, name)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(|i| ParamId(i as u32))
    }

    /// Serialises all parameter values into a flat snapshot (for
    /// early-stopping "best weights" checkpoints).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.entries.iter().map(|e| e.data.clone()).collect()
    }

    /// Restores values captured by [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snapshot: &[Vec<f32>]) {
        assert_eq!(snapshot.len(), self.entries.len(), "snapshot layout mismatch");
        for (e, s) in self.entries.iter_mut().zip(snapshot) {
            assert_eq!(e.data.len(), s.len(), "snapshot tensor size mismatch for `{}`", e.name);
            e.data.copy_from_slice(s);
        }
    }
}

/// Anything `Tape::backward_into` can accumulate parameter gradients
/// into: the [`ParamStore`] itself (single-threaded training) or a
/// worker-local [`GradBuffer`] (data-parallel training).
pub trait GradSink {
    /// Adds `delta` elementwise into the gradient slot of `id`.
    fn accumulate_grad(&mut self, id: ParamId, delta: &[f32]);
}

impl GradSink for ParamStore {
    fn accumulate_grad(&mut self, id: ParamId, delta: &[f32]) {
        ParamStore::accumulate_grad(self, id, delta);
    }
}

/// A detached gradient accumulator with the same layout as a
/// [`ParamStore`], but no weights, optimizer state or RNG.
///
/// Data-parallel minibatch training gives each sample its own buffer:
/// workers run forward/backward concurrently into private buffers,
/// then the trainer reduces them into the store **in sample-index
/// order** via [`ParamStore::accumulate`]. Because each buffer starts
/// at exactly 0.0 and `0.0 + x == x` for every finite `x`, the reduced
/// result is bit-identical to accumulating each sample's leases
/// directly into the store in the same sample order — so the training
/// trajectory does not depend on how many worker threads ran.
#[derive(Debug, Clone)]
pub struct GradBuffer {
    grads: Vec<Vec<f32>>,
}

impl GradBuffer {
    /// Creates a zeroed buffer matching `store`'s parameter layout.
    pub fn zeros_like(store: &ParamStore) -> Self {
        GradBuffer { grads: store.entries.iter().map(|e| vec![0.0; e.grad.len()]).collect() }
    }

    /// Read-only view of the accumulated gradient for `id`.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.grads[id.index()]
    }

    /// Whether every accumulated gradient is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.grads.iter().all(|g| g.iter().all(|&v| v == 0.0))
    }
}

impl GradSink for GradBuffer {
    fn accumulate_grad(&mut self, id: ParamId, delta: &[f32]) {
        let g = &mut self.grads[id.index()];
        debug_assert_eq!(g.len(), delta.len());
        for (gi, di) in g.iter_mut().zip(delta) {
            *gi += di;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_params() {
        let mut s = ParamStore::new(1);
        let a = s.add_param("a", 2, 3, vec![1.0; 6]);
        assert_eq!(s.shape(a), (2, 3));
        assert_eq!(s.name(a), "a");
        assert_eq!(s.data(a), &[1.0; 6]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 6);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut s1 = ParamStore::new(42);
        let mut s2 = ParamStore::new(42);
        let a1 = s1.add_xavier("w", 8, 8);
        let a2 = s2.add_xavier("w", 8, 8);
        assert_eq!(s1.data(a1), s2.data(a2), "same seed must give same init");
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(s1.data(a1).iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn grad_accumulate_zero_and_clip() {
        let mut s = ParamStore::new(1);
        let a = s.add_zeros("a", 1, 4);
        s.accumulate_grad(a, &[3.0, 0.0, 0.0, 4.0]);
        assert_eq!(s.grad_norm(), 5.0);
        let pre = s.clip_grad_norm(1.0);
        assert_eq!(pre, 5.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        s.zero_grad();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ParamStore::new(1);
        let a = s.add_param("a", 1, 2, vec![1.0, 2.0]);
        let snap = s.snapshot();
        s.data_mut(a).copy_from_slice(&[9.0, 9.0]);
        s.restore(&snap);
        assert_eq!(s.data(a), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn bad_shape_panics() {
        let mut s = ParamStore::new(1);
        s.add_param("a", 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn grad_buffer_reduction_is_bit_identical_to_direct_accumulation() {
        let mut direct = ParamStore::new(1);
        let a = direct.add_zeros("a", 1, 3);
        let b = direct.add_zeros("b", 1, 2);
        let mut buffered = direct.clone();

        // Two "samples"; the first leases `a` twice (like a parameter
        // reused across decode steps). Direct path: accumulate in
        // per-sample order straight into the store.
        let s1_a1 = [0.125f32, 0.25, 0.5];
        let s1_a2 = [1e-8, 0.75, -0.5];
        let s2_a = [3.0f32, -2.0, 0.0625];
        let s2_b = [0.1f32, -0.2];
        direct.accumulate_grad(a, &s1_a1);
        direct.accumulate_grad(a, &s1_a2);
        direct.accumulate_grad(a, &s2_a);
        direct.accumulate_grad(b, &s2_b);

        // Buffered path: per-sample buffers reduced in sample order.
        let mut buf1 = GradBuffer::zeros_like(&buffered);
        GradSink::accumulate_grad(&mut buf1, a, &s1_a1);
        GradSink::accumulate_grad(&mut buf1, a, &s1_a2);
        let mut buf2 = GradBuffer::zeros_like(&buffered);
        GradSink::accumulate_grad(&mut buf2, a, &s2_a);
        GradSink::accumulate_grad(&mut buf2, b, &s2_b);
        assert!(!buf1.is_zero());
        buffered.accumulate(&buf1);
        buffered.accumulate(&buf2);

        assert_eq!(direct.grad(a), buffered.grad(a));
        assert_eq!(direct.grad(b), buffered.grad(b));
        assert_eq!(buf2.grad(b), &s2_b);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn grad_buffer_layout_mismatch_panics() {
        let mut s = ParamStore::new(1);
        s.add_zeros("a", 1, 3);
        let buf = GradBuffer::zeros_like(&s);
        s.add_zeros("b", 1, 2);
        s.accumulate(&buf);
    }
}
