//! Parameter storage shared across tapes.
//!
//! Model parameters outlive any single forward pass, so they live here
//! rather than on the [`crate::Tape`]. Gradients are accumulated into the
//! store by `Tape::backward`, which makes multi-sample (mini-batch)
//! gradient accumulation trivial: run several tapes, then step once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// Index of this parameter within its store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct ParamEntry {
    name: String,
    rows: usize,
    cols: usize,
    data: Vec<f32>,
    grad: Vec<f32>,
}

/// Owns every learnable tensor of a model, together with its gradient
/// accumulator and an RNG used for initialisation.
///
/// `Clone` is cheap relative to training cost and gives data-parallel
/// trainers a private copy per worker whose gradients are merged back.
#[derive(Debug, Clone)]
pub struct ParamStore {
    entries: Vec<ParamEntry>,
    rng: StdRng,
}

impl ParamStore {
    /// Creates an empty store whose initialisers draw from a deterministic
    /// RNG seeded with `seed` (reproducible experiments).
    pub fn new(seed: u64) -> Self {
        Self { entries: Vec::new(), rng: StdRng::seed_from_u64(seed) }
    }

    /// Registers a parameter with explicit initial values.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn add_param(&mut self, name: &str, rows: usize, cols: usize, data: Vec<f32>) -> ParamId {
        assert_eq!(data.len(), rows * cols, "param `{name}` data length mismatch");
        let id = ParamId(self.entries.len() as u32);
        self.entries.push(ParamEntry {
            name: name.to_string(),
            rows,
            cols,
            grad: vec![0.0; data.len()],
            data,
        });
        id
    }

    /// Registers a parameter initialised with Xavier/Glorot uniform noise,
    /// the scheme used for every linear map in this workspace.
    pub fn add_xavier(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| self.rng.gen_range(-bound..bound)).collect();
        self.add_param(name, rows, cols, data)
    }

    /// Registers a parameter initialised to zero (biases, log-variances).
    pub fn add_zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.add_param(name, rows, cols, vec![0.0; rows * cols])
    }

    /// Registers a parameter with small uniform noise in `[-scale, scale]`
    /// (embedding tables).
    pub fn add_uniform(&mut self, name: &str, rows: usize, cols: usize, scale: f32) -> ParamId {
        let data = (0..rows * cols).map(|_| self.rng.gen_range(-scale..scale)).collect();
        self.add_param(name, rows, cols, data)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Shape of a parameter as `(rows, cols)`.
    pub fn shape(&self, id: ParamId) -> (usize, usize) {
        let e = &self.entries[id.index()];
        (e.rows, e.cols)
    }

    /// Name the parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.index()].name
    }

    /// Read-only view of a parameter's values.
    pub fn data(&self, id: ParamId) -> &[f32] {
        &self.entries[id.index()].data
    }

    /// Mutable view of a parameter's values (used by optimizers and tests).
    pub fn data_mut(&mut self, id: ParamId) -> &mut [f32] {
        &mut self.entries[id.index()].data
    }

    /// Read-only view of a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &[f32] {
        &self.entries[id.index()].grad
    }

    /// Accumulates `delta` into the gradient of `id`.
    pub(crate) fn accumulate_grad(&mut self, id: ParamId, delta: &[f32]) {
        let g = &mut self.entries[id.index()].grad;
        debug_assert_eq!(g.len(), delta.len());
        for (gi, di) in g.iter_mut().zip(delta) {
            *gi += di;
        }
    }

    /// Clears every gradient accumulator. Call before each optimisation
    /// step's forward/backward passes.
    pub fn zero_grad(&mut self) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Clears the gradient of a single parameter — the freezing
    /// primitive used by two-phase ("two-step" ablation) training.
    pub fn zero_grad_of(&mut self, id: ParamId) {
        self.entries[id.index()].grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Merges the gradients accumulated in `other` (a clone of this
    /// store) into this store's accumulators.
    ///
    /// # Panics
    /// Panics if the stores have different layouts.
    pub fn merge_grads_from(&mut self, other: &ParamStore) {
        assert_eq!(self.entries.len(), other.entries.len(), "store layout mismatch");
        for (e, o) in self.entries.iter_mut().zip(&other.entries) {
            debug_assert_eq!(e.grad.len(), o.grad.len());
            for (g, og) in e.grad.iter_mut().zip(&o.grad) {
                *g += og;
            }
        }
    }

    /// Scales every gradient by `factor` (used to average accumulated
    /// per-sample gradients into a mean mini-batch gradient).
    pub fn scale_grad(&mut self, factor: f32) {
        for e in &mut self.entries {
            e.grad.iter_mut().for_each(|g| *g *= factor);
        }
    }

    /// Global L2 norm of the gradient, over all parameters.
    pub fn grad_norm(&self) -> f32 {
        self.entries
            .iter()
            .flat_map(|e| e.grad.iter())
            .map(|g| g * g)
            .sum::<f32>()
            .sqrt()
    }

    /// Clips the global gradient norm to `max_norm` (no-op if already
    /// below). Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for e in &mut self.entries {
                e.grad.iter_mut().for_each(|g| *g *= scale);
            }
        }
        norm
    }

    /// Iterates over `(ParamId, name)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.entries.len()).map(|i| ParamId(i as u32))
    }

    /// Serialises all parameter values into a flat snapshot (for
    /// early-stopping "best weights" checkpoints).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.entries.iter().map(|e| e.data.clone()).collect()
    }

    /// Restores values captured by [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store's layout.
    pub fn restore(&mut self, snapshot: &[Vec<f32>]) {
        assert_eq!(snapshot.len(), self.entries.len(), "snapshot layout mismatch");
        for (e, s) in self.entries.iter_mut().zip(snapshot) {
            assert_eq!(e.data.len(), s.len(), "snapshot tensor size mismatch for `{}`", e.name);
            e.data.copy_from_slice(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_params() {
        let mut s = ParamStore::new(1);
        let a = s.add_param("a", 2, 3, vec![1.0; 6]);
        assert_eq!(s.shape(a), (2, 3));
        assert_eq!(s.name(a), "a");
        assert_eq!(s.data(a), &[1.0; 6]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 6);
    }

    #[test]
    fn xavier_is_bounded_and_deterministic() {
        let mut s1 = ParamStore::new(42);
        let mut s2 = ParamStore::new(42);
        let a1 = s1.add_xavier("w", 8, 8);
        let a2 = s2.add_xavier("w", 8, 8);
        assert_eq!(s1.data(a1), s2.data(a2), "same seed must give same init");
        let bound = (6.0 / 16.0f32).sqrt();
        assert!(s1.data(a1).iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn grad_accumulate_zero_and_clip() {
        let mut s = ParamStore::new(1);
        let a = s.add_zeros("a", 1, 4);
        s.accumulate_grad(a, &[3.0, 0.0, 0.0, 4.0]);
        assert_eq!(s.grad_norm(), 5.0);
        let pre = s.clip_grad_norm(1.0);
        assert_eq!(pre, 5.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        s.zero_grad();
        assert_eq!(s.grad_norm(), 0.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ParamStore::new(1);
        let a = s.add_param("a", 1, 2, vec![1.0, 2.0]);
        let snap = s.snapshot();
        s.data_mut(a).copy_from_slice(&[9.0, 9.0]);
        s.restore(&snap);
        assert_eq!(s.data(a), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "data length mismatch")]
    fn bad_shape_panics() {
        let mut s = ParamStore::new(1);
        s.add_param("a", 2, 2, vec![0.0; 3]);
    }
}
