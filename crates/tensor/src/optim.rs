//! First-order optimizers stepping a [`ParamStore`].

use crate::params::ParamStore;
use serde::{Deserialize, Serialize};

/// Common interface for optimizers over a parameter store.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in
    /// `store` (does not clear them — call [`ParamStore::zero_grad`]).
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.iter_ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
        }
        for (k, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let vel = &mut self.velocity[k];
            let data = store.data_mut(id);
            for ((w, g), v) in data.iter_mut().zip(&grad).zip(vel.iter_mut()) {
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) — the optimizer used for every neural model
/// in this workspace.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self { lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Serialisable snapshot of the complete optimizer state. Restoring
    /// it with [`Adam::from_state`] and stepping produces bit-identical
    /// updates to the original instance — Adam's first/second moments
    /// and step count are part of the training trajectory, so exact
    /// crash/resume requires persisting them alongside the weights.
    pub fn state(&self) -> AdamState {
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Rebuilds an optimizer from a captured [`AdamState`].
    ///
    /// # Panics
    /// Panics if the moment buffers disagree with each other (a corrupt
    /// snapshot); layout against a concrete store is the caller's check.
    pub fn from_state(s: AdamState) -> Self {
        assert_eq!(s.m.len(), s.v.len(), "Adam state corrupt: m/v tensor counts differ");
        for (m, v) in s.m.iter().zip(&s.v) {
            assert_eq!(m.len(), v.len(), "Adam state corrupt: m/v tensor sizes differ");
        }
        Self { lr: s.lr, beta1: s.beta1, beta2: s.beta2, eps: s.eps, t: s.t, m: s.m, v: s.v }
    }

    /// Whether this state's moment buffers match `store`'s parameter
    /// layout (vacuously true before the first step, when the buffers
    /// are allocated lazily).
    pub fn matches_store(&self, store: &ParamStore) -> bool {
        if self.m.is_empty() && self.t == 0 {
            return true;
        }
        self.m.len() == store.len()
            && store.iter_ids().all(|id| self.m[id.index()].len() == store.data(id).len())
    }
}

/// The full state of an [`Adam`] instance (hyperparameters, step count
/// and both moment vectors), in a serde-friendly shape for training
/// checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamState {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator stabiliser.
    pub eps: f32,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First moments, one buffer per parameter in registration order.
    pub m: Vec<Vec<f32>>,
    /// Second moments, aligned with `m`.
    pub v: Vec<Vec<f32>>,
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.iter_ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
            self.v = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let (m, v) = (&mut self.m[k], &mut self.v[k]);
            let data = store.data_mut(id);
            for (((w, g), mi), vi) in data.iter_mut().zip(&grad).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn quadratic_descends<O: Optimizer>(mut opt: O) -> f32 {
        // minimise (w - 3)^2 + (b + 1)^2
        let mut store = ParamStore::new(0);
        let w = store.add_param("w", 1, 1, vec![0.0]);
        let b = store.add_param("b", 1, 1, vec![0.0]);
        for _ in 0..500 {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let bv = t.param(&store, b);
            let tw = t.scalar_const(3.0);
            let tb = t.scalar_const(-1.0);
            let d1 = t.sub(wv, tw);
            let d2 = t.sub(bv, tb);
            let s1 = t.mul(d1, d1);
            let s2 = t.mul(d2, d2);
            let loss = t.add(s1, s2);
            store.zero_grad();
            t.backward(loss, &mut store);
            opt.step(&mut store);
        }
        (store.data(w)[0] - 3.0).abs() + (store.data(b)[0] + 1.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(quadratic_descends(Sgd::new(0.05)) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(quadratic_descends(Sgd::with_momentum(0.02, 0.9)) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(quadratic_descends(Adam::new(0.05)) < 1e-3);
    }

    #[test]
    fn adam_state_roundtrip_is_bit_identical() {
        // Train two stores in lockstep: one with a continuously-running
        // Adam, one whose Adam is snapshotted/restored mid-run. The
        // trajectories must agree to the bit — the checkpoint/resume
        // exactness contract at the optimizer level.
        let build = || {
            let mut store = ParamStore::new(9);
            store.add_param("w", 2, 2, vec![0.5, -1.5, 2.0, 0.25]);
            store
        };
        let fake_grad = |store: &mut ParamStore, k: usize| {
            let id = store.iter_ids().next().unwrap();
            let g: Vec<f32> = (0..4).map(|i| ((k * 4 + i) as f32 * 0.37).sin()).collect();
            store.zero_grad();
            store.accumulate_grad(id, &g);
        };
        let mut a_store = build();
        let mut b_store = build();
        let mut a_opt = Adam::new(0.01);
        let mut b_opt = Adam::new(0.01);
        for k in 0..5 {
            fake_grad(&mut a_store, k);
            a_opt.step(&mut a_store);
            fake_grad(&mut b_store, k);
            b_opt.step(&mut b_store);
        }
        // snapshot b through serde (the actual checkpoint path), drop
        // the original and resume from the restored state
        assert!(b_opt.matches_store(&b_store));
        let json = serde_json::to_string(&b_opt.state()).unwrap();
        let mut b_opt = Adam::from_state(serde_json::from_str(&json).unwrap());
        assert_eq!(b_opt.steps(), 5);
        for k in 5..10 {
            fake_grad(&mut a_store, k);
            a_opt.step(&mut a_store);
            fake_grad(&mut b_store, k);
            b_opt.step(&mut b_store);
        }
        let id = a_store.iter_ids().next().unwrap();
        let bits = |s: &ParamStore| s.data(id).iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a_store), bits(&b_store), "resumed Adam diverged from uninterrupted");
    }

    #[test]
    fn fresh_adam_state_matches_any_store() {
        let mut store = ParamStore::new(1);
        store.add_zeros("a", 1, 3);
        assert!(Adam::new(0.1).matches_store(&store));
        let mut other = ParamStore::new(1);
        other.add_zeros("a", 1, 4);
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert!(opt.matches_store(&store));
        assert!(!opt.matches_store(&other), "moment layout mismatch must be detected");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut a = Adam::new(0.01);
        assert_eq!(a.learning_rate(), 0.01);
        a.set_learning_rate(0.001);
        assert_eq!(a.learning_rate(), 0.001);
        assert_eq!(a.steps(), 0);
    }
}
