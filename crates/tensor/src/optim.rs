//! First-order optimizers stepping a [`ParamStore`].

use crate::params::ParamStore;

/// Common interface for optimizers over a parameter store.
pub trait Optimizer {
    /// Applies one update using the gradients currently accumulated in
    /// `store` (does not clear them — call [`ParamStore::zero_grad`]).
    fn step(&mut self, store: &mut ParamStore);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.iter_ids().collect();
        if self.velocity.len() != ids.len() {
            self.velocity = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
        }
        for (k, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let vel = &mut self.velocity[k];
            let data = store.data_mut(id);
            for ((w, g), v) in data.iter_mut().zip(&grad).zip(vel.iter_mut()) {
                *v = self.momentum * *v + g;
                *w -= self.lr * *v;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) — the optimizer used for every neural model
/// in this workspace.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        Self { lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<_> = store.iter_ids().collect();
        if self.m.len() != ids.len() {
            self.m = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
            self.v = ids.iter().map(|&id| vec![0.0; store.data(id).len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (k, &id) in ids.iter().enumerate() {
            let grad = store.grad(id).to_vec();
            let (m, v) = (&mut self.m[k], &mut self.v[k]);
            let data = store.data_mut(id);
            for (((w, g), mi), vi) in data.iter_mut().zip(&grad).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn quadratic_descends<O: Optimizer>(mut opt: O) -> f32 {
        // minimise (w - 3)^2 + (b + 1)^2
        let mut store = ParamStore::new(0);
        let w = store.add_param("w", 1, 1, vec![0.0]);
        let b = store.add_param("b", 1, 1, vec![0.0]);
        for _ in 0..500 {
            let mut t = Tape::new();
            let wv = t.param(&store, w);
            let bv = t.param(&store, b);
            let tw = t.scalar_const(3.0);
            let tb = t.scalar_const(-1.0);
            let d1 = t.sub(wv, tw);
            let d2 = t.sub(bv, tb);
            let s1 = t.mul(d1, d1);
            let s2 = t.mul(d2, d2);
            let loss = t.add(s1, s2);
            store.zero_grad();
            t.backward(loss, &mut store);
            opt.step(&mut store);
        }
        (store.data(w)[0] - 3.0).abs() + (store.data(b)[0] + 1.0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(quadratic_descends(Sgd::new(0.05)) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(quadratic_descends(Sgd::with_momentum(0.02, 0.9)) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(quadratic_descends(Adam::new(0.05)) < 1e-3);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut a = Adam::new(0.01);
        assert_eq!(a.learning_rate(), 0.01);
        a.set_learning_rate(0.001);
        assert_eq!(a.learning_rate(), 0.001);
        assert_eq!(a.steps(), 0);
    }
}
