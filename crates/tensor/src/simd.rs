//! Runtime-dispatched AVX2/FMA kernels and the quantized i8 inference
//! path, in two numerics tiers (see DESIGN.md "Numerics policy"):
//!
//! * **Bit-exact tier** ([`axpy`], [`fwd_panel_avx2`]): every output
//!   element sees *exactly* the scalar reference's left-to-right f32
//!   op sequence; AVX2 lanes only spread *independent* output elements
//!   across a register. Crucially these use separate
//!   `_mm256_mul_ps` + `_mm256_add_ps` — never `_mm256_fmadd_ps`,
//!   which skips the intermediate rounding and changes bits. This tier
//!   backs the default kernels in [`crate::kernels`], so thread-count
//!   determinism and twin-server byte comparisons hold by construction.
//! * **Fast tier** ([`matmul_fast_avx2fma`], [`dot_fast_avx2fma`]):
//!   FMA contraction and multi-accumulator reductions. Different
//!   rounding (usually *more* accurate), so it is opt-in and never
//!   used where gradients flow.
//! * **Quantized tier** ([`QuantizedMatrix`], [`matmul_q8`]):
//!   per-output-channel i8 weights (symmetric, clamped to ±127) with
//!   dynamic per-row activation quantization and i8×i8→i32 dots via
//!   `maddubs`. The i32 accumulation is exact and order-free; all
//!   rounding happens at quantization and the final two f32 multiplies.
//!
//! Dispatch is per-call via [`have_avx2`] / [`have_fma`] (cached CPUID
//! behind `is_x86_feature_detected!`); every entry point has a scalar
//! fallback with identical semantics (for the bit-exact tier: identical
//! bits), so non-x86 builds and pre-AVX2 boxes run the same code paths
//! the proptests verify.

use std::cell::RefCell;

use crate::params::{ParamId, ParamStore};

// -------------------------------------------------------------------
// Feature detection
// -------------------------------------------------------------------

/// Whether the running CPU has AVX2 (cached by the std detection
/// macro; false on non-x86_64 targets).
#[inline]
pub fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the running CPU has AVX2 *and* FMA (the fast tier needs
/// both; false on non-x86_64 targets).
#[inline]
pub fn have_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Detected CPU features relevant to kernel dispatch, for bench
/// metadata and `--version`-style diagnostics.
pub fn detected_features() -> Vec<&'static str> {
    let mut f = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            f.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx") {
            f.push("avx");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            f.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            f.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            f.push("avx512f");
        }
    }
    f
}

// -------------------------------------------------------------------
// Bit-exact tier
// -------------------------------------------------------------------

/// `dst[i] += s * x[i]` over `min(dst.len(), x.len())` elements.
///
/// Per element this is one f32 multiply then one f32 add — exactly the
/// scalar sequence — so it is bit-identical to the plain loop whether
/// the AVX2 path runs or not. The destination elements are independent
/// outputs, which is what makes vectorizing them legal under the
/// determinism contract.
#[inline]
pub fn axpy(dst: &mut [f32], x: &[f32], s: f32) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 presence just checked; the kernel handles any
        // slice lengths itself.
        unsafe { axpy_avx2(dst, x, s) };
        return;
    }
    for (d, &xv) in dst.iter_mut().zip(x) {
        *d += s * xv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(dst: &mut [f32], x: &[f32], s: f32) {
    use std::arch::x86_64::*;
    let n = dst.len().min(x.len());
    let d = dst.as_mut_ptr();
    let xp = x.as_ptr();
    let vs = _mm256_set1_ps(s);
    let mut i = 0;
    // Two independent 8-lane streams per iteration so the add latency
    // chains overlap. mul+add, NOT fmadd: bit-exact tier.
    while i + 16 <= n {
        let d0 = _mm256_loadu_ps(d.add(i));
        let d1 = _mm256_loadu_ps(d.add(i + 8));
        let x0 = _mm256_loadu_ps(xp.add(i));
        let x1 = _mm256_loadu_ps(xp.add(i + 8));
        _mm256_storeu_ps(d.add(i), _mm256_add_ps(d0, _mm256_mul_ps(vs, x0)));
        _mm256_storeu_ps(d.add(i + 8), _mm256_add_ps(d1, _mm256_mul_ps(vs, x1)));
        i += 16;
    }
    while i + 8 <= n {
        let d0 = _mm256_loadu_ps(d.add(i));
        let x0 = _mm256_loadu_ps(xp.add(i));
        _mm256_storeu_ps(d.add(i), _mm256_add_ps(d0, _mm256_mul_ps(vs, x0)));
        i += 8;
    }
    while i < n {
        *d.add(i) += s * *xp.add(i);
        i += 1;
    }
}

/// Bit-exact AVX2 body for one packed B column panel of the forward
/// matmul: `out[i][jb..jb+16] = Σ_kk a[i][kk] * pack[kk][0..16]`, the
/// same 4-row register tile as the scalar blocked kernel with each
/// accumulator update done as mul-then-add.
///
/// # Safety
/// Caller must ensure AVX2 is available, `pack.len() == k * 16`,
/// `a.len() >= r * k`, `out.len() >= (r-1) * c + jb + 16`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn fwd_panel_avx2(
    a: &[f32],
    pack: &[f32],
    out: &mut [f32],
    r: usize,
    k: usize,
    c: usize,
    jb: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(pack.len() >= k * 16);
    let ap = a.as_ptr();
    let pp = pack.as_ptr();
    let op = out.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= r {
        let (mut c0l, mut c0h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c1l, mut c1h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c2l, mut c2h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c3l, mut c3h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        for kk in 0..k {
            let bl = _mm256_loadu_ps(pp.add(kk * 16));
            let bh = _mm256_loadu_ps(pp.add(kk * 16 + 8));
            let v0 = _mm256_set1_ps(*ap.add(i * k + kk));
            let v1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
            let v2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
            let v3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
            c0l = _mm256_add_ps(c0l, _mm256_mul_ps(v0, bl));
            c0h = _mm256_add_ps(c0h, _mm256_mul_ps(v0, bh));
            c1l = _mm256_add_ps(c1l, _mm256_mul_ps(v1, bl));
            c1h = _mm256_add_ps(c1h, _mm256_mul_ps(v1, bh));
            c2l = _mm256_add_ps(c2l, _mm256_mul_ps(v2, bl));
            c2h = _mm256_add_ps(c2h, _mm256_mul_ps(v2, bh));
            c3l = _mm256_add_ps(c3l, _mm256_mul_ps(v3, bl));
            c3h = _mm256_add_ps(c3h, _mm256_mul_ps(v3, bh));
        }
        _mm256_storeu_ps(op.add(i * c + jb), c0l);
        _mm256_storeu_ps(op.add(i * c + jb + 8), c0h);
        _mm256_storeu_ps(op.add((i + 1) * c + jb), c1l);
        _mm256_storeu_ps(op.add((i + 1) * c + jb + 8), c1h);
        _mm256_storeu_ps(op.add((i + 2) * c + jb), c2l);
        _mm256_storeu_ps(op.add((i + 2) * c + jb + 8), c2h);
        _mm256_storeu_ps(op.add((i + 3) * c + jb), c3l);
        _mm256_storeu_ps(op.add((i + 3) * c + jb + 8), c3h);
        i += 4;
    }
    while i < r {
        let (mut cl, mut ch) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        for kk in 0..k {
            let bl = _mm256_loadu_ps(pp.add(kk * 16));
            let bh = _mm256_loadu_ps(pp.add(kk * 16 + 8));
            let v = _mm256_set1_ps(*ap.add(i * k + kk));
            cl = _mm256_add_ps(cl, _mm256_mul_ps(v, bl));
            ch = _mm256_add_ps(ch, _mm256_mul_ps(v, bh));
        }
        _mm256_storeu_ps(op.add(i * c + jb), cl);
        _mm256_storeu_ps(op.add(i * c + jb + 8), ch);
        i += 1;
    }
}

// -------------------------------------------------------------------
// Fast tier (FMA + multi-accumulator; opt-in, inference only)
// -------------------------------------------------------------------

thread_local! {
    /// Packed B panel scratch for the fast-tier matmul.
    static FAST_PACK: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Fast-tier forward product `out = A @ B` (overwrite): the blocked
/// panel kernel with FMA contraction. Accuracy differs from the exact
/// tier only in rounding (FMA keeps the infinitely precise product
/// before adding), so results are within normal f32 dot-product error
/// of the reference — but NOT bit-identical. Falls back to the exact
/// kernel where AVX2+FMA is unavailable.
///
/// Returns `true` if the FMA path ran (so callers can fall back to the
/// exact blocked kernel otherwise without double-counting).
pub fn matmul_fast(a: &[f32], b: &[f32], out: &mut [f32], r: usize, k: usize, c: usize) -> bool {
    if !have_fma() || r == 0 || c == 0 || k == 0 {
        return false;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if c == 1 {
            for i in 0..r {
                // SAFETY: FMA presence checked above; slices sized by
                // the matmul contract.
                out[i] = unsafe { dot_fast_avx2fma(&a[i * k..(i + 1) * k], b) };
            }
            return true;
        }
        FAST_PACK.with(|p| {
            let mut pack = p.borrow_mut();
            let mut jb = 0;
            while jb < c {
                let nr = 16.min(c - jb);
                if nr == 16 {
                    pack.clear();
                    pack.reserve(k * 16);
                    for kk in 0..k {
                        pack.extend_from_slice(&b[kk * c + jb..kk * c + jb + 16]);
                    }
                    // SAFETY: FMA presence checked; pack is k*16.
                    unsafe { fwd_panel_fma(a, &pack, out, r, k, c, jb) };
                } else {
                    // Edge panel: scalar mul_add (compiles to scalar
                    // FMA under x86-64-v3); tiny share of the work.
                    for i in 0..r {
                        for j in jb..jb + nr {
                            let mut acc = 0.0f32;
                            for kk in 0..k {
                                acc = a[i * k + kk].mul_add(b[kk * c + j], acc);
                            }
                            out[i * c + j] = acc;
                        }
                    }
                }
                jb += nr;
            }
        });
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Fast-tier dot product: 4 independent FMA accumulator chains folded
/// at the end (different summation order than the reference — fast
/// tier only).
///
/// # Safety
/// Caller must ensure AVX2+FMA are available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot_fast_avx2fma(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        acc1 =
            _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 8)), _mm256_loadu_ps(bp.add(i + 8)), acc1);
        acc2 =
            _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 16)), _mm256_loadu_ps(bp.add(i + 16)), acc2);
        acc3 =
            _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 24)), _mm256_loadu_ps(bp.add(i + 24)), acc3);
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        i += 8;
    }
    let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    let hi = _mm256_extractf128_ps(acc, 1);
    let lo = _mm256_castps256_ps128(acc);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    let mut total = _mm_cvtss_f32(s);
    while i < n {
        total = (*ap.add(i)).mul_add(*bp.add(i), total);
        i += 1;
    }
    total
}

/// Fast-tier panel body: [`fwd_panel_avx2`] with `fmadd` contraction.
///
/// # Safety
/// Same contract as [`fwd_panel_avx2`], plus FMA availability.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn fwd_panel_fma(
    a: &[f32],
    pack: &[f32],
    out: &mut [f32],
    r: usize,
    k: usize,
    c: usize,
    jb: usize,
) {
    use std::arch::x86_64::*;
    debug_assert!(pack.len() >= k * 16);
    let ap = a.as_ptr();
    let pp = pack.as_ptr();
    let op = out.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= r {
        let (mut c0l, mut c0h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c1l, mut c1h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c2l, mut c2h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        let (mut c3l, mut c3h) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        for kk in 0..k {
            let bl = _mm256_loadu_ps(pp.add(kk * 16));
            let bh = _mm256_loadu_ps(pp.add(kk * 16 + 8));
            let v0 = _mm256_set1_ps(*ap.add(i * k + kk));
            let v1 = _mm256_set1_ps(*ap.add((i + 1) * k + kk));
            let v2 = _mm256_set1_ps(*ap.add((i + 2) * k + kk));
            let v3 = _mm256_set1_ps(*ap.add((i + 3) * k + kk));
            c0l = _mm256_fmadd_ps(v0, bl, c0l);
            c0h = _mm256_fmadd_ps(v0, bh, c0h);
            c1l = _mm256_fmadd_ps(v1, bl, c1l);
            c1h = _mm256_fmadd_ps(v1, bh, c1h);
            c2l = _mm256_fmadd_ps(v2, bl, c2l);
            c2h = _mm256_fmadd_ps(v2, bh, c2h);
            c3l = _mm256_fmadd_ps(v3, bl, c3l);
            c3h = _mm256_fmadd_ps(v3, bh, c3h);
        }
        _mm256_storeu_ps(op.add(i * c + jb), c0l);
        _mm256_storeu_ps(op.add(i * c + jb + 8), c0h);
        _mm256_storeu_ps(op.add((i + 1) * c + jb), c1l);
        _mm256_storeu_ps(op.add((i + 1) * c + jb + 8), c1h);
        _mm256_storeu_ps(op.add((i + 2) * c + jb), c2l);
        _mm256_storeu_ps(op.add((i + 2) * c + jb + 8), c2h);
        _mm256_storeu_ps(op.add((i + 3) * c + jb), c3l);
        _mm256_storeu_ps(op.add((i + 3) * c + jb + 8), c3h);
        i += 4;
    }
    while i < r {
        let (mut cl, mut ch) = (_mm256_setzero_ps(), _mm256_setzero_ps());
        for kk in 0..k {
            let bl = _mm256_loadu_ps(pp.add(kk * 16));
            let bh = _mm256_loadu_ps(pp.add(kk * 16 + 8));
            let v = _mm256_set1_ps(*ap.add(i * k + kk));
            cl = _mm256_fmadd_ps(v, bl, cl);
            ch = _mm256_fmadd_ps(v, bh, ch);
        }
        _mm256_storeu_ps(op.add(i * c + jb), cl);
        _mm256_storeu_ps(op.add(i * c + jb + 8), ch);
        i += 1;
    }
}

// -------------------------------------------------------------------
// Quantized tier (i8 weights, dynamic i8 activations, i32 dots)
// -------------------------------------------------------------------

/// i8 lane width the quantized dot operates in; weight rows and the
/// activation scratch are zero-padded to a multiple of this so the dot
/// kernel has no remainder loop (zero products are exact in i32).
const Q_LANES: usize = 32;

/// Minimum contraction dim for a parameter to be worth quantizing;
/// below this the f32 kernel wins and the relative quantization error
/// budget is spent on too few summands.
pub const QUANT_MIN_K: usize = 16;
/// Minimum output channels for quantization (column vectors and tiny
/// heads stay f32).
pub const QUANT_MIN_C: usize = 4;

/// A weight matrix `B [k,c]` quantized symmetrically per output
/// channel: column `j` is stored as i8 values in `[-127, 127]` with a
/// f32 scale `s_j = max|B[:,j]| / 127`, laid out *transposed*
/// (`qt[j][0..k]`, padded to [`Q_LANES`]) so the quantized dot reads
/// both operands contiguously.
///
/// The ±127 clamp (never −128) caps `|qa·qw| ≤ 127·127`, so the
/// `maddubs` pairwise i16 sum (≤ 32258) cannot saturate.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    /// Transposed quantized weights, `c` rows of `k_pad` i8 each.
    qt: Vec<i8>,
    /// Per-output-channel scale, length `c`.
    scales: Vec<f32>,
    /// Contraction dim (rows of the original B).
    pub k: usize,
    /// Output channels (cols of the original B).
    pub c: usize,
    k_pad: usize,
}

impl QuantizedMatrix {
    /// Quantizes a row-major `[k,c]` weight matrix.
    pub fn from_weights(b: &[f32], k: usize, c: usize) -> Self {
        assert_eq!(b.len(), k * c, "quantize shape mismatch");
        let k_pad = k.div_ceil(Q_LANES) * Q_LANES;
        let mut qt = vec![0i8; c * k_pad];
        let mut scales = vec![0f32; c];
        for j in 0..c {
            let amax = (0..k).map(|kk| b[kk * c + j].abs()).fold(0.0f32, f32::max);
            if amax == 0.0 || !amax.is_finite() {
                continue; // all-zero channel (scale 0 ⇒ output 0)
            }
            scales[j] = amax / 127.0;
            let inv = 127.0 / amax;
            for kk in 0..k {
                let q = (b[kk * c + j] * inv).round().clamp(-127.0, 127.0);
                qt[j * k_pad + kk] = q as i8;
            }
        }
        Self { qt, scales, k, c, k_pad }
    }

    /// Reconstructs the f32 weights (`[k,c]` row-major). Round-trip
    /// error per element is at most `scales[j] / 2` (symmetric
    /// round-to-nearest); the proptests pin this bound.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.k * self.c];
        for j in 0..self.c {
            let s = self.scales[j];
            for kk in 0..self.k {
                out[kk * self.c + j] = s * self.qt[j * self.k_pad + kk] as f32;
            }
        }
        out
    }

    /// Per-output-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Heap bytes of the quantized representation.
    pub fn bytes(&self) -> usize {
        self.qt.len() + self.scales.len() * 4
    }
}

thread_local! {
    /// Per-row quantized-activation scratch (`k_pad` i8, zero padded).
    static QA: RefCell<Vec<i8>> = const { RefCell::new(Vec::new()) };
}

/// Quantized forward product `out = A @ dequant(QB)` (overwrite):
/// each activation row is dynamically quantized to i8 with its own
/// scale, dotted against the pre-quantized weight rows in exact i32,
/// and rescaled as `(sa_i * s_j) * dot`. `q.k` must equal `k` and
/// `q.c` must equal `c`.
pub fn matmul_q8(a: &[f32], q: &QuantizedMatrix, out: &mut [f32], r: usize, k: usize, c: usize) {
    assert_eq!(q.k, k, "quantized weight k mismatch");
    assert_eq!(q.c, c, "quantized weight c mismatch");
    debug_assert_eq!(a.len(), r * k);
    debug_assert_eq!(out.len(), r * c);
    rtp_obs::counter!("tensor.matmul.q8").inc();
    let use_avx2 = have_avx2();
    QA.with(|s| {
        let mut qa = s.borrow_mut();
        qa.clear();
        qa.resize(q.k_pad, 0);
        for i in 0..r {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * c..(i + 1) * c];
            let amax = arow.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if amax == 0.0 || !amax.is_finite() {
                orow.iter_mut().for_each(|o| *o = 0.0);
                continue;
            }
            let sa = amax / 127.0;
            let inv = 127.0 / amax;
            for (dst, &v) in qa.iter_mut().zip(arow) {
                *dst = (v * inv).round().clamp(-127.0, 127.0) as i8;
            }
            for (j, o) in orow.iter_mut().enumerate() {
                let w = &q.qt[j * q.k_pad..(j + 1) * q.k_pad];
                let dot = if use_avx2 {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: AVX2 checked; both slices are k_pad long,
                    // a multiple of Q_LANES.
                    unsafe {
                        dot_i8_avx2(&qa, w)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    dot_i8_scalar(&qa, w)
                } else {
                    dot_i8_scalar(&qa, w)
                };
                *o = (sa * q.scales[j]) * dot as f32;
            }
        }
    });
}

/// Exact i32 reference dot (also the non-AVX2 fallback). Order-free:
/// integer addition is associative, so this and the SIMD version agree
/// exactly.
fn dot_i8_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

/// i8×i8→i32 dot over `Q_LANES`-padded rows: `maddubs` needs one
/// unsigned operand, so the sign of `a` is moved onto `b`
/// (`|a| · sign(a)·b == a·b`); the pairwise i16 sums (≤ 2·127·127)
/// cannot saturate thanks to the ±127 clamp, and `madd` widens them to
/// i32 exactly.
///
/// # Safety
/// Caller must ensure AVX2 and `a.len() == b.len()`, a multiple of
/// [`Q_LANES`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len() % Q_LANES, 0);
    let ap = a.as_ptr() as *const __m256i;
    let bp = b.as_ptr() as *const __m256i;
    let ones = _mm256_set1_epi16(1);
    let mut acc = _mm256_setzero_si256();
    for t in 0..a.len() / Q_LANES {
        let va = _mm256_loadu_si256(ap.add(t));
        let vb = _mm256_loadu_si256(bp.add(t));
        let abs_a = _mm256_sign_epi8(va, va);
        let sgn_b = _mm256_sign_epi8(vb, va);
        let pairs = _mm256_maddubs_epi16(abs_a, sgn_b);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
    }
    let hi = _mm256_extracti128_si256(acc, 1);
    let lo = _mm256_castsi256_si128(acc);
    let s = _mm_add_epi32(lo, hi);
    let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 1));
    _mm_cvtsi128_si32(s)
}

// -------------------------------------------------------------------
// Quantized parameter set
// -------------------------------------------------------------------

/// Quantized snapshots of every eligible parameter in a
/// [`ParamStore`], indexed by [`ParamId`]. Built once per trained
/// model (weights are frozen at serve time); a [`crate::Tape`] running
/// `--numerics quantized` carries an `Arc` of this and swaps
/// param-RHS matmuls to [`matmul_q8`].
///
/// Eligibility: `rows >= QUANT_MIN_K && cols >= QUANT_MIN_C` — biases,
/// gains, scalar log-variances and other small tensors stay f32 (their
/// ops are not matmuls anyway, or too small to win).
#[derive(Debug)]
pub struct QuantSet {
    by_param: Vec<Option<QuantizedMatrix>>,
}

impl QuantSet {
    /// Quantizes every eligible parameter of `store`.
    pub fn build(store: &ParamStore) -> Self {
        let by_param = store
            .iter_ids()
            .map(|id| {
                let (rows, cols) = store.shape(id);
                (rows >= QUANT_MIN_K && cols >= QUANT_MIN_C)
                    .then(|| QuantizedMatrix::from_weights(store.data(id), rows, cols))
            })
            .collect();
        Self { by_param }
    }

    /// The quantized form of `id`, if it was eligible.
    pub fn get(&self, id: ParamId) -> Option<&QuantizedMatrix> {
        self.by_param.get(id.index()).and_then(|q| q.as_ref())
    }

    /// How many parameters carry a quantized snapshot.
    pub fn quantized_params(&self) -> usize {
        self.by_param.iter().filter(|q| q.is_some()).count()
    }

    /// Total heap bytes of all quantized snapshots.
    pub fn bytes(&self) -> usize {
        self.by_param.iter().flatten().map(QuantizedMatrix::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 8) as f32 / (1u32 << 23) as f32 - 1.0
            })
            .collect()
    }

    #[test]
    fn axpy_is_bit_identical_to_scalar() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100] {
            let x = fill(n, 3 + n as u32);
            let mut d1 = fill(n, 5 + n as u32);
            let mut d2 = d1.clone();
            let s = 0.37f32;
            axpy(&mut d1, &x, s);
            for (d, &xv) in d2.iter_mut().zip(&x) {
                *d += s * xv;
            }
            let b1: Vec<u32> = d1.iter().map(|v| v.to_bits()).collect();
            let b2: Vec<u32> = d2.iter().map(|v| v.to_bits()).collect();
            assert_eq!(b1, b2, "axpy bits diverge at n={n}");
        }
    }

    #[test]
    fn quantized_dot_matches_scalar_reference() {
        for n in [32usize, 64, 96, 352] {
            let fa = fill(n, 11);
            let fb = fill(n, 13);
            let qa: Vec<i8> = fa.iter().map(|v| (v * 127.0) as i8).collect();
            let qb: Vec<i8> = fb.iter().map(|v| (v * 127.0) as i8).collect();
            let want = dot_i8_scalar(&qa, &qb);
            if have_avx2() {
                #[cfg(target_arch = "x86_64")]
                {
                    let got = unsafe { dot_i8_avx2(&qa, &qb) };
                    assert_eq!(got, want, "i8 dot mismatch at n={n}");
                }
            }
        }
    }

    #[test]
    fn quantize_dequantize_error_is_within_half_scale() {
        let (k, c) = (40, 9);
        let b = fill(k * c, 17);
        let q = QuantizedMatrix::from_weights(&b, k, c);
        let back = q.dequantize();
        for j in 0..c {
            let tol = q.scales()[j] * 0.5 + 1e-7;
            for kk in 0..k {
                let d = (b[kk * c + j] - back[kk * c + j]).abs();
                assert!(d <= tol, "round-trip error {d} > {tol} at ({kk},{j})");
            }
        }
    }

    #[test]
    fn all_zero_rows_and_channels_quantize_to_zero() {
        let (k, c) = (32, 4);
        let b = vec![0.0f32; k * c];
        let q = QuantizedMatrix::from_weights(&b, k, c);
        assert!(q.scales().iter().all(|&s| s == 0.0));
        let a = vec![0.0f32; 2 * k];
        let mut out = vec![f32::NAN; 2 * c];
        matmul_q8(&a, &q, &mut out, 2, k, c);
        assert!(out.iter().all(|&v| v == 0.0), "zero inputs must give exact zeros: {out:?}");
    }
}
