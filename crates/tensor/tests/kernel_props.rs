//! Property-based equivalence checks for the blocked matmul kernels
//! and the tape's buffer-pool reuse contract.
//!
//! The blocked/packed kernels in [`rtp_tensor::kernels`] are specified
//! to perform **exactly** the same sequence of floating-point
//! operations per output element as their `*_naive` references —
//! blocking, panel packing and AVX2 lanes only reorder independent
//! elements. That makes the equivalence testable as exact bit
//! equality, not a tolerance check, and it is what keeps training
//! bit-identical across thread counts after the kernel swap. The
//! opt-in inference tiers (`matmul_fast`, `matmul_q8`) trade that
//! guarantee for speed, so their properties are explicit error
//! *bounds* instead.

use proptest::prelude::*;
use rtp_tensor::{kernels, ParamStore, QuantizedMatrix, Tape};

/// Random matrix of the given size with values spanning several orders
/// of magnitude (including exact zeros, which the backward kernels
/// skip — the skip must match between naive and blocked paths).
fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-4.0f32..4.0, 0u32..6), len).prop_map(|v| {
        v.into_iter()
            .map(|(x, kind)| match kind {
                0 => 0.0,      // exact zero: exercises the backward skip
                1 => x * 1e-4, // tiny magnitude
                _ => x,
            })
            .collect()
    })
}

/// Shapes crossing the NR=16 column-tile boundary and the KB=8 row
/// panel, plus degenerate 1-sized edges.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=20, 1usize..=20, prop_oneof![1usize..=40, 15usize..=17])
}

/// Shapes crossing the 8-, 16- and 32-float vector-lane boundaries in
/// both the reduction (k) and output-column (c) dimensions, where the
/// AVX2 main loops hand over to their remainder paths.
fn dims_wide() -> impl Strategy<Value = (usize, usize, usize)> {
    (
        1usize..=6,
        prop_oneof![1usize..=10, 7usize..=9, 15usize..=17, 31usize..=34, 62usize..=66],
        prop_oneof![1usize..=10, 15usize..=17, 31usize..=34, 62usize..=66],
    )
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_forward_is_bitwise_equal_to_naive((r, k, c) in dims(), av in mat(400), bv in mat(800)) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut naive = vec![f32::NAN; r * c];
        let mut blocked = vec![f32::NAN; r * c];
        kernels::matmul_naive(&avec, &bvec, &mut naive, r, k, c);
        kernels::matmul(&avec, &bvec, &mut blocked, r, k, c);
        prop_assert_eq!(bits(&naive), bits(&blocked));
    }

    #[test]
    fn blocked_grad_a_is_bitwise_equal_to_naive(
        (r, k, c) in dims(),
        gv in mat(400),
        bv in mat(800),
        acc in mat(400),
    ) {
        // Pre-existing accumulator content must be preserved identically.
        let gvec: Vec<f32> = gv.iter().cycle().take(r * c).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut ga_naive: Vec<f32> = acc.iter().cycle().take(r * k).copied().collect();
        let mut ga_blocked = ga_naive.clone();
        kernels::matmul_grad_a_naive(&gvec, &bvec, &mut ga_naive, r, k, c);
        kernels::matmul_grad_a(&gvec, &bvec, &mut ga_blocked, r, k, c);
        prop_assert_eq!(bits(&ga_naive), bits(&ga_blocked));
    }

    #[test]
    fn blocked_grad_b_is_bitwise_equal_to_naive(
        (r, k, c) in dims(),
        av in mat(400),
        gv in mat(800),
        acc in mat(400),
    ) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let gvec: Vec<f32> = gv.iter().cycle().take(r * c).copied().collect();
        let mut gb_naive: Vec<f32> = acc.iter().cycle().take(k * c).copied().collect();
        let mut gb_blocked = gb_naive.clone();
        kernels::matmul_grad_b_naive(&avec, &gvec, &mut gb_naive, r, k, c);
        kernels::matmul_grad_b(&avec, &gvec, &mut gb_blocked, r, k, c);
        prop_assert_eq!(bits(&gb_naive), bits(&gb_blocked));
    }

    /// The same three bitwise identities at shapes that cross the 8/16/32
    /// vector-lane boundaries, where the SIMD kernels switch from their
    /// unrolled main loops to remainder handling.
    #[test]
    fn simd_kernels_are_bitwise_equal_to_naive_at_lane_boundaries(
        (r, k, c) in dims_wide(),
        av in mat(600),
        bv in mat(900),
        acc in mat(600),
    ) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut naive = vec![f32::NAN; r * c];
        let mut blocked = vec![f32::NAN; r * c];
        kernels::matmul_naive(&avec, &bvec, &mut naive, r, k, c);
        kernels::matmul(&avec, &bvec, &mut blocked, r, k, c);
        prop_assert_eq!(bits(&naive), bits(&blocked));

        // grad_a with g:[r,c], b:[k,c] — reuse `naive` as the upstream
        // gradient so zeros from the forward exercise the skip path.
        let gvec = naive;
        let mut ga_naive: Vec<f32> = acc.iter().cycle().take(r * k).copied().collect();
        let mut ga_simd = ga_naive.clone();
        kernels::matmul_grad_a_naive(&gvec, &bvec, &mut ga_naive, r, k, c);
        kernels::matmul_grad_a(&gvec, &bvec, &mut ga_simd, r, k, c);
        prop_assert_eq!(bits(&ga_naive), bits(&ga_simd));

        let mut gb_naive: Vec<f32> = acc.iter().cycle().take(k * c).copied().collect();
        let mut gb_simd = gb_naive.clone();
        kernels::matmul_grad_b_naive(&avec, &gvec, &mut gb_naive, r, k, c);
        kernels::matmul_grad_b(&avec, &gvec, &mut gb_simd, r, k, c);
        prop_assert_eq!(bits(&gb_naive), bits(&gb_simd));
    }

    /// The fast tier reassociates the reduction (FMA, multiple
    /// accumulators), so it is held to an analytic error bound rather
    /// than bit equality: per output element, the worst-case f32
    /// summation error is proportional to k · eps · Σ|a·b|.
    #[test]
    fn fast_matmul_is_within_summation_error_of_naive(
        (r, k, c) in dims_wide(),
        av in mat(600),
        bv in mat(900),
    ) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut exact = vec![f32::NAN; r * c];
        let mut fast = vec![f32::NAN; r * c];
        kernels::matmul_naive(&avec, &bvec, &mut exact, r, k, c);
        kernels::matmul_fast(&avec, &bvec, &mut fast, r, k, c);
        for i in 0..r {
            for j in 0..c {
                let abs_dot: f32 =
                    (0..k).map(|kk| (avec[i * k + kk] * bvec[kk * c + j]).abs()).sum();
                let tol = abs_dot * k as f32 * f32::EPSILON + 1e-6;
                let (e, f) = (exact[i * c + j], fast[i * c + j]);
                prop_assert!(
                    (e - f).abs() <= tol,
                    "({i},{j}): exact {e} vs fast {f}, tol {tol}"
                );
            }
        }
    }

    /// Symmetric per-channel i8 quantization round-trips weights to
    /// within half a quantization step of each channel's scale.
    #[test]
    fn quantize_dequantize_roundtrip_is_within_half_step(
        (k, c) in (1usize..=40, 1usize..=20),
        bv in mat(800),
    ) {
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let q = QuantizedMatrix::from_weights(&bvec, k, c);
        let deq = q.dequantize();
        let scales = q.scales();
        for kk in 0..k {
            for j in 0..c {
                let (orig, back) = (bvec[kk * c + j], deq[kk * c + j]);
                let tol = scales[j] * 0.5 + 1e-7;
                prop_assert!(
                    (orig - back).abs() <= tol,
                    "({kk},{j}): {orig} -> {back}, scale {}",
                    scales[j]
                );
            }
        }
    }

    /// The quantized matmul is within its analytic accuracy budget of
    /// the exact kernel: activation and weight each carry at most half
    /// an LSB of their per-row/per-channel scale, so per reduction term
    /// the error is ≈ 127.25·sa·sw, i.e. ≤ k·amax_a·amax_w/120 per
    /// output element (the i32 dot itself is exact).
    #[test]
    fn quantized_matmul_is_within_accuracy_budget(
        (r, k, c) in dims_wide(),
        av in mat(600),
        bv in mat(900),
    ) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let q = QuantizedMatrix::from_weights(&bvec, k, c);
        let mut exact = vec![f32::NAN; r * c];
        let mut quant = vec![f32::NAN; r * c];
        kernels::matmul_naive(&avec, &bvec, &mut exact, r, k, c);
        rtp_tensor::simd::matmul_q8(&avec, &q, &mut quant, r, k, c);
        for i in 0..r {
            let amax_a = avec[i * k..(i + 1) * k].iter().fold(0.0f32, |m, x| m.max(x.abs()));
            for j in 0..c {
                let amax_w =
                    (0..k).map(|kk| bvec[kk * c + j].abs()).fold(0.0f32, f32::max);
                let tol = k as f32 * amax_a * amax_w / 120.0 + 1e-5;
                let (e, qv) = (exact[i * c + j], quant[i * c + j]);
                prop_assert!(
                    (e - qv).abs() <= tol,
                    "({i},{j}): exact {e} vs q8 {qv}, tol {tol}"
                );
            }
        }
    }

    /// A tape cleared and reused for a program must produce bitwise the
    /// same forward data and parameter gradients as a fresh tape — the
    /// contract that lets workers keep one tape across samples/epochs.
    #[test]
    fn cleared_tape_reuse_is_bit_identical_to_fresh(
        w in prop::collection::vec(-2.0f32..2.0, 12),
        x in prop::collection::vec(-2.0f32..2.0, 12),
        warm_rounds in 1usize..4,
    ) {
        let mut store = ParamStore::new(7);
        let wp = store.add_param("w", 3, 4, w);

        let run = |t: &mut Tape, store: &mut ParamStore| -> (Vec<f32>, Vec<f32>) {
            let wv = t.param(store, wp);
            let xv = t.constant(4, 3, x.clone());
            let h = t.matmul(wv, xv);
            let h = t.tanh(h);
            let ht = t.transpose(h);
            let sq = t.matmul(h, ht);
            let flat = t.reshape(sq, 9, 1);
            let loss = t.mean_all(flat);
            let data = t.data(loss).to_vec();
            store.zero_grad();
            t.backward(loss, store);
            (data, store.grad(wp).to_vec())
        };

        let mut fresh = Tape::new();
        let (fresh_out, fresh_grad) = run(&mut fresh, &mut store);

        let mut reused = Tape::new();
        for _ in 0..warm_rounds {
            // Warm the pool with a differently-shaped throwaway program.
            let junk = reused.constant(5, 7, vec![0.25; 35]);
            let jt = reused.transpose(junk);
            let _ = reused.matmul(junk, jt);
            reused.clear();
        }
        let (reused_out, reused_grad) = run(&mut reused, &mut store);

        prop_assert_eq!(bits(&fresh_out), bits(&reused_out));
        prop_assert_eq!(bits(&fresh_grad), bits(&reused_grad));
    }
}
