//! Property-based equivalence checks for the blocked matmul kernels
//! and the tape's buffer-pool reuse contract.
//!
//! The blocked/packed kernels in [`rtp_tensor::kernels`] are specified
//! to perform **exactly** the same sequence of floating-point
//! operations per output element as their `*_naive` references —
//! blocking and panel packing only reorder independent elements. That
//! makes the equivalence testable as exact bit equality, not a
//! tolerance check, and it is what keeps training bit-identical across
//! thread counts after the kernel swap.

use proptest::prelude::*;
use rtp_tensor::{kernels, ParamStore, Tape};

/// Random matrix of the given size with values spanning several orders
/// of magnitude (including exact zeros, which the backward kernels
/// skip — the skip must match between naive and blocked paths).
fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-4.0f32..4.0, 0u32..6), len).prop_map(|v| {
        v.into_iter()
            .map(|(x, kind)| match kind {
                0 => 0.0,      // exact zero: exercises the backward skip
                1 => x * 1e-4, // tiny magnitude
                _ => x,
            })
            .collect()
    })
}

/// Shapes crossing the NR=16 column-tile boundary and the KB=8 row
/// panel, plus degenerate 1-sized edges.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..=20, 1usize..=20, prop_oneof![1usize..=40, 15usize..=17])
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_forward_is_bitwise_equal_to_naive((r, k, c) in dims(), av in mat(400), bv in mat(800)) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut naive = vec![f32::NAN; r * c];
        let mut blocked = vec![f32::NAN; r * c];
        kernels::matmul_naive(&avec, &bvec, &mut naive, r, k, c);
        kernels::matmul(&avec, &bvec, &mut blocked, r, k, c);
        prop_assert_eq!(bits(&naive), bits(&blocked));
    }

    #[test]
    fn blocked_grad_a_is_bitwise_equal_to_naive(
        (r, k, c) in dims(),
        gv in mat(400),
        bv in mat(800),
        acc in mat(400),
    ) {
        // Pre-existing accumulator content must be preserved identically.
        let gvec: Vec<f32> = gv.iter().cycle().take(r * c).copied().collect();
        let bvec: Vec<f32> = bv.iter().cycle().take(k * c).copied().collect();
        let mut ga_naive: Vec<f32> = acc.iter().cycle().take(r * k).copied().collect();
        let mut ga_blocked = ga_naive.clone();
        kernels::matmul_grad_a_naive(&gvec, &bvec, &mut ga_naive, r, k, c);
        kernels::matmul_grad_a(&gvec, &bvec, &mut ga_blocked, r, k, c);
        prop_assert_eq!(bits(&ga_naive), bits(&ga_blocked));
    }

    #[test]
    fn blocked_grad_b_is_bitwise_equal_to_naive(
        (r, k, c) in dims(),
        av in mat(400),
        gv in mat(800),
        acc in mat(400),
    ) {
        let avec: Vec<f32> = av.iter().cycle().take(r * k).copied().collect();
        let gvec: Vec<f32> = gv.iter().cycle().take(r * c).copied().collect();
        let mut gb_naive: Vec<f32> = acc.iter().cycle().take(k * c).copied().collect();
        let mut gb_blocked = gb_naive.clone();
        kernels::matmul_grad_b_naive(&avec, &gvec, &mut gb_naive, r, k, c);
        kernels::matmul_grad_b(&avec, &gvec, &mut gb_blocked, r, k, c);
        prop_assert_eq!(bits(&gb_naive), bits(&gb_blocked));
    }

    /// A tape cleared and reused for a program must produce bitwise the
    /// same forward data and parameter gradients as a fresh tape — the
    /// contract that lets workers keep one tape across samples/epochs.
    #[test]
    fn cleared_tape_reuse_is_bit_identical_to_fresh(
        w in prop::collection::vec(-2.0f32..2.0, 12),
        x in prop::collection::vec(-2.0f32..2.0, 12),
        warm_rounds in 1usize..4,
    ) {
        let mut store = ParamStore::new(7);
        let wp = store.add_param("w", 3, 4, w);

        let run = |t: &mut Tape, store: &mut ParamStore| -> (Vec<f32>, Vec<f32>) {
            let wv = t.param(store, wp);
            let xv = t.constant(4, 3, x.clone());
            let h = t.matmul(wv, xv);
            let h = t.tanh(h);
            let ht = t.transpose(h);
            let sq = t.matmul(h, ht);
            let flat = t.reshape(sq, 9, 1);
            let loss = t.mean_all(flat);
            let data = t.data(loss).to_vec();
            store.zero_grad();
            t.backward(loss, store);
            (data, store.grad(wp).to_vec())
        };

        let mut fresh = Tape::new();
        let (fresh_out, fresh_grad) = run(&mut fresh, &mut store);

        let mut reused = Tape::new();
        for _ in 0..warm_rounds {
            // Warm the pool with a differently-shaped throwaway program.
            let junk = reused.constant(5, 7, vec![0.25; 35]);
            let jt = reused.transpose(junk);
            let _ = reused.matmul(junk, jt);
            reused.clear();
        }
        let (reused_out, reused_grad) = run(&mut reused, &mut store);

        prop_assert_eq!(bits(&fresh_out), bits(&reused_out));
        prop_assert_eq!(bits(&fresh_grad), bits(&reused_grad));
    }
}
