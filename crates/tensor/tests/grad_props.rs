//! Property-based gradient verification: every differentiable op's
//! analytic gradient is checked against central finite differences on
//! randomised inputs. This is the load-bearing correctness suite for
//! the autodiff substrate — every model in the workspace trains through
//! these code paths.

use proptest::prelude::*;
use rtp_tensor::nn::LstmCell;
use rtp_tensor::{grad_check, ParamId, ParamStore, Tape, TensorId};

/// Runs `build` to produce a scalar loss from one 2x3 parameter, then
/// checks its gradient by finite differences.
fn check_op(
    data: Vec<f32>,
    build: impl Fn(&mut Tape, TensorId) -> TensorId,
) -> Result<(), TestCaseError> {
    let mut store = ParamStore::new(0);
    let p = store.add_param("p", 2, 3, data);
    let forward = |store: &ParamStore| -> f32 {
        let mut t = Tape::new();
        let x = t.param(store, p);
        let loss = build(&mut t, x);
        t.scalar(loss)
    };
    let mut t = Tape::new();
    let x = t.param(&store, p);
    let loss = build(&mut t, x);
    store.zero_grad();
    t.backward(loss, &mut store);
    let analytic = store.grad(p).to_vec();
    let worst = grad_check(&mut store, p, &analytic, 1e-2, forward);
    prop_assert!(worst < 5e-3, "gradient mismatch: {worst}");
    Ok(())
}

fn input6() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, 6)
}

/// Inputs bounded away from f(x) kinks (|x| > eps) so finite
/// differences are valid for relu/leaky/abs.
fn input6_away_from_zero() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((0.15f32..2.0).prop_flat_map(|m| prop_oneof![Just(m), Just(-m)]), 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grad_tanh(d in input6()) {
        check_op(d, |t, x| { let a = t.tanh(x); t.mean_all(a) })?;
    }

    #[test]
    fn grad_sigmoid(d in input6()) {
        check_op(d, |t, x| { let a = t.sigmoid(x); t.mean_all(a) })?;
    }

    #[test]
    fn grad_relu(d in input6_away_from_zero()) {
        check_op(d, |t, x| { let a = t.relu(x); t.sum_all(a) })?;
    }

    #[test]
    fn grad_leaky_relu(d in input6_away_from_zero()) {
        check_op(d, |t, x| { let a = t.leaky_relu(x, 0.2); t.sum_all(a) })?;
    }

    #[test]
    fn grad_abs(d in input6_away_from_zero()) {
        check_op(d, |t, x| { let a = t.abs(x); t.mean_all(a) })?;
    }

    #[test]
    fn grad_exp(d in input6()) {
        check_op(d, |t, x| { let a = t.exp(x); t.mean_all(a) })?;
    }

    #[test]
    fn grad_mul_and_square(d in input6()) {
        check_op(d, |t, x| { let a = t.mul(x, x); t.mean_all(a) })?;
    }

    #[test]
    fn grad_row_ops(d in input6()) {
        check_op(d, |t, x| {
            let rs = t.row_sum(x);
            let rm = t.row_mean(x);
            let c = t.mul(rs, rm);
            t.sum_all(c)
        })?;
    }

    #[test]
    fn grad_transpose_matmul(d in input6()) {
        check_op(d, |t, x| {
            let xt = t.transpose(x); // [3,2]
            let m = t.matmul(x, xt); // [2,2]
            t.mean_all(m)
        })?;
    }

    #[test]
    fn grad_concat_and_gather(d in input6()) {
        check_op(d, |t, x| {
            let g = t.gather_rows(x, &[1, 0, 1]);
            let c = t.concat_rows(&[x, g]); // [5,3]
            let s = t.tanh(c);
            t.mean_all(s)
        })?;
    }

    #[test]
    fn grad_repeat_ops(d in input6()) {
        check_op(d, |t, x| {
            let r = t.repeat_rows(x, 2);
            let i = t.repeat_interleave_rows(x, 2);
            let s = t.add(r, i);
            t.mean_all(s)
        })?;
    }

    #[test]
    fn grad_add_outer(d in input6()) {
        check_op(d, |t, x| {
            let col = t.gather_rows(x, &[0]); // [1,3]
            let a = t.transpose(col); // [3,1]
            let b = {
                let r = t.gather_rows(x, &[1]);
                t.transpose(r)
            };
            let o = t.add_outer(a, b); // [3,3]
            let s = t.tanh(o);
            t.mean_all(s)
        })?;
    }

    #[test]
    fn grad_masked_softmax(d in input6()) {
        let mask = vec![true, true, false, true, false, true];
        check_op(d, move |t, x| {
            let s = t.masked_softmax_rows(x, &mask);
            let sq = t.mul(s, s);
            t.sum_all(sq)
        })?;
    }

    #[test]
    fn grad_layer_norm(d in input6()) {
        // keep rows non-constant so variance stays well conditioned
        let mut d = d;
        d[0] += 3.0;
        d[4] -= 3.0;
        check_op(d, |t, x| {
            let n = t.layer_norm_rows(x, 1e-3);
            let s = t.sigmoid(n);
            t.mean_all(s)
        })?;
    }

    #[test]
    fn grad_scalar_broadcasts(d in input6()) {
        check_op(d, |t, x| {
            let s = t.mean_all(x); // [1,1]
            let y = t.mul_scalar_t(x, s);
            t.mean_all(y)
        })?;
    }

    #[test]
    fn grad_broadcast_rows_cols(d in input6()) {
        check_op(d, |t, x| {
            let row = t.gather_rows(x, &[0]); // [1,3]
            let y = t.add_row(x, row);
            let z = t.mul_row(y, row);
            let col = t.row_mean(z); // [2,1] — wrong shape for add_col on [2,3]? no: [2,1] OK
            let w = t.add_col(z, col);
            t.mean_all(w)
        })?;
    }

    #[test]
    fn grad_ln(d in prop::collection::vec(0.2f32..3.0, 6)) {
        check_op(d, |t, x| { let l = t.ln(x); t.mean_all(l) })?;
    }

    #[test]
    fn grad_mae_mse(d in input6()) {
        check_op(d, |t, x| {
            // targets far outside the input range keep |pred − target|
            // away from the MAE kink for any finite-difference step
            let target = t.constant(2, 3, vec![10.0, -10.0, 10.0, -10.0, 10.0, -10.0]);
            let a = t.mse_loss(x, target);
            let b = t.mae_loss(x, target);
            t.add(a, b)
        })?;
    }
}

// -------------------------------------------------------------------
// random-shape checks with relative tolerance
// -------------------------------------------------------------------

/// Worst per-coordinate *relative* finite-difference error for `pid`:
/// `|numeric − analytic| / max(|analytic|, |numeric|, 1)`.
#[allow(clippy::needless_range_loop)] // perturbs store in place; iterator borrow rules forbid it
fn worst_rel_error(
    store: &mut ParamStore,
    pid: ParamId,
    analytic: &[f32],
    mut f: impl FnMut(&ParamStore) -> f32,
) -> f32 {
    let eps = 1e-2f32;
    let n = store.data(pid).len();
    assert_eq!(analytic.len(), n);
    let mut worst = 0.0f32;
    for i in 0..n {
        let orig = store.data(pid)[i];
        store.data_mut(pid)[i] = orig + eps;
        let up = f(store);
        store.data_mut(pid)[i] = orig - eps;
        let down = f(store);
        store.data_mut(pid)[i] = orig;
        let numeric = (up - down) / (2.0 * eps);
        let denom = analytic[i].abs().max(numeric.abs()).max(1.0);
        worst = worst.max((numeric - analytic[i]).abs() / denom);
    }
    worst
}

/// Checks every parameter in `store` against finite differences with
/// relative tolerance 1e-3, where `build` rebuilds the loss from the
/// store each call.
fn check_all_params_rel(
    store: &mut ParamStore,
    build: impl Fn(&mut Tape, &ParamStore) -> TensorId,
) -> Result<(), TestCaseError> {
    let forward = |s: &ParamStore| -> f32 {
        let mut t = Tape::new();
        let loss = build(&mut t, s);
        t.scalar(loss)
    };
    store.zero_grad();
    let mut t = Tape::new();
    let loss = build(&mut t, store);
    t.backward(loss, store);
    let ids: Vec<ParamId> = store.iter_ids().collect();
    for pid in ids {
        let analytic = store.grad(pid).to_vec();
        let worst = worst_rel_error(store, pid, &analytic, forward);
        prop_assert!(worst <= 1e-3, "relative gradient error {worst} for param {pid:?}");
    }
    Ok(())
}

/// A random matrix: rows, cols and entries all drawn by proptest.
fn matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-2.0f32..2.0, r * c).prop_map(move |d| (r, c, d))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_masked_softmax_random_shape(
        ((r, c, d), mask) in matrix(1..5, 2..6).prop_flat_map(|(r, c, d)| {
            (Just((r, c, d)), prop::collection::vec(any::<bool>(), r * c))
        })
    ) {
        let mut store = ParamStore::new(0);
        let p = store.add_param("p", r, c, d);
        check_all_params_rel(&mut store, move |t, s| {
            let x = t.param(s, p);
            let sm = t.masked_softmax_rows(x, &mask);
            let sq = t.mul(sm, sm);
            t.sum_all(sq)
        })?;
    }

    #[test]
    fn grad_gather_rows_random_shape(
        ((r, c, d), idx) in matrix(1..6, 1..5).prop_flat_map(|(r, c, d)| {
            let len = 1..(2 * r + 1);
            (Just((r, c, d)), prop::collection::vec(0..r, len))
        })
    ) {
        let mut store = ParamStore::new(0);
        let p = store.add_param("p", r, c, d);
        check_all_params_rel(&mut store, move |t, s| {
            let x = t.param(s, p);
            let g = t.gather_rows(x, &idx);
            let a = t.tanh(g);
            t.sum_all(a)
        })?;
    }

    #[test]
    fn grad_add_outer_random_shape(
        ((r, _, a), (c, _, b)) in (matrix(1..6, 1..2), matrix(1..6, 1..2))
    ) {
        let mut store = ParamStore::new(0);
        let pa = store.add_param("a", r, 1, a);
        let pb = store.add_param("b", c, 1, b);
        check_all_params_rel(&mut store, move |t, s| {
            let av = t.param(s, pa);
            let bv = t.param(s, pb);
            let o = t.add_outer(av, bv);
            let sq = t.tanh(o);
            t.sum_all(sq)
        })?;
    }

    #[test]
    fn grad_lstm_cell_random_shape(
        (in_dim, hidden, seed, steps) in (1usize..4, 1usize..4, 0u64..1 << 20, 1usize..4)
            .prop_flat_map(|(i, h, seed, n)| {
                (Just(i), Just(h), Just(seed), prop::collection::vec(-1.5f32..1.5, n * i))
            })
    ) {
        let mut store = ParamStore::new(seed);
        let cell = LstmCell::new(&mut store, "lstm", in_dim, hidden);
        check_all_params_rel(&mut store, move |t, s| {
            let mut state = cell.zero_state(t);
            for step in steps.chunks(in_dim) {
                let x = t.constant(1, in_dim, step.to_vec());
                state = cell.step(t, s, x, state);
            }
            let joint = t.concat_cols(&[state.0, state.1]);
            t.sum_all(joint)
        })?;
    }
}
